"""Setup shim.

The offline evaluation environment lacks the ``wheel`` package, so
``pip install -e .`` cannot build a PEP-517 editable wheel there; this
shim keeps ``python setup.py develop`` working as a fallback.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
