"""Table 3: the C5 cost model on BERT variants, native vs Prom-assisted."""

from repro.experiments import table3_dnn_codegen

from conftest import write_artifact


def test_table3_dnn_codegen(benchmark, suite):
    summary = benchmark.pedantic(suite.regression_summary, rounds=1, iterations=1)
    rendered = table3_dnn_codegen(summary)
    print("\n" + rendered)
    write_artifact("table3_dnn_codegen.txt", rendered)

    networks = summary["networks"]
    # Shape checks mirroring the paper's Table 3:
    # (1) the in-distribution (BERT-base) search quality is high;
    assert summary["base_ratio"] > 0.7
    # (2) deployment on unseen variants degrades the native cost model;
    natives = [r.native_ratio for r in networks.values()]
    assert min(natives) < summary["base_ratio"]
    # (3) Prom-assisted online retraining recovers performance.
    for result in networks.values():
        assert result.prom_ratio >= result.native_ratio - 0.02
    assert any(r.prom_ratio > r.native_ratio + 0.02 for r in networks.values())
