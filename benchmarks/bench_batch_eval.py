"""Batch-evaluation engine: throughput vs the per-sample loop.

The deployment story (paper Sec. 7.6) needs cheap per-sample scoring;
the batch engine goes further and amortizes scoring across a whole
test window, the way a production drift monitor consumes traffic.
This bench pits ``evaluate()`` (vectorized batch path) against
``evaluate_serial()`` (the original per-sample loop, kept as the
reference implementation) at a realistic deployment size and asserts:

* the batch path is at least 10x faster, and
* both paths produce identical accept/reject decisions, with
  credibility/confidence equal to floating-point tolerance.

Results are appended to ``out/BENCH_batch_eval.json`` so later PRs can
track the perf trajectory.
"""

import time

import numpy as np

from repro.core import PromClassifier, PromRegressor

from conftest import update_bench_json

#: acceptance floor for the batch-vs-serial speedup (classifier,
#: n_test=500 vs n_calibration=2000)
SPEEDUP_FLOOR = 10.0


def _classification_setup(n_calibration, n_classes, n_features, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n_calibration, n_features))
    raw = rng.random((n_calibration, n_classes)) + 0.05
    probabilities = raw / raw.sum(axis=1, keepdims=True)
    labels = rng.integers(0, n_classes, n_calibration)
    prom = PromClassifier()
    prom.calibrate(features, probabilities, labels)
    return prom, rng


def _time_best(function, repeats):
    best = np.inf
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def _assert_identical(batch, serial):
    assert [d.accepted for d in batch] == [d.accepted for d in serial]
    np.testing.assert_allclose(
        batch.credibility, [d.credibility for d in serial], rtol=1e-9, atol=1e-12
    )
    np.testing.assert_allclose(
        batch.confidence, [d.confidence for d in serial], rtol=1e-9, atol=1e-12
    )


def test_classifier_batch_speedup():
    """The ISSUE 1 acceptance measurement: >= 10x at 500 x 2000."""
    n_test, n_calibration = 500, 2000
    prom, rng = _classification_setup(n_calibration, n_classes=8, n_features=32)
    test_features = rng.normal(size=(n_test, 32))
    raw = rng.random((n_test, 8)) + 0.05
    test_probabilities = raw / raw.sum(axis=1, keepdims=True)

    prom.evaluate(test_features[:32], test_probabilities[:32])  # warmup
    serial_seconds, serial = _time_best(
        lambda: prom.evaluate_serial(test_features, test_probabilities), repeats=2
    )
    batch_seconds, batch = _time_best(
        lambda: prom.evaluate(test_features, test_probabilities), repeats=5
    )
    _assert_identical(batch, serial)

    speedup = serial_seconds / batch_seconds
    update_bench_json(
        "BENCH_batch_eval.json",
        {
            "classifier": {
                "n_test": n_test,
                "n_calibration": n_calibration,
                "serial_seconds": round(serial_seconds, 6),
                "batch_seconds": round(batch_seconds, 6),
                "serial_samples_per_second": round(n_test / serial_seconds, 1),
                "batch_samples_per_second": round(n_test / batch_seconds, 1),
                "speedup": round(speedup, 2),
            }
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"batch evaluate() only {speedup:.1f}x faster than the per-sample "
        f"loop (floor {SPEEDUP_FLOOR}x)"
    )


def test_regressor_batch_speedup():
    """Regressor batch path: identical decisions, speedup recorded."""
    n_test, n_calibration = 300, 1000
    rng = np.random.default_rng(0)
    features = rng.normal(size=(n_calibration, 16))
    targets = 2.0 * features[:, 0] + np.sin(features[:, 1])
    predictions = targets + rng.normal(scale=0.1, size=n_calibration)
    prom = PromRegressor(n_clusters=5, seed=0)
    prom.calibrate(features, predictions, targets)

    test_features = rng.normal(size=(n_test, 16))
    test_predictions = rng.normal(size=n_test)
    prom.evaluate(test_features[:16], test_predictions[:16])  # warmup
    serial_seconds, serial = _time_best(
        lambda: prom.evaluate_serial(test_features, test_predictions), repeats=2
    )
    batch_seconds, batch = _time_best(
        lambda: prom.evaluate(test_features, test_predictions), repeats=5
    )
    _assert_identical(batch, serial)

    speedup = serial_seconds / batch_seconds
    update_bench_json(
        "BENCH_batch_eval.json",
        {
            "regressor": {
                "n_test": n_test,
                "n_calibration": n_calibration,
                "serial_seconds": round(serial_seconds, 6),
                "batch_seconds": round(batch_seconds, 6),
                "batch_samples_per_second": round(n_test / batch_seconds, 1),
                "speedup": round(speedup, 2),
            }
        },
    )
    assert speedup >= 5.0


def test_weight_modes_identical_under_batching():
    """Both p-value weight modes stay serial-identical at bench sizes."""
    prom_count, rng = _classification_setup(600, n_classes=6, n_features=16)
    features = rng.normal(size=(600, 16))
    raw = rng.random((600, 6)) + 0.05
    probabilities = raw / raw.sum(axis=1, keepdims=True)
    labels = rng.integers(0, 6, 600)
    test_features = rng.normal(size=(120, 16))
    raw_t = rng.random((120, 6)) + 0.05
    test_probabilities = raw_t / raw_t.sum(axis=1, keepdims=True)
    for mode in ("count", "multiply"):
        prom = PromClassifier(weight_mode=mode)
        prom.calibrate(features, probabilities, labels)
        _assert_identical(
            prom.evaluate(test_features, test_probabilities),
            prom.evaluate_serial(test_features, test_probabilities),
        )
