"""Figure 8: Prom's drift-detection quality across case studies."""

import numpy as np

from repro.experiments import figure8_detection

from conftest import write_artifact


def test_fig8_detection(benchmark, suite):
    results = benchmark.pedantic(
        suite.classification_results, rounds=1, iterations=1
    )
    rendered = figure8_detection(results)
    print("\n" + rendered)
    write_artifact("fig8_detection.txt", rendered)

    # Shape check: averaged recall is substantial — Prom catches most
    # mispredictions (the paper reports 0.96 on the full-scale corpora;
    # the reduced synthetic corpora here leave some pairs with only a
    # handful of true mispredictions, which caps the achievable mean).
    recalls = [r.detection.recall for r in results if r.mispredicted.any()]
    assert np.mean(recalls) > 0.45

    # The vulnerability study (heaviest drift) approaches total recall.
    vuln = [r for r in results if r.task == "vulnerability_detection"]
    assert np.mean([r.detection.recall for r in vuln]) > 0.7


def test_fig8_regression_detection(benchmark, suite):
    summary = benchmark.pedantic(suite.regression_summary, rounds=1, iterations=1)
    lines = ["Figure 8(e): C5 drift detection per BERT variant"]
    for network, result in summary["networks"].items():
        d = result.detection
        lines.append(
            f"  {network}: acc {d.accuracy:.3f} pre {d.precision:.3f} "
            f"rec {d.recall:.3f} f1 {d.f1:.3f}"
        )
    rendered = "\n".join(lines)
    print("\n" + rendered)
    write_artifact("fig8e_regression_detection.txt", rendered)

    # The reduced-scale cost model is better-behaved than the paper's
    # (fewer catastrophic mispredictions), so recall is moderate while
    # precision stays high — the flagged schedules are real misses.
    detections = [r.detection for r in summary["networks"].values()]
    assert np.mean([d.recall for d in detections]) > 0.1
    assert np.mean([d.precision for d in detections]) > 0.6
