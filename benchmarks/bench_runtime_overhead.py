"""Deployment-time scoring overhead (paper Sec. 7.6).

The paper reports < 10 ms per sample for score computation and < 2 ms
for drift detection on a laptop; this bench measures our per-sample
``evaluate_one`` latency with a realistic calibration-set size.
"""

import numpy as np

from repro.core import PromClassifier


def _setup(n_calibration=500, n_classes=8, n_features=32, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n_calibration, n_features))
    raw = rng.random((n_calibration, n_classes)) + 0.05
    probabilities = raw / raw.sum(axis=1, keepdims=True)
    labels = rng.integers(0, n_classes, n_calibration)
    prom = PromClassifier()
    prom.calibrate(features, probabilities, labels)
    test_feature = rng.normal(size=n_features)
    test_probability = probabilities[0]
    return prom, test_feature, test_probability


def test_per_sample_scoring_latency(benchmark):
    prom, feature, probability = _setup()
    decision = benchmark(prom.evaluate_one, feature, probability)
    assert decision is not None
    # The paper's bound is 12 ms on a low-end laptop; allow generous
    # slack for CI noise while still catching order-of-magnitude
    # regressions.
    assert benchmark.stats["mean"] < 0.1
