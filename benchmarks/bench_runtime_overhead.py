"""Deployment-time scoring overhead (paper Sec. 7.6).

The paper reports < 10 ms per sample for score computation and < 2 ms
for drift detection on a laptop; this bench measures our per-sample
``evaluate_one`` latency with a realistic calibration-set size, plus
the batch engine's steady-state throughput (samples/second) on a
deployment-sized window.  Both numbers land in
``out/BENCH_batch_eval.json`` so later PRs can track the trajectory.
"""

import numpy as np

from repro.core import PromClassifier

from conftest import update_bench_json

#: minimum acceptable batch throughput (samples/second) for the
#: vectorized engine at 512 test samples vs 1000 calibration samples —
#: roughly 4x the old per-sample loop, far below the engine's actual
#: rate so only order-of-magnitude regressions trip it.
BATCH_THROUGHPUT_FLOOR = 2000.0


def _setup(n_calibration=500, n_classes=8, n_features=32, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n_calibration, n_features))
    raw = rng.random((n_calibration, n_classes)) + 0.05
    probabilities = raw / raw.sum(axis=1, keepdims=True)
    labels = rng.integers(0, n_classes, n_calibration)
    prom = PromClassifier()
    prom.calibrate(features, probabilities, labels)
    test_feature = rng.normal(size=n_features)
    test_probability = probabilities[0]
    return prom, test_feature, test_probability


def test_per_sample_scoring_latency(benchmark):
    prom, feature, probability = _setup()
    decision = benchmark(prom.evaluate_one, feature, probability)
    assert decision is not None
    # The paper's bound is 12 ms on a low-end laptop; allow generous
    # slack for CI noise while still catching order-of-magnitude
    # regressions.
    assert benchmark.stats["mean"] < 0.1
    update_bench_json(
        "BENCH_batch_eval.json",
        {
            "per_sample_latency": {
                "n_calibration": 500,
                "mean_seconds": round(benchmark.stats["mean"], 6),
            }
        },
    )


def test_batch_scoring_throughput(benchmark):
    n_test, n_calibration = 512, 1000
    prom, _, _ = _setup(n_calibration=n_calibration)
    rng = np.random.default_rng(1)
    test_features = rng.normal(size=(n_test, 32))
    raw = rng.random((n_test, 8)) + 0.05
    test_probabilities = raw / raw.sum(axis=1, keepdims=True)

    decisions = benchmark(prom.evaluate, test_features, test_probabilities)
    assert len(decisions) == n_test
    throughput = n_test / benchmark.stats["mean"]
    update_bench_json(
        "BENCH_batch_eval.json",
        {
            "batch_throughput": {
                "n_test": n_test,
                "n_calibration": n_calibration,
                "samples_per_second": round(throughput, 1),
            }
        },
    )
    assert throughput >= BATCH_THROUGHPUT_FLOOR, (
        f"batch throughput {throughput:.0f} samples/s below floor "
        f"{BATCH_THROUGHPUT_FLOOR:.0f}"
    )
