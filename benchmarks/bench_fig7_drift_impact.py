"""Figure 7: design-time vs deployment performance for all 12
classification (task, model) pairs."""

import numpy as np

from repro.experiments import figure7_drift_impact

from conftest import write_artifact


def test_fig7_drift_impact(benchmark, suite):
    results = benchmark.pedantic(
        suite.classification_results, rounds=1, iterations=1
    )
    rendered = figure7_drift_impact(results)
    print("\n" + rendered)
    write_artifact("fig7_drift_impact.txt", rendered)

    assert len(results) == 12

    # Shape check: averaged over all pairs, deployment performance is
    # clearly below design-time performance (the paper's headline drop).
    design = np.mean([r.design_ratios.mean() for r in results])
    deploy = np.mean([r.deploy_ratios.mean() for r in results])
    assert deploy < design - 0.03

    # The vulnerability task (new code patterns) shows the largest hit.
    vuln = [r for r in results if r.task == "vulnerability_detection"]
    assert all(r.deploy_accuracy < r.design_accuracy - 0.3 for r in vuln)
