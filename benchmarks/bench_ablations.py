"""Ablations of Prom's design choices (DESIGN.md Sec. 5).

Covers: adaptive calibration subset vs the full set (uniform weights),
the committee vote threshold, the weighted-count vs paper-literal
multiplicative p-value, and the regression k-NN approximation.  All
classification ablations reuse the session's fitted models and only
re-run the detector stage.
"""

import numpy as np

from repro.core import UniformWeighting, detection_metrics
from repro.experiments import figure13_sensitivity, reevaluate_with_prom

from conftest import write_artifact

TASK = "vulnerability_detection"
MODEL = "Vulde"


def _base(suite):
    by_key = {(r.task, r.model): r for r in suite.classification_results()}
    return by_key[(TASK, MODEL)]


def test_ablation_adaptive_vs_uniform_weighting(benchmark, suite):
    task = suite.task(TASK)
    base = _base(suite)

    def run_both():
        uniform = reevaluate_with_prom(
            task, base, {"weighting": UniformWeighting()}
        )
        return base.detection, uniform

    adaptive, uniform = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rendered = figure13_sensitivity(
        {
            "adaptive": [
                ("precision", adaptive.precision),
                ("recall", adaptive.recall),
                ("f1", adaptive.f1),
            ],
            "uniform": [
                ("precision", uniform.precision),
                ("recall", uniform.recall),
                ("f1", uniform.f1),
            ],
        },
        title="Ablation: adaptive calibration subset vs full/uniform",
    )
    print("\n" + rendered)
    write_artifact("ablation_weighting.txt", rendered)

    # Adaptive selection should not lose to the naive full-set variant.
    assert adaptive.f1 >= uniform.f1 - 0.1


def test_ablation_vote_threshold(benchmark, suite):
    task = suite.task(TASK)
    base = _base(suite)

    def sweep():
        points = {"f1": [], "recall": []}
        for threshold in (0.25, 0.5, 0.75):
            detection = reevaluate_with_prom(
                task, base, {"vote_threshold": threshold}
            )
            points["f1"].append((threshold, detection.f1))
            points["recall"].append((threshold, detection.recall))
        return points

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rendered = figure13_sensitivity(
        series, title="Ablation: committee vote threshold"
    )
    print("\n" + rendered)
    write_artifact("ablation_vote_threshold.txt", rendered)

    # A stricter acceptance bar (higher threshold) never lowers recall.
    recalls = [v for _, v in series["recall"]]
    assert recalls[-1] >= recalls[0] - 1e-9


def test_ablation_weight_mode(benchmark, suite):
    """Weighted counting (default) vs the paper-literal multiplicative
    adjustment with the paper's tau=500."""
    task = suite.task(TASK)
    base = _base(suite)

    def run_both():
        multiply = reevaluate_with_prom(
            task, base, {"weight_mode": "multiply", "tau": 500.0}
        )
        return base.detection, multiply

    count_mode, multiply_mode = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rendered = figure13_sensitivity(
        {
            "count (default)": [
                ("precision", count_mode.precision),
                ("recall", count_mode.recall),
                ("f1", count_mode.f1),
            ],
            "multiply (paper Eq.2)": [
                ("precision", multiply_mode.precision),
                ("recall", multiply_mode.recall),
                ("f1", multiply_mode.f1),
            ],
        },
        title="Ablation: weighted-count vs multiplicative p-value",
    )
    print("\n" + rendered)
    write_artifact("ablation_weight_mode.txt", rendered)
    assert count_mode.f1 >= 0.0 and multiply_mode.f1 >= 0.0


def test_ablation_knn_ground_truth_k(benchmark):
    """Regression k-NN approximation: k=3 (paper) vs extremes."""
    from repro.core import PromRegressor
    from repro.models import tlp
    from repro.tasks import DnnCodeGenerationTask

    task = DnnCodeGenerationTask(schedules_per_network=150, seed=0)
    base = task.dataset("bert-base")
    drifted = task.dataset("bert-tiny")
    train_idx, _ = task.design_data(seed=0)
    scale = float(base["throughputs"][train_idx].mean())
    model = tlp(seed=0)
    model.fit(base["tokens"][train_idx], base["throughputs"][train_idx] / scale)
    rng = np.random.default_rng(0)
    cal_idx = rng.choice(train_idx, size=100, replace=False)
    cal_emb = model.hidden_embedding(base["tokens"][cal_idx])
    cal_pred = model.predict(base["tokens"][cal_idx]) * scale
    test_emb = model.hidden_embedding(drifted["tokens"])
    test_pred = model.predict(drifted["tokens"]) * scale
    relative_error = np.abs(test_pred - drifted["throughputs"]) / np.maximum(
        drifted["throughputs"], 1e-12
    )
    mispredicted = relative_error >= 0.2

    def sweep():
        points = []
        for k in (1, 3, 7, 15):
            prom = PromRegressor(n_clusters=6, k_neighbors=k, seed=0)
            prom.calibrate(cal_emb, cal_pred, base["throughputs"][cal_idx])
            rejected = [d.drifting for d in prom.evaluate(test_emb, test_pred)]
            points.append((k, detection_metrics(mispredicted, rejected).f1))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rendered = figure13_sensitivity(
        {"f1": points}, title="Ablation: k-NN ground-truth approximation"
    )
    print("\n" + rendered)
    write_artifact("ablation_knn_k.txt", rendered)
    assert all(0.0 <= v <= 1.0 for _, v in points)
