"""Shared fixtures for the benchmark harness.

The benches regenerate the paper's tables and figures; the heavy
(task, model) experiment runs are computed once per session and shared,
so each bench times its own end-to-end regeneration without repeating
every other bench's training.

Dataset sizes are scaled down from the full evaluation (the paper's own
artifact does the same "reduced-scale evaluation") but keep every
protocol intact: drift splits, calibration, committee voting,
incremental learning.  Rendered outputs are also written to
``benchmarks/out/`` for inspection.
"""

import json
import os
import pickle

import pytest

from repro.experiments import run_classification, run_incremental, run_regression
from repro.models import MODEL_CATALOG
from repro.tasks import (
    DnnCodeGenerationTask,
    HeterogeneousMappingTask,
    LoopVectorizationTask,
    ThreadCoarseningTask,
    VulnerabilityDetectionTask,
)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")

#: reduced-scale corpus sizes (paper protocol, smaller corpora)
TASK_SIZES = {
    "thread_coarsening": dict(kernels_per_suite=40),
    "loop_vectorization": dict(n_loops=300),
    "heterogeneous_mapping": dict(kernels_per_suite=25),
    "vulnerability_detection": dict(n_samples=320),
}

TASK_FACTORIES = {
    "thread_coarsening": ThreadCoarseningTask,
    "loop_vectorization": LoopVectorizationTask,
    "heterogeneous_mapping": HeterogeneousMappingTask,
    "vulnerability_detection": VulnerabilityDetectionTask,
}


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure for EXPERIMENTS.md cross-checks."""
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, name), "w") as handle:
        handle.write(text + "\n")


def update_bench_json(name: str, payload: dict) -> str:
    """Merge ``payload`` into a JSON perf artifact under ``out/``.

    Several benches contribute sections to the same tracking file (e.g.
    ``BENCH_batch_eval.json``), so the update is a read-merge-write of
    top-level keys.  Returns the artifact path.
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    data = {}
    if os.path.exists(path):
        with open(path) as handle:
            data = json.load(handle)
    data.update(payload)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


class ExperimentSuite:
    """Lazily computed, session-cached experiment results."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._tasks = {}
        self._classification = None
        self._incremental = None
        self._regression = None

    def task(self, name: str):
        if name not in self._tasks:
            factory = TASK_FACTORIES[name]
            self._tasks[name] = factory(seed=self.seed, **TASK_SIZES[name])
        return self._tasks[name]

    def _cache_path(self, kind: str, key: str) -> str:
        os.makedirs(CACHE_DIR, exist_ok=True)
        return os.path.join(CACHE_DIR, f"{kind}-{key}-seed{self.seed}.pkl")

    def _cached(self, kind: str, key: str, compute):
        """Disk-memoize an expensive experiment run.

        The cache makes the regeneration benches restartable: model
        training dominates wall-clock, so a warmed cache lets the full
        table/figure suite re-render in seconds.  Delete
        ``benchmarks/.cache`` to force recomputation.
        """
        path = self._cache_path(kind, key)
        if os.path.exists(path):
            with open(path, "rb") as handle:
                return pickle.load(handle)
        value = compute()
        with open(path, "wb") as handle:
            pickle.dump(value, handle)
        return value

    def pair_result(self, task_name: str, model_name: str):
        """One cached run_classification pair."""
        factory = MODEL_CATALOG[task_name][model_name]
        task = self.task(task_name)
        return self._cached(
            "classification",
            f"{task_name}-{model_name}",
            lambda: run_classification(
                task, factory, model_name=model_name, seed=self.seed
            ),
        )

    def classification_results(self) -> list:
        """run_classification over all 12 classification (task, model) pairs."""
        if self._classification is None:
            results = []
            for task_name, models in MODEL_CATALOG.items():
                if task_name == "dnn_code_generation":
                    continue
                for model_name in models:
                    results.append(self.pair_result(task_name, model_name))
            self._classification = results
        return self._classification

    def incremental_results(self) -> list:
        """One incremental-learning round per classification result."""
        if self._incremental is None:
            outcomes = []
            for result in self.classification_results():
                task = self.task(result.task)
                models = MODEL_CATALOG[result.task]
                outcomes.append(
                    run_incremental(
                        task,
                        models[result.model],
                        model_name=result.model,
                        base_result=result,
                        budget_fraction=0.05,
                    )
                )
            self._incremental = outcomes
        return self._incremental

    def regression_summary(self) -> dict:
        """The C5 (Table 3) run: TLP on BERT-base vs variants."""
        if self._regression is None:
            def compute():
                task = DnnCodeGenerationTask(
                    schedules_per_network=200, seed=self.seed
                )
                return run_regression(task, seed=self.seed)

            self._regression = self._cached("regression", "bert", compute)
        return self._regression


@pytest.fixture(scope="session")
def suite():
    return ExperimentSuite(seed=0)
