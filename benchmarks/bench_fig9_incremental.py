"""Figure 9: incremental learning restores deployment performance."""

import numpy as np

from repro.experiments import figure9_incremental

from conftest import write_artifact


def test_fig9_incremental_learning(benchmark, suite):
    suite.classification_results()  # ensure base runs exist (not timed twice)
    outcomes = benchmark.pedantic(suite.incremental_results, rounds=1, iterations=1)
    rendered = figure9_incremental(outcomes)
    print("\n" + rendered)
    write_artifact("fig9_incremental.txt", rendered)

    native = np.mean([o.native_ratios.mean() for o in outcomes])
    improved = np.mean([o.improved_ratios.mean() for o in outcomes])
    # Shape check: relabelling <=5% of flagged samples lifts deployment
    # performance on average and never relabels more than the budget.
    assert improved > native
    for outcome in outcomes:
        if outcome.n_flagged > 0:
            budget = max(1, int(round(0.05 * outcome.n_flagged)))
            assert outcome.n_relabelled <= budget

    # The heavily drifted vulnerability task shows a large recovery.
    vuln = [o for o in outcomes if o.task == "vulnerability_detection"]
    gains = [o.improved_accuracy - o.native_accuracy for o in vuln]
    assert max(gains) > 0.1
