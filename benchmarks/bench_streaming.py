"""Streaming calibration runtime: incremental update vs full recalibration.

The deployment story (paper Secs. 5.3-5.4) feeds relabelled samples
back into the calibration set continuously.  Before the streaming
runtime, every such round paid a full ``calibrate()`` — per-expert
scores, label groupings and tau over the entire calibration set.  The
:class:`~repro.core.streaming.StreamingPromClassifier` amortizes that:
``update()`` scores only the micro-batch and carries the rest of the
state across the store mutation.

This bench asserts, at a production-ish scale (12k calibration samples,
64 classes):

* ``update()`` of a full store is at least **5x** faster than a full
  recalibration on the same samples (measured ~7x), while remaining
  decision-identical to it; and
* the end-to-end serving loop (``stream_deployment``: evaluate ->
  monitor -> relabel -> recalibrate) sustains a floor throughput in
  decisions/sec.

Results are appended to ``out/BENCH_streaming.json`` alongside
``BENCH_batch_eval.json`` so later PRs can track both trajectories.
"""

import argparse
import json
import time

import numpy as np

from repro.core import (
    LoopConfig,
    ModelInterface,
    PromClassifier,
    StreamingPromClassifier,
)
from repro.experiments import stream_deployment
from repro.ml import MLPClassifier

from conftest import update_bench_json

#: acceptance floor for incremental update() vs full recalibration
#: (n_calibration=12000, n_classes=64, batch=32)
SPEEDUP_FLOOR = 5.0

#: conservative floor for the end-to-end serving loop (decisions/sec);
#: measured throughput is one to two orders of magnitude above this.
THROUGHPUT_FLOOR = 1000.0


def _classification_batch(n, n_classes, n_features, seed=0):
    g = np.random.default_rng(seed)
    features = g.normal(size=(n, n_features))
    raw = g.random((n, n_classes)) + 0.05
    probabilities = raw / raw.sum(axis=1, keepdims=True)
    labels = g.integers(0, n_classes, n)
    return features, probabilities, labels


def _time_best(function, repeats):
    best = np.inf
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def test_incremental_update_speedup():
    """The ISSUE 2 acceptance measurement: >= 5x at 12000 x 64."""
    n_calibration, n_classes, n_features, batch = 12_000, 64, 64, 32
    streaming = StreamingPromClassifier(capacity=n_calibration, seed=0)
    streaming.calibrate(
        *_classification_batch(n_calibration, n_classes, n_features, seed=0)
    )
    new = _classification_batch(batch, n_classes, n_features, seed=1)

    streaming.update(*new)  # warmup (store reaches steady state)
    update_seconds = _time_best(lambda: streaming.update(*new), repeats=15)

    # Full-recalibration baseline on the same surviving samples.
    features = streaming.store.column("features").copy()
    probabilities = streaming.store.column("probabilities").copy()
    labels = streaming.store.column("label").copy()
    full_seconds = _time_best(
        lambda: PromClassifier().calibrate(features, probabilities, labels),
        repeats=8,
    )

    # The speedup must not come at the cost of the guarantee: the
    # streamed detector stays decision-identical to the fresh one.
    fresh = PromClassifier().calibrate(features, probabilities, labels)
    test_f, test_p, _ = _classification_batch(200, n_classes, n_features, seed=2)
    streamed_batch = streaming.evaluate(test_f, test_p)
    fresh_batch = fresh.evaluate(test_f, test_p)
    assert np.array_equal(streamed_batch.accepted, fresh_batch.accepted)
    assert np.array_equal(streamed_batch.credibility, fresh_batch.credibility)

    speedup = full_seconds / update_seconds
    update_bench_json(
        "BENCH_streaming.json",
        {
            "incremental_update": {
                "n_calibration": n_calibration,
                "n_classes": n_classes,
                "batch": batch,
                "update_seconds": round(update_seconds, 6),
                "full_recalibration_seconds": round(full_seconds, 6),
                "updates_per_second": round(1.0 / update_seconds, 1),
                "speedup": round(speedup, 2),
            }
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental update() only {speedup:.1f}x faster than full "
        f"recalibration (floor {SPEEDUP_FLOOR}x)"
    )


class _BlobInterface(ModelInterface):
    def feature_extraction(self, X):
        return np.asarray(X)


def _make_blobs(n, n_classes=3, n_features=6, shift=0.0, seed=0):
    g = np.random.default_rng(seed)
    y = g.integers(0, n_classes, n)
    X = g.normal(size=(n, n_features)) * 0.5
    X[:, 0] += y * 2.0 + shift
    X[:, 1] += (y == n_classes - 1) * 1.5 + shift
    return X, y


def test_stream_deployment_throughput():
    """End-to-end serving loop throughput over a drifting stream."""
    X_train, y_train = _make_blobs(600, seed=0)
    interface = _BlobInterface(
        MLPClassifier(epochs=30, seed=0), max_calibration=200, seed=0
    )
    interface.train(X_train, y_train)

    X_a, y_a = _make_blobs(1000, seed=1)
    X_b, y_b = _make_blobs(1000, shift=3.0, seed=2)
    X_stream = np.concatenate([X_a, X_b])
    y_stream = np.concatenate([y_a, y_b])

    result = stream_deployment(
        interface,
        X_stream,
        y_stream,
        loop=LoopConfig(batch_size=100, budget_fraction=0.1, epochs=10),
    )
    assert result.final_calibration_size <= 200
    assert all(step.calibration_size <= 200 for step in result.steps)
    assert result.n_flagged > 0

    update_bench_json(
        "BENCH_streaming.json",
        {
            "stream_deployment": {
                "n_samples": result.n_samples,
                "batch_size": 100,
                "decisions_per_second": round(result.decisions_per_second, 1),
                "n_flagged": result.n_flagged,
                "n_relabelled": result.n_relabelled,
                "n_model_updates": result.n_model_updates,
                "lifetime_rejection_rate": round(
                    result.lifetime_rejection_rate, 4
                ),
                "final_calibration_size": result.final_calibration_size,
            }
        },
    )
    assert result.decisions_per_second >= THROUGHPUT_FLOOR, (
        f"serving loop sustained only {result.decisions_per_second:.0f} "
        f"decisions/sec (floor {THROUGHPUT_FLOOR:.0f})"
    )


def _smoke() -> dict:
    """Seconds-long, assertion-free pass for CI (nothing written to out/)."""
    n_calibration, n_classes, n_features, batch = 1_500, 8, 16, 32
    streaming = StreamingPromClassifier(capacity=n_calibration, seed=0)
    streaming.calibrate(
        *_classification_batch(n_calibration, n_classes, n_features, seed=0)
    )
    new = _classification_batch(batch, n_classes, n_features, seed=1)
    streaming.update(*new)
    update_seconds = _time_best(lambda: streaming.update(*new), repeats=3)

    X_train, y_train = _make_blobs(300, seed=0)
    interface = _BlobInterface(
        MLPClassifier(epochs=10, seed=0), max_calibration=100, seed=0
    )
    interface.train(X_train, y_train)
    X_stream, y_stream = _make_blobs(300, shift=2.0, seed=1)
    result = stream_deployment(
        interface,
        X_stream,
        y_stream,
        loop=LoopConfig(batch_size=50, budget_fraction=0.1, epochs=5),
    )
    return {
        "smoke": True,
        "incremental_update_seconds": round(update_seconds, 6),
        "stream_decisions_per_second": round(result.decisions_per_second, 1),
        "stream_final_calibration_size": result.final_calibration_size,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, no perf assertions, nothing written to out/",
    )
    args = parser.parse_args()
    if args.smoke:
        print(json.dumps(_smoke(), indent=2, sort_keys=True))
        return
    test_incremental_update_speedup()
    test_stream_deployment_throughput()
    print("BENCH_streaming.json updated")


if __name__ == "__main__":
    main()
