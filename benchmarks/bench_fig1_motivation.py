"""Figure 1(a): data drift degrades a Vulde-style detector over time.

Trains the Bi-LSTM on the earliest era window and measures binary
detection F1 on successive year windows — the F1 should fall sharply
for windows far from the training data, reproducing the paper's
motivation plot.
"""

from repro.core import f1_score
from repro.experiments import figure13_sensitivity
from repro.models import vulde
from repro.tasks import VulnerabilityDetectionTask

from conftest import write_artifact

YEAR_WINDOWS = [
    ("12-14", range(2013, 2015)),
    ("15-17", range(2015, 2018)),
    ("18-19", range(2018, 2020)),
    ("20-21", range(2020, 2022)),
    ("22-23", range(2022, 2024)),
]


def _figure1_series():
    task = VulnerabilityDetectionTask(n_samples=640, mode="binary", seed=0)
    train_years = YEAR_WINDOWS[0][1]
    model = vulde(seed=0)
    split0 = task.era_split(train_years, YEAR_WINDOWS[1][1])
    model.fit(task.subset(split0.train), task.labels[split0.train])

    points = []
    # First window: in-distribution holdout from the training years.
    train_idx = split0.train
    holdout = train_idx[: max(1, len(train_idx) // 5)]
    predictions = model.predict(task.subset(holdout))
    points.append(
        (YEAR_WINDOWS[0][0], f1_score(task.labels[holdout] == 1, predictions == 1))
    )
    for name, years in YEAR_WINDOWS[1:]:
        split = task.era_split(train_years, years)
        predictions = model.predict(task.subset(split.test))
        points.append(
            (name, f1_score(task.labels[split.test] == 1, predictions == 1))
        )
    return points


def test_fig1_vulde_f1_decays_over_time(benchmark):
    points = benchmark.pedantic(_figure1_series, rounds=1, iterations=1)
    rendered = figure13_sensitivity(
        {"Vulde F1": points}, title="Figure 1(a): drift impact over CVE eras"
    )
    print("\n" + rendered)
    write_artifact("fig1_motivation.txt", rendered)

    values = dict(points)
    early = values["12-14"]
    late = min(values["20-21"], values["22-23"])
    # Shape check: in-window F1 is high; far-future F1 degrades clearly.
    assert early > 0.7
    assert late < early - 0.1
