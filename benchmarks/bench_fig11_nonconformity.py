"""Figure 11: single nonconformity functions vs the Prom committee."""

from repro.experiments import figure11_nonconformity, run_nonconformity_ablation

from conftest import write_artifact

#: two contrasting case studies keep this ablation tractable
ABLATION_PAIRS = {
    "thread_coarsening": "Magni",
    "vulnerability_detection": "Vulde",
}


def test_fig11_nonconformity_functions(benchmark, suite):
    by_key = {(r.task, r.model): r for r in suite.classification_results()}

    def ablate_all():
        outcomes = {}
        for task_name, model_name in ABLATION_PAIRS.items():
            task = suite.task(task_name)
            base = by_key[(task_name, model_name)]
            outcomes[task_name] = run_nonconformity_ablation(
                task, base_result=base, seed=0
            )
        return outcomes

    outcomes = benchmark.pedantic(ablate_all, rounds=1, iterations=1)
    rendered = figure11_nonconformity(outcomes)
    print("\n" + rendered)
    write_artifact("fig11_nonconformity.txt", rendered)

    # Shape check: the committee is never far below the best single
    # function, and beats the weakest one — the paper's generalization
    # argument for the ensemble.
    for task_name, task_outcomes in outcomes.items():
        singles = [
            task_outcomes[name].f1 for name in ("LAC", "TopK", "APS", "RAPS")
        ]
        ensemble = task_outcomes["PROM"].f1
        assert ensemble >= min(singles)
        assert ensemble >= max(singles) - 0.3
