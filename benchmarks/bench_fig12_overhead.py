"""Figure 12: initial training vs incremental-learning wall-clock."""

from repro.experiments import figure12_overhead

from conftest import write_artifact


def test_fig12_training_overhead(benchmark, suite):
    suite.classification_results()

    def collect():
        rows = {}
        for result in suite.classification_results():
            initial, incremental = rows.get(result.task, (0.0, 0.0))
            rows[result.task] = (initial + result.train_seconds, incremental)
        for outcome in suite.incremental_results():
            initial, incremental = rows[outcome.task]
            rows[outcome.task] = (initial, incremental + outcome.update_seconds)
        return [(task, initial, inc) for task, (initial, inc) in rows.items()]

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    rendered = figure12_overhead(rows)
    print("\n" + rendered)
    write_artifact("fig12_overhead.txt", rendered)

    # Shape check: incremental learning costs a small fraction of
    # initial training for every case study (the paper: minutes vs hours).
    for task, initial, incremental in rows:
        assert incremental < initial
