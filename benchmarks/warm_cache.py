"""Warm the benchmark result cache, one experiment at a time.

The regeneration benches share expensive (task, model) training runs
through a disk cache (``benchmarks/.cache``).  This script fills that
cache incrementally so environments with per-command time limits can
split the warm-up across invocations:

    python benchmarks/warm_cache.py            # list pending entries
    python benchmarks/warm_cache.py 0 1 2      # compute entries 0..2
    python benchmarks/warm_cache.py all        # compute everything
"""

import sys
import time

from conftest import ExperimentSuite
from repro.models import MODEL_CATALOG


def entries():
    jobs = []
    for task_name, models in MODEL_CATALOG.items():
        if task_name == "dnn_code_generation":
            continue
        for model_name in models:
            jobs.append(("pair", task_name, model_name))
    jobs.append(("regression", "dnn_code_generation", "Tlp"))
    return jobs


def main(argv):
    suite = ExperimentSuite(seed=0)
    jobs = entries()
    if not argv:
        for i, job in enumerate(jobs):
            print(i, *job)
        return
    if argv == ["all"]:
        indices = range(len(jobs))
    else:
        indices = [int(a) for a in argv]
    for i in indices:
        kind, task_name, model_name = jobs[i]
        started = time.time()
        if kind == "pair":
            suite.pair_result(task_name, model_name)
        else:
            suite.regression_summary()
        print(f"[{i}] {task_name}/{model_name} done in {time.time() - started:.1f}s")


if __name__ == "__main__":
    main(sys.argv[1:])
