"""Segment-direct evaluate kernels + router-aware shard pruning (ISSUE 8).

PR 5 made the snapshot *publish* zero-copy, but every decision still
paid for the whole store twice over: the first evaluate after a publish
materialized the flat concat of all segment blocks before its first
GEMM, and the distance kernel scored all n calibration rows even though
the router already knows which shard a test sample lands in.  This
bench measures both fixes at the ISSUE 8 acceptance scale (12k
calibration rows x 16 shards, 48 features, 32 classes):

* **first_decision_after_publish** — the decision that lands right
  behind a single-touched-shard publish, segment-direct (the bundle
  stays pending; the evaluate iterates the canonical GEMM panels over
  the blocks) vs the pre-ISSUE-8 path (fire the compose hook, pay the
  flat concat, then evaluate).  Asserts the segment-direct first
  decision improves on the flat-path first decision by at least **2x**
  and sits within **1.2x** of the warm-path figure — the flat-concat
  tax is gone from the decision path, not merely reduced; and
* **pruned evaluate** — ``CandidatePruner(spill=0)`` restricts each
  test sample's distance GEMM and p-value gather to its own shard's
  blocks.  Asserts the pruned evaluate beats the full-store evaluate by
  at least **3x** at 16 shards.  Exactness is *not* claimed here — the
  companion ``coverage_vs_spill`` study quantifies what the speedup
  costs: decision agreement with the unpruned path per router as the
  spill fraction sweeps 0 -> 1 (``spill=1.0`` must be bit-identical,
  asserted).

Results go to ``out/BENCH_segment_eval.json``; ``--smoke`` runs a
seconds-long, perf-assertion-free pass for CI (the ``spill=1.0``
bit-identity tripwire still applies — it is deterministic).
"""

import argparse
import json
import time

import numpy as np

from repro.core import (
    AsyncServingLoop,
    CandidatePruner,
    ModelInterface,
    StreamingPromClassifier,
)
from repro.core.blocks import SEGMENT_DIRECT_MIN_ROWS, segment_direct_supported
from repro.core.prom import _pending_bundle

from conftest import update_bench_json

#: acceptance floor (ISSUE 8): the segment-direct first decision after a
#: publish vs the flat-materializing first decision, same snapshot state
FIRST_DECISION_SPEEDUP_FLOOR = 2.0

#: acceptance ceiling (ISSUE 8): the segment-direct first decision may
#: cost at most this multiple of a warm decision on the same snapshot
WARM_RATIO_CEILING = 1.2

#: acceptance floor (ISSUE 8): pruned evaluate vs full-store evaluate
#: at ``n_shards`` shards, ``spill=0``
PRUNED_SPEEDUP_FLOOR = 3.0

FULL_SCALE = dict(
    n_calibration=12_000,
    n_classes=32,
    n_features=48,
    n_shards=16,
    decision_batch=2,
    pruned_batch=256,
    fold_batch=32,
    rounds=7,
)

SMOKE_SCALE = dict(
    # the calibration set must clear SEGMENT_DIRECT_MIN_ROWS or the
    # view falls back to flat and the smoke run measures nothing
    n_calibration=SEGMENT_DIRECT_MIN_ROWS + 600,
    n_classes=8,
    n_features=16,
    n_shards=4,
    decision_batch=2,
    pruned_batch=64,
    fold_batch=16,
    rounds=3,
)

#: the coverage study's spill sweep (1.0 last: asserted bit-identical)
SPILL_SWEEP = (0.0, 0.25, 0.5, 1.0)


class _ProjectionModel:
    """Deterministic softmax projection: no training noise in the bench.

    Deliberately *narrow* (unlike the async-serving bench's wide MLP):
    the costs under measurement are the detector's evaluate kernels and
    the flat-materialization tax, so the model forward pass is kept to
    a rounding error.
    """

    def __init__(self, n_features, n_classes, hidden=64, seed=0):
        generator = np.random.default_rng(seed)
        self._hidden = generator.normal(size=(n_features, hidden))
        self._head = generator.normal(size=(hidden, n_classes))
        self.classes_ = np.arange(n_classes)

    def fit(self, X, y):
        return self

    def partial_fit(self, X, y, epochs: int = 1):
        return self

    def predict_proba(self, X):
        activations = np.tanh(np.asarray(X, dtype=float) @ self._hidden)
        logits = activations @ self._head
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)


class _ServingInterface(ModelInterface):
    def feature_extraction(self, X):
        return np.asarray(X)


def _batch(n, n_features, seed=0, shift=0.0):
    generator = np.random.default_rng(seed)
    return generator.normal(size=(n, n_features)) + shift


def _make_interface(scale, seed=0):
    model = _ProjectionModel(scale["n_features"], scale["n_classes"], seed=seed)
    interface = _ServingInterface(
        model,
        max_calibration=scale["n_calibration"],
        seed=seed,
        n_shards=scale["n_shards"],
        router="hash",
    )
    X_cal = _batch(scale["n_calibration"], scale["n_features"], seed=seed)
    generator = np.random.default_rng(seed + 1)
    y_cal = generator.integers(0, scale["n_classes"], scale["n_calibration"])
    interface.model.fit(X_cal, y_cal)
    interface.calibrate(X_cal, y_cal)
    return interface


def _single_shard_fold(interface, scale, seed=0):
    """A fold batch the hash router sends to exactly one shard."""
    generator = np.random.default_rng(seed + 7)
    candidates = _batch(4096, scale["n_features"], seed=42)
    routes = interface.streaming.store.router.route(candidates)
    single = candidates[routes == 0][: scale["fold_batch"]]
    y_single = generator.integers(0, scale["n_classes"], len(single))
    return single, y_single


def measure_first_decision(scale, seed=0) -> dict:
    """First decision behind a publish: segment-direct vs flat concat.

    Each round publishes a fresh single-touched-shard snapshot and
    times the first evaluate against it, alternating the two worlds on
    identical state:

    * *segment-direct* — evaluate with the compose bundle pending; the
      kernels iterate the canonical GEMM panels over the blocks, and
      the bundle **stays pending afterwards** (verified each round);
    * *flat* — the pre-ISSUE-8 behaviour, reproduced by firing the
      snapshot's compose hook inside the timed region (the ``O(n)``
      concat of every column) before the same evaluate.

    Decision traffic keeps flowing against the *previous* snapshot
    while each publish drains — the steady-serving regime, so the
    allocator and CPU caches are in their production-hot state when
    the first decision lands (an idle gap before the first decision
    inflates both worlds equally and measures the gap, not the tax).

    ``warm_decision_ms`` is the same batch again on the segment-direct
    snapshot — the steady-state decision cost that
    ``first_decision_segment_ms`` must stay within 1.2x of.  All three
    figures are **medians over rounds** rather than the other benches'
    best-of: the flat-concat tax under measurement varies with
    allocator state, and a best-of-42-warm vs best-of-7-first
    comparison is biased by sample count alone — medians over equal
    per-round draws are the symmetric estimator.
    """
    interface = _make_interface(scale, seed=seed)
    X_eval = _batch(scale["decision_batch"], scale["n_features"], seed=77)
    proba = interface.model.predict_proba(X_eval)
    fold_X, fold_y = _single_shard_fold(interface, scale, seed=seed)

    segment_ms, flat_ms, warm_ms = [], [], []
    stayed_pending = True
    with AsyncServingLoop(interface) as loop:
        loop.predict(X_eval)  # warm the initial snapshot
        for round_id in range(scale["rounds"]):
            # --- segment-direct first decision ---
            previous = loop.snapshot.interface.prom
            loop.submit_fold(fold_X, fold_y)
            loop.drain(timeout=300)
            for _ in range(4):
                previous.evaluate(X_eval, proba)  # steady traffic
            prom = loop.snapshot.interface.prom
            started = time.perf_counter()
            prom.evaluate(X_eval, proba)
            segment_ms.append((time.perf_counter() - started) * 1e3)
            stayed_pending &= _pending_bundle(prom) is not None
            for _ in range(6):
                started = time.perf_counter()
                prom.evaluate(X_eval, proba)
                warm_ms.append((time.perf_counter() - started) * 1e3)

            # --- flat-materializing first decision, next publish ---
            previous = prom
            loop.submit_fold(fold_X, fold_y)
            loop.drain(timeout=300)
            for _ in range(4):
                previous.evaluate(X_eval, proba)
            prom = loop.snapshot.interface.prom
            started = time.perf_counter()
            prom._compose_hook()  # the pre-ISSUE-8 flat concat
            prom.evaluate(X_eval, proba)
            flat_ms.append((time.perf_counter() - started) * 1e3)
        prewarm_ms = loop.stats.total_prewarm_seconds * 1e3 / max(
            1, loop.stats.snapshots_published
        )

    med_segment = float(np.median(segment_ms))
    med_flat = float(np.median(flat_ms))
    med_warm = float(np.median(warm_ms))
    return {
        "n_calibration": scale["n_calibration"],
        "n_shards": scale["n_shards"],
        "n_features": scale["n_features"],
        "decision_batch": scale["decision_batch"],
        "segment_direct_supported": segment_direct_supported(),
        "first_decision_segment_ms": round(med_segment, 4),
        "first_decision_flat_ms": round(med_flat, 4),
        "warm_decision_ms": round(med_warm, 4),
        "first_decision_speedup": round(med_flat / med_segment, 2),
        "first_decision_vs_warm_ratio": round(med_segment / med_warm, 3),
        "view_prewarm_per_publish_ms": round(prewarm_ms, 4),
        "bundle_stayed_pending": stayed_pending,
    }


def measure_pruned_evaluate(scale, seed=0) -> dict:
    """Full-store evaluate vs ``CandidatePruner(spill=0)``, same state.

    The pruner restricts each test sample's distance GEMM and p-value
    gather to its primary shard's blocks, so the kernel scores
    ~``1/n_shards`` of the calibration set.  Both paths run against the
    same pending-bundle snapshot, warmed first so the view, panel and
    candidate-restriction caches are populated (the steady-state
    serving regime); best-of-rounds each.
    """
    interface = _make_interface(scale, seed=seed)
    X_eval = _batch(scale["pruned_batch"], scale["n_features"], seed=88)
    proba = interface.model.predict_proba(X_eval)
    fold_X, fold_y = _single_shard_fold(interface, scale, seed=seed)

    with AsyncServingLoop(interface) as loop:
        loop.predict(X_eval[:1])
        loop.submit_fold(fold_X, fold_y)  # leave a bundle pending
        loop.drain(timeout=300)
        prom = loop.snapshot.interface.prom
        pruner = CandidatePruner(
            router=interface.streaming.store.router, spill=0.0
        )

        prom.evaluate(X_eval, proba)  # warm the unpruned path
        prom._pruner = pruner
        pruned_batch = prom.evaluate(X_eval, proba)  # warm the pruned path
        del prom._pruner

        unpruned_ms, pruned_ms = [], []
        for _ in range(scale["rounds"]):
            started = time.perf_counter()
            prom.evaluate(X_eval, proba)
            unpruned_ms.append((time.perf_counter() - started) * 1e3)
            prom._pruner = pruner
            started = time.perf_counter()
            prom.evaluate(X_eval, proba)
            pruned_ms.append((time.perf_counter() - started) * 1e3)
            del prom._pruner
        n_store = len(interface.streaming.store)

    best_unpruned = min(unpruned_ms)
    best_pruned = min(pruned_ms)
    total_candidates = scale["pruned_batch"] * n_store
    return {
        "n_calibration": n_store,
        "n_shards": scale["n_shards"],
        "pruned_batch": scale["pruned_batch"],
        "spill": 0.0,
        "unpruned_ms": round(best_unpruned, 4),
        "pruned_ms": round(best_pruned, 4),
        "pruned_speedup": round(best_unpruned / best_pruned, 2),
        "candidates_scored_fraction": round(
            pruned_batch.n_candidates_scored / total_candidates, 4
        ),
        "shards_pruned_per_sample": round(
            pruned_batch.n_shards_pruned / scale["pruned_batch"], 2
        ),
    }


def measure_coverage_vs_spill(n_test=200, seed=0) -> dict:
    """Decision agreement vs the unpruned path as spill sweeps 0 -> 1.

    The honest side of the pruning trade: on a clustered, drifted
    stream (the regime pruning is *for*), how many of the unpruned
    path's accept/reject decisions survive each spill setting, per
    router.  The two routers fail differently — a hash shard is an
    unbiased ``1/n_shards`` random subsample of the calibration set,
    so its pruned p-values degrade gracefully; a cluster shard is the
    test sample's *local* neighbourhood, which under drift is exactly
    the region the sample no longer belongs to, so low spill depresses
    p-values and acceptance much harder (measured at spill=0: ~0.78
    agreement for hash vs ~0.55 for cluster, acceptance 0.52 vs 0.25
    against 0.70 unpruned).  ``spill=1.0`` must reproduce the unpruned
    decisions bit-identically (asserted by the caller, smoke included).
    """
    n_calibration = SEGMENT_DIRECT_MIN_ROWS + 352
    n_shards = 4

    def clustered(n, sweep_seed, shift=0.0):
        g = np.random.default_rng(sweep_seed)
        centers = g.normal(size=(n_shards, 8)) * 6.0
        assignment = g.integers(0, n_shards, n)
        features = centers[assignment] + g.normal(size=(n, 8)) * 0.5 + shift
        raw = g.random((n, n_shards)) + 0.05
        return features, raw / raw.sum(axis=1, keepdims=True), assignment

    outcome = {}
    for router in ("cluster", "hash"):
        streaming = StreamingPromClassifier(
            capacity=n_calibration + 400,
            eviction="fifo",
            n_shards=n_shards,
            router=router,
            seed=seed,
        )
        streaming.calibrate(*clustered(n_calibration, sweep_seed=11))
        streaming.update(*clustered(60, sweep_seed=12, shift=1.5))
        features, proba, _ = clustered(n_test, sweep_seed=13, shift=1.5)
        unpruned = streaming.evaluate(features, proba)
        total = n_test * len(streaming.store)
        agreement, scored, acceptance = [], [], []
        for spill in SPILL_SWEEP:
            streaming.prom._pruner = CandidatePruner(
                router=streaming.store.router, spill=spill
            )
            pruned = streaming.evaluate(features, proba)
            agreement.append(
                round(float(np.mean(pruned.accepted == unpruned.accepted)), 4)
            )
            scored.append(round(pruned.n_candidates_scored / total, 4))
            acceptance.append(round(float(np.mean(pruned.accepted)), 4))
        del streaming.prom._pruner
        outcome[router] = {
            "n_calibration": len(streaming.store),
            "n_shards": n_shards,
            "n_test": n_test,
            "spills": list(SPILL_SWEEP),
            "agreement_with_unpruned": agreement,
            "candidates_scored_fraction": scored,
            "acceptance_rate": acceptance,
            "unpruned_acceptance_rate": round(
                float(np.mean(unpruned.accepted)), 4
            ),
        }
    return outcome


def _assert_exact_at_full_spill(coverage: dict) -> None:
    """``spill=1.0`` is the exact mode: agreement must be 1.0."""
    for router, study in coverage.items():
        full_spill = study["agreement_with_unpruned"][-1]
        assert full_spill == 1.0, (
            f"prune_spill=1.0 disagreed with the unpruned path on the "
            f"{router} router (agreement {full_spill}) — the exact-mode "
            f"contract is broken"
        )


def test_first_decision_after_publish():
    """ISSUE 8 acceptance: flat-concat tax gone from the decision path."""
    outcome = measure_first_decision(FULL_SCALE)
    update_bench_json("BENCH_segment_eval.json", {"first_decision": outcome})
    assert outcome["bundle_stayed_pending"], (
        "segment-direct evaluate materialized the flat state — the "
        "deferred concat fired on the decision path"
    )
    assert outcome["first_decision_speedup"] >= FIRST_DECISION_SPEEDUP_FLOOR, (
        f"segment-direct first decision only "
        f"{outcome['first_decision_speedup']:.2f}x faster than the "
        f"flat-materializing path (floor {FIRST_DECISION_SPEEDUP_FLOOR}x)"
    )
    assert outcome["first_decision_vs_warm_ratio"] <= WARM_RATIO_CEILING, (
        f"first decision after publish costs "
        f"{outcome['first_decision_vs_warm_ratio']:.2f}x a warm decision "
        f"(ceiling {WARM_RATIO_CEILING}x)"
    )


def test_pruned_evaluate_speedup():
    """ISSUE 8 acceptance: pruned evaluate >= 3x at 16 shards."""
    outcome = measure_pruned_evaluate(FULL_SCALE)
    update_bench_json("BENCH_segment_eval.json", {"pruned_evaluate": outcome})
    assert outcome["pruned_speedup"] >= PRUNED_SPEEDUP_FLOOR, (
        f"shard-pruned evaluate only {outcome['pruned_speedup']:.2f}x "
        f"faster than the full-store evaluate at "
        f"{outcome['n_shards']} shards (floor {PRUNED_SPEEDUP_FLOOR}x)"
    )


def test_coverage_vs_spill():
    """The documented trade: agreement per spill setting, per router."""
    outcome = measure_coverage_vs_spill()
    update_bench_json("BENCH_segment_eval.json", {"coverage_vs_spill": outcome})
    _assert_exact_at_full_spill(outcome)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, no perf assertions, nothing written to out/",
    )
    args = parser.parse_args()
    if args.smoke:
        coverage = measure_coverage_vs_spill(n_test=60)
        summary = {
            "smoke": True,
            "first_decision": measure_first_decision(SMOKE_SCALE),
            "pruned_evaluate": measure_pruned_evaluate(SMOKE_SCALE),
            "coverage_vs_spill": coverage,
        }
        # exact-mode bit-identity is deterministic, not a perf figure:
        # it holds at any scale, so the smoke pass keeps the tripwire
        _assert_exact_at_full_spill(coverage)
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    test_first_decision_after_publish()
    test_pruned_evaluate_speedup()
    test_coverage_vs_spill()
    print("BENCH_segment_eval.json updated")


if __name__ == "__main__":
    main()
