"""Figure 13: sensitivity analyses of Prom's hyperparameters.

(a) significance level sweep on loop vectorization;
(b) regression cluster-size sweep on C5;
(c) confidence vs prediction-set size for Gaussian scales c=1..4;
(d) coverage deviation across the case studies.
"""

import numpy as np

from repro.core import (
    PromClassifier,
    PromRegressor,
    confidence_from_set_size,
    coverage_assessment,
    detection_metrics,
)
from repro.experiments import (
    figure13_sensitivity,
    reevaluate_with_prom,
)
from repro.models import tlp
from repro.tasks import DnnCodeGenerationTask

from conftest import write_artifact


def test_fig13a_significance_sweep(benchmark, suite):
    """Detection quality as the significance level sweeps (C2/Magni).

    The fitted model is reused from the session cache; only the
    detector's epsilon varies.
    """
    task = suite.task("loop_vectorization")
    base = {
        (r.task, r.model): r for r in suite.classification_results()
    }[("loop_vectorization", "Magni")]

    def sweep():
        series = {"precision": [], "recall": [], "f1": []}
        for epsilon in (0.02, 0.05, 0.1, 0.2, 0.4):
            d = reevaluate_with_prom(task, base, {"epsilon": epsilon})
            series["precision"].append((epsilon, d.precision))
            series["recall"].append((epsilon, d.recall))
            series["f1"].append((epsilon, d.f1))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rendered = figure13_sensitivity(
        series, title="Figure 13(a): significance-level sensitivity (C2)"
    )
    print("\n" + rendered)
    write_artifact("fig13a_significance.txt", rendered)

    recalls = [v for _, v in series["recall"]]
    # Shape: a looser threshold (larger epsilon) never lowers recall.
    assert recalls[-1] >= recalls[0]


def test_fig13b_cluster_size_sweep(benchmark):
    """Regression detection quality varies with the cluster count."""
    task = DnnCodeGenerationTask(schedules_per_network=150, seed=0)
    base = task.dataset("bert-base")
    drifted = task.dataset("bert-tiny")
    train_idx, _ = task.design_data(seed=0)
    scale = float(base["throughputs"][train_idx].mean())
    model = tlp(seed=0)
    model.fit(base["tokens"][train_idx], base["throughputs"][train_idx] / scale)
    rng = np.random.default_rng(0)
    cal_idx = rng.choice(train_idx, size=100, replace=False)
    cal_pred = model.predict(base["tokens"][cal_idx]) * scale
    cal_emb = model.hidden_embedding(base["tokens"][cal_idx])
    test_emb = model.hidden_embedding(drifted["tokens"])
    test_pred = model.predict(drifted["tokens"]) * scale
    relative_error = np.abs(test_pred - drifted["throughputs"]) / np.maximum(
        drifted["throughputs"], 1e-12
    )
    mispredicted = relative_error >= 0.2

    def sweep():
        points = {"precision": [], "recall": [], "f1": []}
        for k in (2, 4, 8, 16):
            prom = PromRegressor(n_clusters=k, seed=0)
            prom.calibrate(cal_emb, cal_pred, base["throughputs"][cal_idx])
            rejected = [d.drifting for d in prom.evaluate(test_emb, test_pred)]
            d = detection_metrics(mispredicted, rejected)
            points["precision"].append((k, d.precision))
            points["recall"].append((k, d.recall))
            points["f1"].append((k, d.f1))
        return points

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rendered = figure13_sensitivity(
        series, title="Figure 13(b): cluster-size sensitivity (C5)"
    )
    print("\n" + rendered)
    write_artifact("fig13b_cluster_size.txt", rendered)
    assert all(0.0 <= v <= 1.0 for pts in series.values() for _, v in pts)


def test_fig13c_gaussian_scale(benchmark):
    """Confidence vs set size, Gaussian c = 1..4 (analytic panel)."""

    def curves():
        return {
            f"c = {c}": [
                (size, confidence_from_set_size(size, float(c)))
                for size in range(0, 6)
            ]
            for c in (1, 2, 3, 4)
        }

    series = benchmark.pedantic(curves, rounds=1, iterations=1)
    rendered = figure13_sensitivity(
        series, title="Figure 13(c): confidence vs prediction-set size"
    )
    print("\n" + rendered)
    write_artifact("fig13c_gaussian.txt", rendered)

    # Shape: every curve peaks at a singleton set; larger c flattens.
    for name, points in series.items():
        values = dict(points)
        assert values[1] == max(values.values())
    assert dict(series["c = 4"])[5] > dict(series["c = 1"])[5]


def test_fig13d_coverage_deviation(benchmark, suite):
    """Coverage deviation stays small across the case studies."""
    pairs = {
        "thread_coarsening": "Magni",
        "loop_vectorization": "Magni",
        "heterogeneous_mapping": "IR2Vec",
        "vulnerability_detection": "Vulde",
    }
    by_key = {(r.task, r.model): r for r in suite.classification_results()}

    def measure():
        points = []
        for task_name, model_name in pairs.items():
            task = suite.task(task_name)
            result = by_key[(task_name, model_name)]
            model = result.fitted_model
            cal_samples = task.subset(result.calibration_indices)
            report = coverage_assessment(
                PromClassifier,
                model.features(cal_samples),
                model.predict_proba(cal_samples),
                result.calibration_columns,
                epsilon=0.1,
                seed=0,
            )
            points.append((task_name, report.deviation))
        return points

    points = benchmark.pedantic(measure, rounds=1, iterations=1)
    rendered = figure13_sensitivity(
        {"coverage deviation": points},
        title="Figure 13(d): coverage deviation per case study",
    )
    print("\n" + rendered)
    write_artifact("fig13d_coverage.txt", rendered)

    deviations = [v for _, v in points]
    # Shape: small deviations (the paper's geomean is 2.5%).
    assert np.mean(deviations) < 0.25
