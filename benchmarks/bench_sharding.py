"""Sharded calibration runtime: touched-shard recalibration + serving loop.

ISSUE 3 splits the calibration store into N routed shards
(``core/sharding.py``) so per-shard eviction and recalibration run
independently.  This bench measures, at the PR 2 scale (12k calibration
samples, 64 classes):

* **touched-shard recalibration** — fully rescoring one shard of a
  16-shard store vs a full-store recalibration on the same samples.
  Floor: **3x** (measured ~its shard fraction, minus the composition
  constant);
* **update latency** — ``update()`` of a full store at 1 / 4 / 16
  shards (the sharded fold only touches the routed shards);
* **end-to-end serving throughput** — ``stream_deployment`` over a
  drifting stream with a sharded interface vs the single-store
  baseline, asserted no worse than ``PARITY`` of the single-store run
  measured in the same process (and above the PR 2 absolute floor).

Results land in ``out/BENCH_sharding.json``.  Run as a script with
``--smoke`` for a seconds-long, assertion-free pass (CI uses this to
keep the bench from rotting).
"""

import argparse
import json
import time

import numpy as np

from repro.core import (
    LoopConfig,
    ModelInterface,
    PromClassifier,
    StreamingPromClassifier,
)
from repro.experiments import stream_deployment
from repro.ml import MLPClassifier

from conftest import update_bench_json

#: acceptance floor: one-shard recalibration vs full-store recalibration
#: at 16 shards (n_calibration=12000, n_classes=64)
RECALIBRATION_SPEEDUP_FLOOR = 3.0

#: absolute serving-loop floor carried over from PR 2
THROUGHPUT_FLOOR = 1000.0

#: sharded decisions/sec must stay within this fraction of the
#: single-store run measured in the same process (evaluation is
#: shard-independent, so parity is expected; the margin absorbs noise)
THROUGHPUT_PARITY = 0.7

FULL_SCALE = dict(n_calibration=12_000, n_classes=64, n_features=64, batch=32)
SMOKE_SCALE = dict(n_calibration=600, n_classes=8, n_features=16, batch=16)


def _classification_batch(n, n_classes, n_features, seed=0):
    g = np.random.default_rng(seed)
    features = g.normal(size=(n, n_features))
    raw = g.random((n, n_classes)) + 0.05
    probabilities = raw / raw.sum(axis=1, keepdims=True)
    labels = g.integers(0, n_classes, n)
    return features, probabilities, labels


def _time_best(function, repeats):
    best = np.inf
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def _calibrated_streaming(scale, n_shards, seed=0):
    streaming = StreamingPromClassifier(
        capacity=scale["n_calibration"],
        seed=seed,
        n_shards=n_shards,
        router="hash",
    )
    streaming.calibrate(
        *_classification_batch(
            scale["n_calibration"], scale["n_classes"], scale["n_features"], seed=0
        )
    )
    return streaming


def measure_recalibration(scale, n_shards=16, repeats=10):
    """One-shard recalibration vs full-store recalibration."""
    streaming = _calibrated_streaming(scale, n_shards)
    # the busiest shard is the representative "touched" shard
    busiest = int(np.argmax(streaming.shard_sizes))
    streaming.recalibrate_shards([busiest])  # warmup
    touched_seconds = _time_best(
        lambda: streaming.recalibrate_shards([busiest]), repeats
    )

    features = streaming.store.column("features").copy()
    probabilities = streaming.store.column("probabilities").copy()
    labels = streaming.store.column("label").copy()
    full_seconds = _time_best(
        lambda: PromClassifier().calibrate(features, probabilities, labels),
        max(3, repeats // 2),
    )

    # the shard-recalibrated detector must still match a fresh one
    fresh = PromClassifier().calibrate(features, probabilities, labels)
    test_f, test_p, _ = _classification_batch(
        200, scale["n_classes"], scale["n_features"], seed=2
    )
    streamed = streaming.evaluate(test_f, test_p)
    reference = fresh.evaluate(test_f, test_p)
    assert np.array_equal(streamed.accepted, reference.accepted)
    assert np.array_equal(streamed.credibility, reference.credibility)

    return {
        "n_calibration": scale["n_calibration"],
        "n_classes": scale["n_classes"],
        "n_shards": n_shards,
        "shard_rows": int(streaming.shard_sizes[busiest]),
        "touched_shard_seconds": round(touched_seconds, 6),
        "full_recalibration_seconds": round(full_seconds, 6),
        "speedup": round(full_seconds / touched_seconds, 2),
    }


def measure_update_latency(scale, shard_counts=(1, 4, 16), repeats=10):
    """Steady-state ``update()`` latency across shard counts.

    Since the segment compose layer (DESIGN.md §6), a sharded
    ``update()`` is ``O(touched shards)`` and defers the flat-array
    concatenation to the next detector read — so two numbers are
    recorded per shard count: ``update_seconds`` (the fold + segment
    recomposition alone, what an async maintenance worker pays) and
    ``update_materialized_seconds`` (fold plus the lazy flat
    materialization a subsequent evaluate would trigger, the honest
    sync-loop cost).  For ``n_shards=1`` the two coincide — the
    single-store path composes eagerly.
    """
    new = _classification_batch(
        scale["batch"], scale["n_classes"], scale["n_features"], seed=1
    )
    latencies = {}
    for n_shards in shard_counts:
        streaming = _calibrated_streaming(scale, n_shards)
        streaming.update(*new)  # warmup (store reaches steady state)
        seconds = _time_best(lambda: streaming.update(*new), repeats)

        def update_and_materialize():
            streaming.update(*new)
            # reading any state attribute forces the deferred concat
            len(streaming.prom._features)

        materialized = _time_best(update_and_materialize, repeats)
        latencies[str(n_shards)] = {
            "update_seconds": round(seconds, 6),
            "updates_per_second": round(1.0 / seconds, 1),
            "update_materialized_seconds": round(materialized, 6),
        }
    return {
        "batch": scale["batch"],
        "n_calibration": scale["n_calibration"],
        "by_shard_count": latencies,
    }


class _BlobInterface(ModelInterface):
    def feature_extraction(self, X):
        return np.asarray(X)


def _make_blobs(n, n_classes=3, n_features=6, shift=0.0, seed=0):
    g = np.random.default_rng(seed)
    y = g.integers(0, n_classes, n)
    X = g.normal(size=(n, n_features)) * 0.5
    X[:, 0] += y * 2.0 + shift
    X[:, 1] += (y == n_classes - 1) * 1.5 + shift
    return X, y


def measure_stream_throughput(n_stream=1000, n_shards=4, epochs=30):
    """End-to-end serving loop: single store vs sharded, same stream."""
    X_train, y_train = _make_blobs(600, seed=0)
    X_a, y_a = _make_blobs(n_stream, seed=1)
    X_b, y_b = _make_blobs(n_stream, shift=3.0, seed=2)
    X_stream = np.concatenate([X_a, X_b])
    y_stream = np.concatenate([y_a, y_b])

    def run(shards):
        interface = _BlobInterface(
            MLPClassifier(epochs=epochs, seed=0),
            max_calibration=200,
            seed=0,
            n_shards=shards,
            router="hash",
        )
        interface.train(X_train, y_train)
        return stream_deployment(
            interface,
            X_stream,
            y_stream,
            loop=LoopConfig(batch_size=100, budget_fraction=0.1, epochs=10),
        )

    single = run(1)
    sharded = run(n_shards)
    assert sharded.final_calibration_size <= 200
    assert sharded.n_shards == n_shards
    assert any(step.n_shards_touched for step in sharded.steps)
    return {
        "n_samples": sharded.n_samples,
        "n_shards": n_shards,
        "single_store_decisions_per_second": round(single.decisions_per_second, 1),
        "sharded_decisions_per_second": round(sharded.decisions_per_second, 1),
        "sharded_final_shard_sizes": list(sharded.final_shard_sizes),
        "sharded_n_flagged": sharded.n_flagged,
        "sharded_n_model_updates": sharded.n_model_updates,
    }


def test_touched_shard_recalibration_speedup():
    """The ISSUE 3 acceptance measurement: >= 3x at 16 shards."""
    outcome = measure_recalibration(FULL_SCALE, n_shards=16)
    update_bench_json(
        "BENCH_sharding.json", {"touched_shard_recalibration": outcome}
    )
    assert outcome["speedup"] >= RECALIBRATION_SPEEDUP_FLOOR, (
        f"one-shard recalibration only {outcome['speedup']:.1f}x faster than "
        f"a full-store recalibration (floor {RECALIBRATION_SPEEDUP_FLOOR}x)"
    )


def test_update_latency_by_shard_count():
    outcome = measure_update_latency(FULL_SCALE)
    update_bench_json("BENCH_sharding.json", {"update_latency": outcome})
    # sharding must not regress steady-state update latency noticeably
    single = outcome["by_shard_count"]["1"]["update_seconds"]
    sharded = outcome["by_shard_count"]["16"]["update_seconds"]
    assert sharded <= 5.0 * single, (
        f"16-shard update {sharded * 1e3:.2f} ms vs single-store "
        f"{single * 1e3:.2f} ms"
    )


def test_sharded_stream_throughput_parity():
    outcome = measure_stream_throughput()
    update_bench_json("BENCH_sharding.json", {"stream_deployment": outcome})
    sharded = outcome["sharded_decisions_per_second"]
    single = outcome["single_store_decisions_per_second"]
    assert sharded >= THROUGHPUT_FLOOR, (
        f"sharded serving loop sustained only {sharded:.0f} decisions/sec "
        f"(floor {THROUGHPUT_FLOOR:.0f})"
    )
    assert sharded >= THROUGHPUT_PARITY * single, (
        f"sharded serving loop at {sharded:.0f} decisions/sec fell below "
        f"{THROUGHPUT_PARITY:.0%} of the single-store run ({single:.0f})"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, no perf assertions, nothing written to out/",
    )
    args = parser.parse_args()
    if args.smoke:
        scale = SMOKE_SCALE
        summary = {
            "smoke": True,
            "touched_shard_recalibration": measure_recalibration(
                scale, n_shards=8, repeats=3
            ),
            "update_latency": measure_update_latency(
                scale, shard_counts=(1, 4), repeats=3
            ),
            "stream_deployment": measure_stream_throughput(
                n_stream=150, n_shards=2, epochs=5
            ),
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    test_touched_shard_recalibration_speedup()
    test_update_latency_by_shard_count()
    test_sharded_stream_throughput_parity()
    print("BENCH_sharding.json updated")


if __name__ == "__main__":
    main()
