"""Table 2: cross-case-study summary of the main results."""

from repro.experiments import table2_summary

from conftest import write_artifact


def test_table2_summary(benchmark, suite):
    def build():
        return table2_summary(
            suite.classification_results(), suite.regression_summary()
        )

    rendered = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + rendered)
    write_artifact("table2_summary.txt", rendered)

    # Shape checks on the one summary row.
    results = suite.classification_results()
    import numpy as np

    design = np.mean([r.design_ratios.mean() for r in results])
    deploy = np.mean([r.deploy_ratios.mean() for r in results])
    assert design > deploy  # drift hurts
    detections = [r.detection for r in results if r.mispredicted.any()]
    assert np.mean([d.recall for d in detections]) > 0.45
