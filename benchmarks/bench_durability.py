"""Durability layer: incremental checkpoint cost and warm-restart gain.

Two claims back DESIGN.md §7, both measured here at production-ish
scale (12k calibration samples, 16 shards, 32 classes):

* **incremental checkpoints are cheap** — after a fold touching one
  shard, :class:`~repro.core.durability.CheckpointWriter` rewrites only
  that shard's block (every other block is reused by identity) and
  commits a new manifest.  That must beat a full-store dump (a fresh
  writer in an empty directory, every block serialized and written) by
  at least **3x** (the ISSUE 6 acceptance floor); and
* **warm restart skips recalibration** — restoring the persisted
  blocks (:func:`~repro.core.durability.restore_checkpoint`) and
  serving a first decision must be cheaper than the cold path of
  recalibrating the same store from raw samples and serving the same
  decision.  The restored decisions are bit-identical (asserted here
  too; the property matrix lives in ``tests/core/test_durability.py``).

Results go to ``out/BENCH_durability.json``; ``--smoke`` runs a
seconds-long, assertion-free pass for CI.
"""

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import CheckpointWriter, ModelInterface, restore_checkpoint

from conftest import update_bench_json

#: acceptance floor (ISSUE 6): checkpointing after a single-touched-
#: shard fold must beat a full-store dump by at least this factor
INCREMENTAL_SPEEDUP_FLOOR = 3.0

FULL_SCALE = dict(
    n_calibration=12_000,
    n_classes=32,
    n_features=48,
    n_shards=16,
    rounds=7,
)

SMOKE_SCALE = dict(
    n_calibration=1_500,
    n_classes=8,
    n_features=16,
    n_shards=4,
    rounds=3,
)


class _ProjectionModel:
    """Deterministic stand-in classifier (fixed random projection).

    Keeps the bench free of training noise: what is under measurement
    is serialization, fsync and restore cost, not model fitting.
    """

    def __init__(self, n_features, n_classes, hidden=256, seed=0):
        generator = np.random.default_rng(seed)
        self._hidden = generator.normal(size=(n_features, hidden))
        self._head = generator.normal(size=(hidden, n_classes))
        self.classes_ = np.arange(n_classes)

    def fit(self, X, y):
        return self

    def partial_fit(self, X, y, epochs: int = 1):
        return self

    def predict_proba(self, X):
        activations = np.tanh(np.asarray(X, dtype=float) @ self._hidden)
        logits = activations @ self._head
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)


class _BlobInterface(ModelInterface):
    def feature_extraction(self, X):
        return np.asarray(X)


def _calibration_data(scale, seed=0):
    generator = np.random.default_rng(seed)
    X = generator.normal(size=(scale["n_calibration"], scale["n_features"]))
    y = generator.integers(0, scale["n_classes"], scale["n_calibration"])
    return X, y


def _make_interface(scale, seed=0, calibrate=True):
    interface = _BlobInterface(
        _ProjectionModel(scale["n_features"], scale["n_classes"], seed=seed),
        max_calibration=scale["n_calibration"],
        seed=seed,
        n_shards=scale["n_shards"],
        router="hash",
    )
    if calibrate:
        X, y = _calibration_data(scale, seed=seed)
        interface.calibrate(X, y)
    return interface


def measure_incremental_checkpoint(scale, seed=0) -> dict:
    """Single-touched-shard checkpoint vs full-store dump (best-of-N).

    The incremental writer holds generation 1 already; each round folds
    one sample (touching one shard) and times the follow-up checkpoint.
    The dump rounds time a *fresh* writer over an *empty* directory on
    the same state — no block memory, no content-addressed reuse, every
    block serialized, written and fsynced.
    """
    interface = _make_interface(scale, seed=seed)
    generator = np.random.default_rng(seed + 7)
    incremental_ms, dump_ms = [], []
    touched_counts, written_counts = [], []
    with tempfile.TemporaryDirectory() as root:
        incremental_dir = Path(root) / "incremental"
        writer = CheckpointWriter(incremental_dir, keep=2)
        writer.checkpoint(interface.streaming)
        for round_id in range(scale["rounds"]):
            X1 = generator.normal(size=(1, scale["n_features"]))
            y1 = generator.integers(0, scale["n_classes"], 1)
            update = interface.extend_calibration(X1, y1)
            touched_counts.append(len(update.touched))

            started = time.perf_counter()
            info = writer.checkpoint(interface.streaming)
            incremental_ms.append((time.perf_counter() - started) * 1e3)
            written_counts.append(info.blocks_written)

            dump_dir = Path(root) / f"dump-{round_id}"
            started = time.perf_counter()
            dump_info = CheckpointWriter(dump_dir).checkpoint(
                interface.streaming
            )
            dump_ms.append((time.perf_counter() - started) * 1e3)
            shutil.rmtree(dump_dir)
        checkpoint_bytes = dump_info.bytes_written
    best_incremental = float(min(incremental_ms))
    best_dump = float(min(dump_ms))
    return {
        "n_calibration": scale["n_calibration"],
        "n_shards": scale["n_shards"],
        "rounds": scale["rounds"],
        "shards_touched_per_round": touched_counts,
        "blocks_written_per_round": written_counts,
        "incremental_checkpoint_ms": round(best_incremental, 4),
        "full_dump_ms": round(best_dump, 4),
        "incremental_speedup": round(best_dump / best_incremental, 2),
        "full_store_bytes": int(checkpoint_bytes),
    }


def measure_warm_restart(scale, seed=0) -> dict:
    """Restore-to-first-decision vs recalibrate-to-first-decision."""
    live = _make_interface(scale, seed=seed)
    X_cal, y_cal = _calibration_data(scale, seed=seed)
    X_first = np.random.default_rng(seed + 9).normal(
        size=(8, scale["n_features"])
    )
    with tempfile.TemporaryDirectory() as root:
        CheckpointWriter(root).checkpoint(live.streaming)

        warm = _make_interface(scale, seed=seed, calibrate=False)
        started = time.perf_counter()
        restore_checkpoint(warm.streaming, root)
        _, warm_decisions = warm.predict(X_first)
        warm_seconds = time.perf_counter() - started

    cold = _make_interface(scale, seed=seed, calibrate=False)
    started = time.perf_counter()
    cold.calibrate(X_cal, y_cal)
    _, cold_decisions = cold.predict(X_first)
    cold_seconds = time.perf_counter() - started

    _, live_decisions = live.predict(X_first)
    identical = bool(
        np.array_equal(live_decisions.accepted, warm_decisions.accepted)
        and np.array_equal(
            live_decisions.credibility, warm_decisions.credibility
        )
    )
    return {
        "n_calibration": scale["n_calibration"],
        "n_shards": scale["n_shards"],
        "warm_restart_to_first_decision_ms": round(warm_seconds * 1e3, 4),
        "cold_recalibration_to_first_decision_ms": round(
            cold_seconds * 1e3, 4
        ),
        "warm_restart_speedup": round(cold_seconds / warm_seconds, 2),
        "decisions_bit_identical": identical,
        "cold_decisions_match": bool(
            np.array_equal(cold_decisions.accepted, warm_decisions.accepted)
        ),
    }


def test_incremental_checkpoint_speedup():
    """The ISSUE 6 acceptance measurement: incremental >= 3x dump."""
    outcome = measure_incremental_checkpoint(FULL_SCALE)
    update_bench_json(
        "BENCH_durability.json", {"incremental_checkpoint": outcome}
    )
    assert outcome["incremental_speedup"] >= INCREMENTAL_SPEEDUP_FLOOR, (
        f"single-touched-shard checkpoint only "
        f"{outcome['incremental_speedup']:.1f}x cheaper than a full-store "
        f"dump (floor {INCREMENTAL_SPEEDUP_FLOOR}x)"
    )
    assert all(
        written <= touched
        for written, touched in zip(
            outcome["blocks_written_per_round"],
            outcome["shards_touched_per_round"],
        )
    ), (
        f"incremental checkpoints rewrote "
        f"{outcome['blocks_written_per_round']} blocks for "
        f"{outcome['shards_touched_per_round']} touched shards"
    )


def test_warm_restart_beats_cold_recalibration():
    outcome = measure_warm_restart(FULL_SCALE)
    update_bench_json("BENCH_durability.json", {"warm_restart": outcome})
    assert outcome["decisions_bit_identical"], (
        "restored detector decisions diverged from the live detector"
    )
    assert outcome["warm_restart_speedup"] >= 1.0, (
        f"warm restart took "
        f"{outcome['warm_restart_to_first_decision_ms']:.1f} ms vs "
        f"{outcome['cold_recalibration_to_first_decision_ms']:.1f} ms cold"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, no perf assertions, nothing written to out/",
    )
    args = parser.parse_args()
    if args.smoke:
        summary = {
            "smoke": True,
            "incremental_checkpoint": measure_incremental_checkpoint(
                SMOKE_SCALE
            ),
            "warm_restart": measure_warm_restart(SMOKE_SCALE),
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    test_incremental_checkpoint_speedup()
    test_warm_restart_beats_cold_recalibration()
    print("BENCH_durability.json updated")


if __name__ == "__main__":
    main()
