"""Figure 10: Prom vs RISE / TESSERACT / naive CP (MAPIE-PUNCC)."""

import numpy as np

from repro.experiments import figure10_comparison, run_baseline_comparison

from conftest import write_artifact

#: one representative model per classification case study (keeps the
#: bench tractable; the suite's other models behave comparably)
REPRESENTATIVE = {
    "thread_coarsening": "Magni",
    "loop_vectorization": "Magni",
    "heterogeneous_mapping": "IR2Vec",
    "vulnerability_detection": "Vulde",
}


def test_fig10_baseline_comparison(benchmark, suite):
    def compare_all():
        per_task = {}
        by_key = {
            (r.task, r.model): r for r in suite.classification_results()
        }
        for task_name, model_name in REPRESENTATIVE.items():
            task = suite.task(task_name)
            base = by_key[(task_name, model_name)]
            per_task[task_name] = run_baseline_comparison(task, base_result=base)
        return per_task

    per_task = benchmark.pedantic(compare_all, rounds=1, iterations=1)
    rendered = figure10_comparison(per_task)
    print("\n" + rendered)
    write_artifact("fig10_comparison.txt", rendered)

    # Shape check: averaged across case studies Prom is the strongest
    # or tied-strongest detector family.
    mean_of = {
        detector: np.mean([scores[detector] for scores in per_task.values()])
        for detector in ("PROM", "RISE", "TESSERACT", "MAPIE-PUNCC")
    }
    assert mean_of["PROM"] >= mean_of["RISE"] - 1e-9
    assert mean_of["PROM"] >= mean_of["TESSERACT"] - 0.05
