"""Trigger-layer benches: oversensitivity study + observe overhead (ISSUE 10).

Two figures for the pluggable drift-trigger layer:

* **oversensitivity** — the finding the policy layer exists to fix: on
  a synthetic credibility stream with two sustained drift segments, a
  raw hypothesis-testing trigger (KS p-value against a static
  significance cut) fires **>= 3x** more often than the same detector
  behind a dynamic rolling-quantile threshold, at equal (perfect)
  recall of the true segments.  Every surplus fire lands on clean
  traffic.  Fixed seeds; the direction is regression-locked here and in
  ``tests/core/test_triggers.py``.
* **observe_overhead** — the default trigger stack's ``observe_batch``
  on a decision batch, as a fraction of the serving step that produced
  it (model forward + conformal evaluate).  Asserts the trigger layer
  costs **< 5%** of the step latency floor — drift monitoring must ride
  along for free.

Results go to ``out/BENCH_triggers.json``; ``--smoke`` runs a
seconds-long pass for CI with no perf assertions and nothing written
to ``out/`` (the oversensitivity direction is deterministic at any
scale, so that tripwire still applies in smoke).
"""

import argparse
import json
import time

import numpy as np

from repro.core import (
    DetectionWindows,
    DriftTrigger,
    ModelInterface,
    ObservationBatch,
    PValueDetector,
    QuantileThresholdPolicy,
    StaticThresholdPolicy,
    WarmupPolicy,
    default_trigger_stack,
)

from conftest import update_bench_json

#: acceptance floor (ISSUE 10): raw significance-cut fires vs the
#: dynamic-threshold fires on the same stream at equal recall
OVERSENSITIVITY_FLOOR = 3.0

#: acceptance ceiling (ISSUE 10): trigger observe cost as a fraction of
#: the serving step (forward + evaluate) that produced the decisions
OVERHEAD_CEILING = 0.05

FULL_SCALE = dict(
    n_calibration=4_000,
    n_features=32,
    n_classes=16,
    step_batch=256,
    rounds=30,
)

SMOKE_SCALE = dict(
    n_calibration=800,
    n_features=16,
    n_classes=8,
    step_batch=64,
    rounds=5,
)

#: the oversensitivity stream (fixed: shared with the regression test)
STREAM = dict(n_steps=240, step=20, segments=((80, 120), (180, 220)), seed=5)


def synthetic_credibility_stream(n_steps, step, segments, seed):
    """Credibility batches with sustained uniform-[0, 0.25] drift segments."""
    rng = np.random.default_rng(seed)
    batches, truth = [], []
    for t in range(n_steps):
        drifted = any(a <= t < b for a, b in segments)
        cred = rng.uniform(0.0, 0.25 if drifted else 1.0, size=step)
        batches.append(
            ObservationBatch(
                flags=tuple(bool(c < 0.3) for c in cred),
                credibility=tuple(float(c) for c in cred),
                disagreement=tuple(0.0 for _ in cred),
            )
        )
        truth.append(drifted)
    return batches, truth


def _run_trigger(policy, batches):
    trigger = DriftTrigger(
        PValueDetector(DetectionWindows(size=60, reference_size=256, seed=0)),
        policy,
        warmup=WarmupPolicy(20),
    )
    return [trigger.observe_batch(obs).fired for obs in batches]


def measure_oversensitivity() -> dict:
    """Raw significance cut vs dynamic quantile, same KS detector."""
    batches, truth = synthetic_credibility_stream(**STREAM)
    segments = STREAM["segments"]
    raw = _run_trigger(StaticThresholdPolicy(0.95), batches)
    dynamic = _run_trigger(QuantileThresholdPolicy(0.95, history=32), batches)

    def summary(fires):
        recall = sum(any(fires[a:b]) for a, b in segments) / len(segments)
        false = sum(f for f, t in zip(fires, truth) if not t)
        return dict(fires=int(sum(fires)), recall=recall, false_fires=false)

    raw_summary, dyn_summary = summary(raw), summary(dynamic)
    return {
        "n_steps": STREAM["n_steps"],
        "step": STREAM["step"],
        "drift_segments": [list(s) for s in segments],
        "seed": STREAM["seed"],
        "raw_static_cut": raw_summary,
        "dynamic_quantile": dyn_summary,
        "fire_ratio": round(
            raw_summary["fires"] / max(1, dyn_summary["fires"]), 2
        ),
    }


def assert_oversensitivity(outcome: dict) -> None:
    """Deterministic tripwire: direction must hold at equal recall."""
    raw, dynamic = outcome["raw_static_cut"], outcome["dynamic_quantile"]
    assert raw["recall"] == dynamic["recall"] == 1.0, (
        f"recall diverged (raw {raw['recall']}, dynamic "
        f"{dynamic['recall']}) — the fire-count comparison is void"
    )
    assert outcome["fire_ratio"] >= OVERSENSITIVITY_FLOOR, (
        f"raw hypothesis-testing trigger fired only "
        f"{outcome['fire_ratio']:.2f}x more than the dynamic threshold "
        f"(floor {OVERSENSITIVITY_FLOOR}x) — the oversensitivity study "
        f"no longer reproduces"
    )


class _ProjectionModel:
    """Deterministic softmax projection: no training noise in the bench."""

    def __init__(self, n_features, n_classes, hidden=64, seed=0):
        generator = np.random.default_rng(seed)
        self._hidden = generator.normal(size=(n_features, hidden))
        self._head = generator.normal(size=(hidden, n_classes))
        self.classes_ = np.arange(n_classes)

    def fit(self, X, y):
        return self

    def partial_fit(self, X, y, epochs: int = 1):
        return self

    def predict_proba(self, X):
        activations = np.tanh(np.asarray(X, dtype=float) @ self._hidden)
        logits = activations @ self._head
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)


class _ServingInterface(ModelInterface):
    def feature_extraction(self, X):
        return np.asarray(X)


def measure_observe_overhead(scale, seed=0) -> dict:
    """Trigger observe cost vs the serving step that produced the batch.

    The step latency floor is ``interface.predict`` — model forward
    plus the conformal evaluate — on a warm interface.  The trigger
    cost is ``observe_batch`` on the decisions that step returned.
    Medians over rounds, observing through a *fresh-enough* stack each
    round is unnecessary: the stack is a fixed-size deque + window
    push, so steady state is the honest regime.
    """
    generator = np.random.default_rng(seed)
    model = _ProjectionModel(scale["n_features"], scale["n_classes"], seed=seed)
    interface = _ServingInterface(
        model, max_calibration=scale["n_calibration"], seed=seed
    )
    X_cal = generator.normal(size=(scale["n_calibration"], scale["n_features"]))
    y_cal = generator.integers(0, scale["n_classes"], scale["n_calibration"])
    interface.model.fit(X_cal, y_cal)
    interface.calibrate(X_cal, y_cal)

    X_step = generator.normal(size=(scale["step_batch"], scale["n_features"]))
    stack = default_trigger_stack(window=100)
    _, decisions = interface.predict(X_step)  # warm both paths
    stack.observe_batch(decisions)

    step_ms, observe_ms = [], []
    for _ in range(scale["rounds"]):
        started = time.perf_counter()
        _, decisions = interface.predict(X_step)
        step_ms.append((time.perf_counter() - started) * 1e3)
        started = time.perf_counter()
        stack.observe_batch(decisions)
        observe_ms.append((time.perf_counter() - started) * 1e3)

    med_step = float(np.median(step_ms))
    med_observe = float(np.median(observe_ms))
    return {
        "n_calibration": scale["n_calibration"],
        "step_batch": scale["step_batch"],
        "rounds": scale["rounds"],
        "step_ms": round(med_step, 4),
        "observe_ms": round(med_observe, 4),
        "overhead_fraction": round(med_observe / med_step, 5),
    }


def test_oversensitivity():
    """ISSUE 10 acceptance: raw cut fires >= 3x the dynamic threshold."""
    outcome = measure_oversensitivity()
    update_bench_json("BENCH_triggers.json", {"oversensitivity": outcome})
    assert_oversensitivity(outcome)


def test_observe_overhead():
    """ISSUE 10 acceptance: trigger observe < 5% of the step floor."""
    outcome = measure_observe_overhead(FULL_SCALE)
    update_bench_json("BENCH_triggers.json", {"observe_overhead": outcome})
    assert outcome["overhead_fraction"] < OVERHEAD_CEILING, (
        f"trigger observe_batch costs "
        f"{outcome['overhead_fraction']:.1%} of a serving step "
        f"(ceiling {OVERHEAD_CEILING:.0%}) — monitoring no longer rides "
        f"along for free"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, no perf assertions, nothing written to out/",
    )
    args = parser.parse_args()
    if args.smoke:
        oversensitivity = measure_oversensitivity()
        summary = {
            "smoke": True,
            "oversensitivity": oversensitivity,
            "observe_overhead": measure_observe_overhead(SMOKE_SCALE),
        }
        # the fire-ratio direction is seed-deterministic, not a perf
        # figure: the smoke pass keeps the tripwire
        assert_oversensitivity(oversensitivity)
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    test_oversensitivity()
    test_observe_overhead()
    print("BENCH_triggers.json updated")


if __name__ == "__main__":
    main()
