"""Multi-process serving tier: throughput scaling + bit-identity.

The async serving loop (PR 4) hides maintenance stalls but still
executes every decision on the parent's cores.  The
:class:`~repro.core.multiproc.ProcessServingPool` moves the evaluate
kernels into worker *processes* that attach the published
shared-memory segments read-only (DESIGN.md §10) — the calibration
state is mapped, never copied, so adding workers adds decision
throughput without multiplying memory.

This bench records, at production-ish scale (12k calibration samples,
16 shards, 32 classes):

* **throughput scaling** — decisions/sec through ``map_predict`` at
  1 / 2 / 4 workers against the in-process async loop on the same
  batches.  The acceptance floor (**>= 1.8x** at 4 workers vs the
  in-process loop) is asserted only on machines with at least 4 CPU
  cores; on smaller boxes the floor is recorded as skipped with the
  reason — process parallelism cannot beat a single core that the
  workers and the parent already share; and
* **bit-identity** — pooled decisions equal the in-process
  ``interface.predict`` for every shard router × eviction policy
  combination (always asserted; parallelism must never change a
  decision).

Results go to ``out/BENCH_multiproc.json``; ``--smoke`` runs a
seconds-long, assertion-free pass for CI.
"""

import argparse
import json
import os
import time

import numpy as np

from repro.core import AsyncServingLoop, ModelInterface, ProcessServingPool
from repro.ml import MLPClassifier

from conftest import update_bench_json

#: acceptance floor: map_predict decisions/sec at 4 workers vs the
#: in-process async loop, same batches, same process — asserted only
#: when the box has at least MIN_CORES_FOR_FLOOR cores
WORKER_SPEEDUP_FLOOR = 1.8

#: the 4-worker floor is meaningless below this core count
MIN_CORES_FOR_FLOOR = 4

WORKER_COUNTS = (1, 2, 4)

ROUTERS = ("hash", "label", "cluster")
POLICIES = ("fifo", "reservoir", "lowest_weight")

FULL_SCALE = dict(
    n_calibration=12_000,
    n_classes=32,
    n_features=48,
    n_shards=16,
    throughput_batches=48,
    throughput_batch=256,
    identity_batch=120,
)

SMOKE_SCALE = dict(
    n_calibration=1_500,
    n_classes=8,
    n_features=16,
    n_shards=4,
    throughput_batches=8,
    throughput_batch=64,
    identity_batch=40,
)


class _ProjectionModel:
    """A deterministic stand-in classifier (softmax over a wide MLP).

    Keeps the bench free of training noise: what is under measurement
    is the evaluate kernel per process and the pipe/segment transport,
    not model fitting.
    """

    def __init__(self, n_features, n_classes, hidden=1536, seed=0):
        generator = np.random.default_rng(seed)
        self._hidden = generator.normal(size=(n_features, hidden))
        self._head = generator.normal(size=(hidden, n_classes))
        self.classes_ = np.arange(n_classes)

    def fit(self, X, y):
        return self

    def partial_fit(self, X, y, epochs: int = 1):
        return self

    def predict_proba(self, X):
        activations = np.tanh(np.asarray(X, dtype=float) @ self._hidden)
        logits = activations @ self._head
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)


class _ServingInterface(ModelInterface):
    def feature_extraction(self, X):
        return np.asarray(X)


def _batch(n, n_features, seed=0, shift=0.0):
    generator = np.random.default_rng(seed)
    return generator.normal(size=(n, n_features)) + shift


def _make_interface(scale, seed=0):
    model = _ProjectionModel(scale["n_features"], scale["n_classes"], seed=seed)
    interface = _ServingInterface(
        model,
        max_calibration=scale["n_calibration"],
        seed=seed,
        n_shards=scale["n_shards"],
        router="hash",
    )
    X_cal = _batch(scale["n_calibration"], scale["n_features"], seed=seed)
    generator = np.random.default_rng(seed + 1)
    y_cal = generator.integers(0, scale["n_classes"], scale["n_calibration"])
    interface.model.fit(X_cal, y_cal)
    interface.calibrate(X_cal, y_cal)
    return interface


def measure_throughput_scaling(scale, seed=0, rounds=3) -> dict:
    """map_predict decisions/sec at 1/2/4 workers vs the in-process loop.

    The in-process baseline drives the same batches through
    ``AsyncServingLoop.predict`` (the snapshot path every pooled worker
    also runs), so the comparison isolates what the process fan-out
    buys: the kernels run N-wide instead of inline.  Best-of-``rounds``
    per configuration, alternated to dodge frequency noise.
    """
    interface = _make_interface(scale, seed=seed)
    batches = [
        _batch(scale["throughput_batch"], scale["n_features"], seed=500 + step)
        for step in range(scale["throughput_batches"])
    ]
    n_decisions = scale["throughput_batch"] * scale["throughput_batches"]

    with AsyncServingLoop(interface) as loop:
        loop.predict(batches[0])  # materialize the snapshot
        in_process_seconds = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            for X in batches:
                loop.predict(X)
            in_process_seconds = min(
                in_process_seconds, time.perf_counter() - started
            )

    by_workers = {}
    for n_workers in WORKER_COUNTS:
        with ProcessServingPool(interface, n_workers=n_workers) as pool:
            pool.predict(batches[0])  # warm every worker's attach path
            pool_seconds = float("inf")
            for _ in range(rounds):
                started = time.perf_counter()
                pool.map_predict(batches)
                pool_seconds = min(pool_seconds, time.perf_counter() - started)
            by_workers[str(n_workers)] = {
                "decisions_per_second": round(n_decisions / pool_seconds, 1),
                "speedup_vs_in_process": round(
                    in_process_seconds / pool_seconds, 3
                ),
                "shm_bytes_exported": pool.stats.shm_bytes_exported,
            }

    outcome = {
        "n_calibration": scale["n_calibration"],
        "n_shards": scale["n_shards"],
        "n_decisions": n_decisions,
        "cpu_cores": os.cpu_count(),
        "in_process_decisions_per_second": round(
            n_decisions / in_process_seconds, 1
        ),
        "by_workers": by_workers,
    }
    if os.cpu_count() < MIN_CORES_FOR_FLOOR:
        outcome["floor_skipped"] = (
            f"{WORKER_SPEEDUP_FLOOR}x floor at 4 workers needs "
            f">= {MIN_CORES_FOR_FLOOR} cores; this machine has "
            f"{os.cpu_count()} — workers and parent share the core, so "
            f"process fan-out only adds transport cost"
        )
    return outcome


def measure_bit_identity(scale, seed=0) -> dict:
    """Pooled decisions vs in-process, per router × eviction policy."""
    X_train = _batch(scale["n_calibration"], scale["n_features"], seed=seed)
    generator = np.random.default_rng(seed + 1)
    y_train = generator.integers(
        0, scale["n_classes"], scale["n_calibration"]
    )
    X_test = _batch(
        scale["identity_batch"], scale["n_features"], seed=77, shift=0.5
    )

    grid = {}
    for router in ROUTERS:
        for policy in POLICIES:
            interface = _ServingInterface(
                _ProjectionModel(
                    scale["n_features"], scale["n_classes"], seed=seed
                ),
                max_calibration=scale["n_calibration"],
                seed=seed,
                n_shards=scale["n_shards"],
                router=router,
                eviction=policy,
            )
            interface.model.fit(X_train, y_train)
            interface.calibrate(X_train, y_train)
            live_predictions, live = interface.predict(X_test)
            with ProcessServingPool(interface, n_workers=2) as pool:
                pool_predictions, pooled = pool.predict(X_test)
            identical = (
                np.array_equal(live_predictions, pool_predictions)
                and np.array_equal(live.accepted, pooled.accepted)
                and np.array_equal(live.credibility, pooled.credibility)
                and np.array_equal(live.confidence, pooled.confidence)
                and np.array_equal(live.drifting, pooled.drifting)
            )
            grid[f"{router}/{policy}"] = {
                "bit_identical": bool(identical),
                "n_decisions": len(X_test),
            }
    return {
        "n_calibration": scale["n_calibration"],
        "n_shards": scale["n_shards"],
        "grid": grid,
    }


def test_throughput_scaling():
    """The ISSUE 9 acceptance measurement: >= 1.8x at 4 workers.

    Skipped with the recorded reason on boxes under 4 cores — the
    scaling numbers are still written to the JSON for the trajectory.
    """
    outcome = measure_throughput_scaling(FULL_SCALE)
    update_bench_json("BENCH_multiproc.json", {"throughput_scaling": outcome})
    if "floor_skipped" in outcome:
        print(f"floor skipped: {outcome['floor_skipped']}")
        return
    speedup = outcome["by_workers"]["4"]["speedup_vs_in_process"]
    assert speedup >= WORKER_SPEEDUP_FLOOR, (
        f"4-worker pool only {speedup:.2f}x the in-process async loop "
        f"(floor {WORKER_SPEEDUP_FLOOR}x on {os.cpu_count()} cores)"
    )


def test_bit_identity_grid():
    """Always asserted: parallelism must never change a decision."""
    outcome = measure_bit_identity(FULL_SCALE)
    update_bench_json("BENCH_multiproc.json", {"bit_identity": outcome})
    broken = [
        combo
        for combo, entry in outcome["grid"].items()
        if not entry["bit_identical"]
    ]
    assert not broken, (
        f"pooled decisions diverged from in-process for {broken}"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, no perf assertions, nothing written to out/",
    )
    args = parser.parse_args()
    if args.smoke:
        summary = {
            "smoke": True,
            "throughput_scaling": measure_throughput_scaling(
                SMOKE_SCALE, rounds=1
            ),
            "bit_identity": measure_bit_identity(SMOKE_SCALE),
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    test_throughput_scaling()
    test_bit_identity_grid()
    print("BENCH_multiproc.json updated")


if __name__ == "__main__":
    main()
