"""Async serving loop: decision latency under recalibration + throughput.

The synchronous serving loop stalls decisions while maintenance runs
inline: any batch that arrives behind a shard recalibration (or model
update) pays the whole rebuild before its decisions come back.  The
:class:`~repro.core.serving.AsyncServingLoop` moves that work onto
background workers and serves every batch against an immutable compose
snapshot, so the stall disappears from the decision path.

This bench asserts, at production-ish scale (12k calibration samples,
16 shards, 32 classes):

* **p99 decision latency during recalibration** improves by at least
  **5x** over the synchronous loop (the ISSUE 4 acceptance floor).
  The maintenance schedule mirrors the serving loop's: periodic
  whole-shard rescoring (``recalibrate_shards``) plus the occasional
  alert-triggered model update with its full calibration rebuild — the
  dominant stall.  The sync loop pays both inline before the stalled
  batch's decisions come back; the async loop's p99 is just the
  evaluate kernel; and
* **steady-state throughput** (no maintenance in flight) through the
  snapshot path stays at **>= 90%** of the direct synchronous
  interface — the snapshot indirection and serving stats must be a
  near-zero tax.  The end-to-end ``stream_deployment`` comparison on
  the ``BENCH_streaming.json`` workload is recorded alongside for the
  perf trajectory.

Snapshot-publish cost is measured twice: inside the maintenance
schedule (``snapshot_publish_ms``) and head-to-head in the
``segment_publish`` section, which compares the structural-sharing
publish (DESIGN.md §6: untouched shards' blocks are referenced, not
copied) for a 1-of-N-shards-touched update against an all-shards
rescoring and against the PR 4 full-flat-copy reference — asserting
the shared-block publish is at least **3x** cheaper than the flat
copy at 12k rows x 16 shards.  The one-off cost that moved off the
publish path (the lazy flat materialization paid by the first
decision after a publish) is recorded alongside for honesty.

Results go to ``out/BENCH_async_serving.json``; ``--smoke`` runs a
seconds-long, assertion-free pass for CI.
"""

import argparse
import json
import time

import numpy as np

from repro.core import AsyncServingLoop, LoopConfig, ModelInterface, ServingConfig
from repro.experiments import stream_deployment
from repro.ml import MLPClassifier

from conftest import update_bench_json

#: acceptance floor: p99 decision latency during shard recalibration,
#: synchronous loop vs async serving loop
P99_SPEEDUP_FLOOR = 5.0

#: acceptance floor: async steady-state throughput relative to the
#: direct synchronous evaluate path, same process, same workload
THROUGHPUT_PARITY = 0.90

#: floor for the end-to-end stream_deployment comparison.  Unlike the
#: steady-state measure, the end-to-end loop pays a queue handoff, a
#: worker wake-up and a snapshot publish per relabelled batch; on a
#: single-core runner (the measured ~28% tax at 1.7 ms/batch) none of
#: that can be hidden behind the absent parallelism, so the floor is
#: loose — the p99 latency win above is what the handoff buys.
END_TO_END_PARITY = 0.60

#: absolute end-to-end serving floor, matching bench_streaming.py
END_TO_END_DECISIONS_FLOOR = 1000.0

#: acceptance floor (ISSUE 5): a structural-sharing publish after a
#: single-touched-shard update must beat the full flat-copy publish
#: (the PR 4 behaviour, ~2.4 ms at this scale) by at least this factor
SEGMENT_PUBLISH_SPEEDUP_FLOOR = 3.0

FULL_SCALE = dict(
    n_calibration=12_000,
    n_classes=32,
    n_features=48,
    n_shards=16,
    n_steps=240,
    recalibrate_every=8,
    model_update_every=16,
    relabel_batch=32,
    latency_batch=8,
    throughput_batches=60,
    throughput_batch=256,
)

SMOKE_SCALE = dict(
    n_calibration=1_500,
    n_classes=8,
    n_features=16,
    n_shards=4,
    n_steps=40,
    recalibrate_every=8,
    model_update_every=16,
    relabel_batch=16,
    latency_batch=8,
    throughput_batches=10,
    throughput_batch=128,
)


class _ProjectionModel:
    """A deterministic stand-in classifier (softmax over a wide MLP).

    Keeps the bench free of training noise: the serving-path costs under
    measurement are the detector kernels and the maintenance stalls, not
    model fitting.  The hidden layer is deliberately wide — a model
    update's calibration rebuild must re-run this forward pass over the
    *entire* store, which is exactly the production stall the async
    loop removes from the decision path; an 8-row serving batch barely
    notices it.
    """

    def __init__(self, n_features, n_classes, hidden=1536, seed=0):
        generator = np.random.default_rng(seed)
        self._hidden = generator.normal(size=(n_features, hidden))
        self._head = generator.normal(size=(hidden, n_classes))
        self.classes_ = np.arange(n_classes)

    def fit(self, X, y):
        return self

    def partial_fit(self, X, y, epochs: int = 1):
        return self

    def predict_proba(self, X):
        activations = np.tanh(np.asarray(X, dtype=float) @ self._hidden)
        logits = activations @ self._head
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)


class _ServingInterface(ModelInterface):
    def feature_extraction(self, X):
        return np.asarray(X)


def _batch(n, n_features, seed=0, shift=0.0):
    generator = np.random.default_rng(seed)
    return generator.normal(size=(n, n_features)) + shift


def _make_interface(scale, seed=0):
    model = _ProjectionModel(
        scale["n_features"], scale["n_classes"], seed=seed
    )
    interface = _ServingInterface(
        model,
        max_calibration=scale["n_calibration"],
        seed=seed,
        n_shards=scale["n_shards"],
        router="hash",
    )
    X_cal = _batch(scale["n_calibration"], scale["n_features"], seed=seed)
    generator = np.random.default_rng(seed + 1)
    y_cal = generator.integers(0, scale["n_classes"], scale["n_calibration"])
    interface.model.fit(X_cal, y_cal)
    interface.calibrate(X_cal, y_cal)
    return interface


def measure_recalibration_latency(scale, seed=0) -> dict:
    """Per-step decision latency under the serving maintenance schedule.

    Every ``recalibrate_every``-th step triggers whole-shard rescoring
    and every ``model_update_every``-th step an (alert-style)
    incremental model update with its full calibration rebuild.  In the
    synchronous loop both run inline — the step's decisions wait for
    them; in the async loop they are queued and the step serves
    immediately from the snapshot.  Latency is measured from step start
    (batch arrival) to decisions returned.
    """
    batches = [
        _batch(scale["latency_batch"], scale["n_features"], seed=100 + step)
        for step in range(scale["n_steps"])
    ]
    generator = np.random.default_rng(seed + 3)
    relabel_X = _batch(scale["relabel_batch"], scale["n_features"], seed=9)
    relabel_y = generator.integers(
        0, scale["n_classes"], scale["relabel_batch"]
    )

    def run_sync():
        interface = _make_interface(scale, seed=seed)
        latencies = []
        for step, X in enumerate(batches):
            started = time.perf_counter()
            if step and step % scale["model_update_every"] == 0:
                interface.incremental_update(relabel_X, relabel_y, epochs=1)
            elif step and step % scale["recalibrate_every"] == 0:
                interface.recalibrate_shards()
            interface.predict(X)
            latencies.append(time.perf_counter() - started)
        return np.asarray(latencies)

    def run_async():
        interface = _make_interface(scale, seed=seed)
        latencies = []
        with AsyncServingLoop(interface, queue_capacity=8) as loop:
            for step, X in enumerate(batches):
                started = time.perf_counter()
                if step and step % scale["model_update_every"] == 0:
                    loop.submit_model_update(relabel_X, relabel_y, epochs=1)
                elif step and step % scale["recalibrate_every"] == 0:
                    loop.submit_recalibration()
                loop.predict(X)
                latencies.append(time.perf_counter() - started)
            loop.drain(timeout=120)
            stats = loop.stats
        return np.asarray(latencies), stats

    sync_latencies = run_sync()
    async_latencies, stats = run_async()
    p99_sync = float(np.percentile(sync_latencies, 99))
    p99_async = float(np.percentile(async_latencies, 99))
    publish_seconds = stats.total_publish_seconds / max(
        1, stats.snapshots_published
    )
    return {
        "n_calibration": scale["n_calibration"],
        "n_shards": scale["n_shards"],
        "n_steps": scale["n_steps"],
        "recalibrate_every": scale["recalibrate_every"],
        "model_update_every": scale["model_update_every"],
        "latency_batch": scale["latency_batch"],
        "p50_sync_ms": round(float(np.percentile(sync_latencies, 50)) * 1e3, 4),
        "p50_async_ms": round(float(np.percentile(async_latencies, 50)) * 1e3, 4),
        "p99_sync_ms": round(p99_sync * 1e3, 4),
        "p99_async_ms": round(p99_async * 1e3, 4),
        "p99_speedup": round(p99_sync / p99_async, 2),
        "snapshot_publish_ms": round(publish_seconds * 1e3, 4),
        "snapshots_published": stats.snapshots_published,
    }


def measure_segment_publish(scale, seed=0, rounds=5) -> dict:
    """Snapshot publish cost: structural sharing vs the flat-copy world.

    Three measurements at the same store state (best-of-``rounds``
    each, like the throughput bench):

    * ``publish_single_touched_ms`` — publish after a fold routed to
      exactly one shard: the structural-sharing path reuses the other
      ``n_shards - 1`` shards' blocks by reference;
    * ``publish_all_touched_ms`` — publish after a whole-store
      rescoring (every shard's score blocks rebuilt);
    * ``flat_copy_reference_ms`` — the PR 4 publish kernel: one deep
      copy of every store-aliased array (features, labels, and every
      expert layout's scores/labels/counts), timed on the same state.

    ``first_decision_after_publish_ms`` records where the deferred
    ``O(n)`` went: the first decision after a publish materializes the
    snapshot's flat arrays once; ``warm_decision_ms`` is the same batch
    on the already-materialized snapshot.
    """
    interface = _make_interface(scale, seed=seed)
    generator = np.random.default_rng(seed + 7)
    X_warm = _batch(scale["latency_batch"], scale["n_features"], seed=41)
    with AsyncServingLoop(interface) as loop:
        loop.predict(X_warm)  # materialize the initial snapshot

        # a fold batch the hash router sends to exactly one shard
        store = interface.streaming.store
        candidates = _batch(4096, scale["n_features"], seed=42)
        routes = store.router.route(candidates)
        single = candidates[routes == 0][: scale["relabel_batch"]]
        y_single = generator.integers(0, scale["n_classes"], len(single))

        single_ms = []
        shared_per_publish = []
        for _ in range(rounds):
            loop.submit_fold(single, y_single)
            loop.drain(timeout=120)
            single_ms.append(loop.stats.last_publish_seconds * 1e3)
            shared_per_publish.append(loop.snapshot.blocks_shared)
            loop.predict(X_warm)  # materialize before the next round

        all_ms = []
        for _ in range(rounds):
            loop.submit_recalibration()  # rebuilds every shard's scores
            loop.drain(timeout=120)
            all_ms.append(loop.stats.last_publish_seconds * 1e3)
            loop.predict(X_warm)

        # the PR 4 reference publish: deep-copy every store-aliased
        # array of the (materialized) detector state
        prom = interface.streaming.prom
        n_rows = len(prom._features)
        reference_ms = []
        for _ in range(rounds):
            started = time.perf_counter()
            np.array(prom._features)
            np.array(prom._labels)
            for layout in prom._layouts:
                np.array(layout.scores)
                np.array(layout.labels)
                np.array(layout.group_counts)
            reference_ms.append((time.perf_counter() - started) * 1e3)

        # where the deferred O(n) went: the publish-following decision
        loop.submit_fold(single, y_single)
        loop.drain(timeout=120)
        started = time.perf_counter()
        loop.predict(X_warm)
        first_decision_ms = (time.perf_counter() - started) * 1e3
        started = time.perf_counter()
        loop.predict(X_warm)
        warm_decision_ms = (time.perf_counter() - started) * 1e3
        stats = loop.stats

    best_single = min(single_ms)
    best_reference = min(reference_ms)
    return {
        "n_calibration": n_rows,
        "n_shards": scale["n_shards"],
        "fold_batch": len(single),
        "publish_single_touched_ms": round(best_single, 4),
        "publish_all_touched_ms": round(min(all_ms), 4),
        "flat_copy_reference_ms": round(best_reference, 4),
        "publish_speedup_vs_flat_copy": round(best_reference / best_single, 2),
        "blocks_shared_per_single_touch_publish": shared_per_publish,
        "first_decision_after_publish_ms": round(first_decision_ms, 4),
        "warm_decision_ms": round(warm_decision_ms, 4),
        "shard_blocks_shared_total": stats.shard_blocks_shared,
        "shard_blocks_rebuilt_total": stats.shard_blocks_rebuilt,
    }


def measure_steady_state_throughput(scale, seed=0, rounds=3) -> dict:
    """Decisions/sec with an idle maintenance plane: snapshot tax only.

    The two paths run the same kernels, so the measurement alternates
    sync/async rounds and keeps each path's best pass — isolating the
    snapshot indirection from scheduler and frequency noise.
    """
    interface = _make_interface(scale, seed=seed)
    batches = [
        _batch(
            scale["throughput_batch"], scale["n_features"], seed=500 + step
        )
        for step in range(scale["throughput_batches"])
    ]
    n_decisions = scale["throughput_batch"] * scale["throughput_batches"]

    def one_pass(predict):
        started = time.perf_counter()
        for X in batches:
            predict(X)
        return time.perf_counter() - started

    with AsyncServingLoop(interface) as loop:
        interface.predict(batches[0])  # warm both paths
        loop.predict(batches[0])
        sync_seconds = float("inf")
        async_seconds = float("inf")
        for _ in range(rounds):
            sync_seconds = min(sync_seconds, one_pass(interface.predict))
            async_seconds = min(async_seconds, one_pass(loop.predict))

    return {
        "n_decisions": n_decisions,
        "sync_decisions_per_second": round(n_decisions / sync_seconds, 1),
        "async_decisions_per_second": round(n_decisions / async_seconds, 1),
        "throughput_ratio": round(sync_seconds / async_seconds, 4),
    }


def measure_stream_deployment(n_stream=2000, epochs=10, seed=0, rounds=3) -> dict:
    """End-to-end serving loop on the ``BENCH_streaming.json`` workload.

    Alternates sync/async rounds (fresh interface each — the stream
    mutates it) and keeps each path's best pass, for the same
    noise-isolation reason as :func:`measure_steady_state_throughput`.
    """

    def make_blobs(n, n_classes=3, n_features=6, shift=0.0, blob_seed=0):
        generator = np.random.default_rng(blob_seed)
        y = generator.integers(0, n_classes, n)
        X = generator.normal(size=(n, n_features)) * 0.5
        X[:, 0] += y * 2.0 + shift
        X[:, 1] += (y == n_classes - 1) * 1.5 + shift
        return X, y

    def make_interface():
        interface = _BlobInterface(
            MLPClassifier(epochs=30, seed=seed), max_calibration=200, seed=seed
        )
        X_train, y_train = make_blobs(600, blob_seed=seed)
        interface.train(X_train, y_train)
        return interface

    X_a, y_a = make_blobs(n_stream // 2, blob_seed=1)
    X_b, y_b = make_blobs(n_stream // 2, shift=3.0, blob_seed=2)
    X_stream = np.concatenate([X_a, X_b])
    y_stream = np.concatenate([y_a, y_b])
    loop_config = LoopConfig(batch_size=100, budget_fraction=0.1, epochs=epochs)

    sync = asynchronous = None
    for _ in range(rounds):
        sync_run = stream_deployment(
            make_interface(), X_stream, y_stream, loop=loop_config
        )
        if sync is None or (
            sync_run.decisions_per_second > sync.decisions_per_second
        ):
            sync = sync_run
        async_run = stream_deployment(
            make_interface(),
            X_stream,
            y_stream,
            loop=loop_config,
            serving=ServingConfig(),
        )
        if asynchronous is None or (
            async_run.decisions_per_second > asynchronous.decisions_per_second
        ):
            asynchronous = async_run
    outcome = {
        "n_samples": n_stream,
        "sync_decisions_per_second": round(sync.decisions_per_second, 1),
        "async_decisions_per_second": round(
            asynchronous.decisions_per_second, 1
        ),
        "async_served_during_maintenance": sum(
            step.served_during_maintenance for step in asynchronous.steps
        ),
        "async_max_staleness": asynchronous.serving.max_staleness,
        "async_errors": len(asynchronous.errors),
    }
    reference = _streaming_reference()
    if reference is not None:
        outcome["reference_streaming_decisions_per_second"] = reference
    return outcome


def _streaming_reference():
    """The recorded BENCH_streaming.json throughput, for the trajectory."""
    import os

    path = os.path.join(
        os.path.dirname(__file__), "out", "BENCH_streaming.json"
    )
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        data = json.load(handle)
    return data.get("stream_deployment", {}).get("decisions_per_second")


class _BlobInterface(ModelInterface):
    def feature_extraction(self, X):
        return np.asarray(X)


def test_p99_latency_during_recalibration():
    """The ISSUE 4 acceptance measurement: >= 5x p99 improvement."""
    outcome = measure_recalibration_latency(FULL_SCALE)
    update_bench_json(
        "BENCH_async_serving.json", {"recalibration_latency": outcome}
    )
    assert outcome["p99_speedup"] >= P99_SPEEDUP_FLOOR, (
        f"async serving only improved p99 decision latency "
        f"{outcome['p99_speedup']:.1f}x during recalibration "
        f"(floor {P99_SPEEDUP_FLOOR}x)"
    )


def test_segment_snapshot_publish():
    """The ISSUE 5 acceptance measurement: shared-block publish >= 3x.

    A single-touched-shard update's snapshot publish must beat the
    full flat-copy publish (the pre-segment behaviour, the ~2.4 ms
    ``snapshot_publish_ms`` baseline recorded by PR 4) by at least 3x
    at 12k rows x 16 shards, and all but one shard's blocks must be
    shared with the previous snapshot on every such publish.
    """
    outcome = measure_segment_publish(FULL_SCALE)
    update_bench_json(
        "BENCH_async_serving.json", {"segment_publish": outcome}
    )
    assert (
        outcome["publish_speedup_vs_flat_copy"]
        >= SEGMENT_PUBLISH_SPEEDUP_FLOOR
    ), (
        f"structural-sharing publish only "
        f"{outcome['publish_speedup_vs_flat_copy']:.1f}x cheaper than the "
        f"flat-copy reference (floor {SEGMENT_PUBLISH_SPEEDUP_FLOOR}x)"
    )
    n_shards = FULL_SCALE["n_shards"]
    assert all(
        shared == n_shards - 1
        for shared in outcome["blocks_shared_per_single_touch_publish"]
    ), (
        f"single-touched-shard publishes shared "
        f"{outcome['blocks_shared_per_single_touch_publish']} blocks, "
        f"expected {n_shards - 1} each"
    )


def test_steady_state_throughput_parity():
    outcome = measure_steady_state_throughput(FULL_SCALE)
    update_bench_json(
        "BENCH_async_serving.json", {"steady_state_throughput": outcome}
    )
    assert outcome["throughput_ratio"] >= THROUGHPUT_PARITY, (
        f"async steady-state throughput fell to "
        f"{outcome['throughput_ratio']:.0%} of the synchronous path "
        f"(floor {THROUGHPUT_PARITY:.0%})"
    )


def test_stream_deployment_end_to_end():
    outcome = measure_stream_deployment()
    update_bench_json(
        "BENCH_async_serving.json", {"stream_deployment": outcome}
    )
    assert outcome["async_errors"] == 0
    assert (
        outcome["async_decisions_per_second"] >= END_TO_END_DECISIONS_FLOOR
    ), (
        f"async serving loop sustained only "
        f"{outcome['async_decisions_per_second']:.0f} decisions/sec "
        f"(floor {END_TO_END_DECISIONS_FLOOR:.0f})"
    )
    assert outcome["async_decisions_per_second"] >= END_TO_END_PARITY * (
        outcome["sync_decisions_per_second"]
    ), (
        f"async stream_deployment at "
        f"{outcome['async_decisions_per_second']:.0f} decisions/sec fell "
        f"below {END_TO_END_PARITY:.0%} of the synchronous loop "
        f"({outcome['sync_decisions_per_second']:.0f})"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, no perf assertions, nothing written to out/",
    )
    args = parser.parse_args()
    if args.smoke:
        summary = {
            "smoke": True,
            "recalibration_latency": measure_recalibration_latency(
                SMOKE_SCALE
            ),
            "segment_publish": measure_segment_publish(SMOKE_SCALE),
            "steady_state_throughput": measure_steady_state_throughput(
                SMOKE_SCALE
            ),
            "stream_deployment": measure_stream_deployment(
                n_stream=300, epochs=5
            ),
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    test_p99_latency_during_recalibration()
    test_segment_snapshot_publish()
    test_steady_state_throughput_parity()
    test_stream_deployment_end_to_end()
    print("BENCH_async_serving.json updated")


if __name__ == "__main__":
    main()
