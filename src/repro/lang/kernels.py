"""Synthetic OpenCL kernel generator.

Substitutes for the OpenCL benchmark suites used by the paper's thread
coarsening (C1) and heterogeneous device mapping (C3) case studies.
Each kernel is described by a :class:`KernelSpec` of latent workload
parameters (compute intensity, memory behaviour, divergence, ...) and
rendered to OpenCL-like source text.  Benchmark *suites* draw those
parameters from suite-specific distributions, so holding a suite out of
training produces genuine covariate drift — the paper's evaluation
protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from ..util import stable_hash

#: suite name -> latent parameter distribution (loc, spread per knob).
#: The three C1 suites mirror the paper's Magni dataset; the seven C3
#: suites mirror the DeepTune corpus.  Values are chosen so that suites
#: overlap enough to learn shared structure but differ enough to drift.
SUITE_PROFILES = {
    # compute, memory, divergence, footprint(log2 KB), parallelism(log2), locality
    "amd-sdk": dict(compute=(28.0, 7.0), memory=(10.0, 3.0), divergence=(0.12, 0.05),
                    footprint=(8.0, 1.5), parallelism=(15.0, 1.5), locality=(0.7, 0.1)),
    "nvidia-sdk": dict(compute=(17.0, 5.0), memory=(18.0, 4.0), divergence=(0.25, 0.08),
                       footprint=(10.5, 1.5), parallelism=(17.0, 1.5), locality=(0.5, 0.12)),
    "parboil": dict(compute=(38.0, 9.0), memory=(25.0, 6.0), divergence=(0.42, 0.1),
                    footprint=(13.0, 1.5), parallelism=(19.0, 1.2), locality=(0.35, 0.1)),
    "polybench": dict(compute=(45.0, 8.0), memory=(14.0, 4.0), divergence=(0.08, 0.04),
                      footprint=(11.0, 1.2), parallelism=(16.0, 1.0), locality=(0.8, 0.08)),
    "rodinia": dict(compute=(22.0, 6.0), memory=(30.0, 6.0), divergence=(0.5, 0.12),
                    footprint=(14.0, 1.6), parallelism=(18.0, 1.4), locality=(0.3, 0.1)),
    "shoc": dict(compute=(12.0, 4.0), memory=(8.0, 2.5), divergence=(0.18, 0.06),
                 footprint=(7.0, 1.2), parallelism=(14.0, 1.3), locality=(0.6, 0.1)),
    "npb": dict(compute=(55.0, 10.0), memory=(35.0, 7.0), divergence=(0.3, 0.08),
                footprint=(15.5, 1.4), parallelism=(20.0, 1.0), locality=(0.45, 0.1)),
}

#: the three suites used by the thread-coarsening case study (C1)
COARSENING_SUITES = ("amd-sdk", "nvidia-sdk", "parboil")

#: the seven suites used by the device-mapping case study (C3)
MAPPING_SUITES = tuple(SUITE_PROFILES)


@dataclass(frozen=True)
class KernelSpec:
    """Latent workload description of one synthetic OpenCL kernel.

    Attributes:
        name: kernel identifier, unique within a generated dataset.
        suite: benchmark suite the kernel belongs to.
        compute_ops: arithmetic operations per work-item.
        memory_ops: global memory accesses per work-item.
        divergence: fraction of work-items taking divergent branches.
        footprint_log2_kb: log2 of the working-set size in KB.
        parallelism_log2: log2 of the global work size.
        locality: memory coalescing/cache-friendliness in [0, 1].
        transfer_kb: host-device transfer volume (relevant for C3).
        work_group: work-group size.
    """

    name: str
    suite: str
    compute_ops: float
    memory_ops: float
    divergence: float
    footprint_log2_kb: float
    parallelism_log2: float
    locality: float
    transfer_kb: float
    work_group: int

    def feature_vector(self) -> np.ndarray:
        """Numeric features used by classical models and simulators."""
        return np.array(
            [
                self.compute_ops,
                self.memory_ops,
                self.divergence,
                self.footprint_log2_kb,
                self.parallelism_log2,
                self.locality,
                np.log1p(self.transfer_kb),
                float(self.work_group),
                self.compute_ops / (self.memory_ops + 1.0),  # arithmetic intensity
            ]
        )


FEATURE_NAMES = (
    "compute_ops",
    "memory_ops",
    "divergence",
    "footprint_log2_kb",
    "parallelism_log2",
    "locality",
    "log_transfer_kb",
    "work_group",
    "arithmetic_intensity",
)


def generate_kernel(suite: str, index: int, rng: np.random.Generator) -> KernelSpec:
    """Draw one kernel from a suite's latent parameter distribution."""
    profile = SUITE_PROFILES.get(suite)
    if profile is None:
        raise ValueError(f"unknown suite {suite!r}; options: {sorted(SUITE_PROFILES)}")

    def draw(knob, lower, upper):
        loc, spread = profile[knob]
        return float(np.clip(rng.normal(loc, spread), lower, upper))

    return KernelSpec(
        name=f"{suite}-k{index:03d}",
        suite=suite,
        compute_ops=draw("compute", 1.0, 120.0),
        memory_ops=draw("memory", 1.0, 80.0),
        divergence=draw("divergence", 0.0, 1.0),
        footprint_log2_kb=draw("footprint", 2.0, 20.0),
        parallelism_log2=draw("parallelism", 8.0, 24.0),
        locality=draw("locality", 0.05, 0.95),
        transfer_kb=float(2.0 ** np.clip(rng.normal(profile["footprint"][0] - 1.0, 2.0), 1.0, 22.0)),
        work_group=int(rng.choice([64, 128, 256])),
    )


def generate_suite(suite: str, n_kernels: int, seed: int = 0) -> list:
    """Generate ``n_kernels`` kernels for one suite, deterministically."""
    rng = np.random.default_rng(stable_hash(suite) ^ seed)
    return [generate_kernel(suite, i, rng) for i in range(n_kernels)]


def render_kernel_source(spec: KernelSpec) -> str:
    """Render a spec to OpenCL-like source text for the sequence models.

    The source is deliberately schematic — what matters is that its
    token statistics correlate with the latent parameters exactly as
    real suites' source statistics correlate with their behaviour.
    """
    body = []
    body.append(f"__kernel void {spec.name.replace('-', '_')}(")
    body.append("    __global float* a, __global float* b, __global float* out) {")
    body.append("  int gid = get_global_id(0);")
    n_loads = max(1, int(round(spec.memory_ops / 4)))
    for i in range(min(n_loads, 12)):
        if spec.locality > 0.5:
            body.append(f"  float v{i} = a[gid + {i}];")
        else:
            body.append(f"  float v{i} = a[gid * {i + 2} + b[gid]];")
    n_ops = max(1, int(round(spec.compute_ops / 6)))
    accum = "v0"
    for i in range(min(n_ops, 16)):
        source = f"v{i % max(1, min(n_loads, 12))}"
        body.append(f"  {accum} = mad({accum}, {source}, {accum});")
    if spec.divergence > 0.3:
        body.append("  if (gid % 2 == 0) {")
        body.append(f"    {accum} = {accum} * 0.5f + sqrt({accum});")
        body.append("  } else {")
        body.append(f"    {accum} = {accum} - 1.0f;")
        body.append("  }")
    if spec.footprint_log2_kb > 12:
        body.append("  __local float tile[256];")
        body.append("  tile[get_local_id(0)] = " + accum + ";")
        body.append("  barrier(CLK_LOCAL_MEM_FENCE);")
    body.append(f"  out[gid] = {accum};")
    body.append("}")
    return "\n".join(body)


@dataclass
class KernelDataset:
    """A generated corpus of kernels with cached source and features."""

    kernels: list = field(default_factory=list)

    @classmethod
    def for_suites(cls, suites, kernels_per_suite: int, seed: int = 0) -> "KernelDataset":
        kernels = []
        for suite in suites:
            kernels.extend(generate_suite(suite, kernels_per_suite, seed))
        return cls(kernels=kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    def features(self) -> np.ndarray:
        return np.stack([k.feature_vector() for k in self.kernels])

    def sources(self) -> list:
        return [render_kernel_source(k) for k in self.kernels]

    def suites(self) -> np.ndarray:
        return np.asarray([k.suite for k in self.kernels])

    def split_by_suite(self, held_out) -> tuple:
        """Return ``(train_indices, test_indices)`` holding suites out."""
        held = {held_out} if isinstance(held_out, str) else set(held_out)
        suites = self.suites()
        test_mask = np.isin(suites, sorted(held))
        return np.flatnonzero(~test_mask), np.flatnonzero(test_mask)
