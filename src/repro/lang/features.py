"""Static feature extraction from raw source text.

These are the "summarize the input program into numerical values"
feature extractors the paper mentions (e.g. instruction counts).  They
work on any C/OpenCL-like source produced by the generators in this
package and back the classical (non-neural) underlying models.
"""

from __future__ import annotations

import numpy as np

from .tokens import tokenize

_CONTROL_TOKENS = {"if", "else", "for", "while", "switch", "case", "goto"}
_MEMORY_TOKENS = {
    "malloc", "calloc", "realloc", "free", "memcpy", "memset",
    "strcpy", "strncpy", "sprintf", "snprintf",
}
_CONCURRENCY_TOKENS = {
    "pthread_create", "pthread_join", "pthread_mutex_lock",
    "pthread_mutex_unlock", "barrier", "atomic_add", "lock", "unlock",
}
_ARITHMETIC_TOKENS = {"+", "-", "*", "/", "%", "mad", "fma", "sqrt", "exp", "log"}
_POINTER_TOKENS = {"->", "*", "&"}
_COMPARISON_TOKENS = {"<", ">", "<=", ">=", "==", "!="}

FEATURE_NAMES = (
    "n_tokens",
    "n_identifiers",
    "n_numbers",
    "control_density",
    "memory_call_density",
    "concurrency_density",
    "arithmetic_density",
    "pointer_density",
    "comparison_density",
    "array_index_density",
    "call_density",
    "statement_count",
    "brace_depth_proxy",
    "unique_identifier_ratio",
)


def code_metrics(code: str) -> np.ndarray:
    """Return a fixed-length numeric summary of one source string.

    Densities are normalized by token count so functions of different
    lengths remain comparable.
    """
    tokens = tokenize(code)
    n = max(1, len(tokens))
    identifiers = [
        t for t in tokens if t and (t[0].isalpha() or t[0] == "_")
    ]
    counts = {
        "control": 0,
        "memory": 0,
        "concurrency": 0,
        "arithmetic": 0,
        "pointer": 0,
        "comparison": 0,
        "index": 0,
        "call": 0,
        "statement": 0,
        "brace": 0,
        "number": 0,
    }
    for i, token in enumerate(tokens):
        if token in _CONTROL_TOKENS:
            counts["control"] += 1
        if token in _MEMORY_TOKENS:
            counts["memory"] += 1
        if token in _CONCURRENCY_TOKENS:
            counts["concurrency"] += 1
        if token in _ARITHMETIC_TOKENS:
            counts["arithmetic"] += 1
        if token in _POINTER_TOKENS:
            counts["pointer"] += 1
        if token in _COMPARISON_TOKENS:
            counts["comparison"] += 1
        if token == "[":
            counts["index"] += 1
        if token == ";":
            counts["statement"] += 1
        if token == "{":
            counts["brace"] += 1
        if token == "<num>":
            counts["number"] += 1
        if (
            token == "("
            and i > 0
            and tokens[i - 1]
            and (tokens[i - 1][0].isalpha() or tokens[i - 1][0] == "_")
            and tokens[i - 1] not in _CONTROL_TOKENS
        ):
            counts["call"] += 1

    unique_ratio = len(set(identifiers)) / max(1, len(identifiers))
    return np.array(
        [
            float(len(tokens)),
            float(len(identifiers)),
            float(counts["number"]),
            counts["control"] / n,
            counts["memory"] / n,
            counts["concurrency"] / n,
            counts["arithmetic"] / n,
            counts["pointer"] / n,
            counts["comparison"] / n,
            counts["index"] / n,
            counts["call"] / n,
            float(counts["statement"]),
            float(counts["brace"]),
            unique_ratio,
        ]
    )


def static_code_features(sources) -> np.ndarray:
    """Batch version of :func:`code_metrics`: ``(n, n_features)``."""
    return np.stack([code_metrics(code) for code in sources])
