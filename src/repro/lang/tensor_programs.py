"""Synthetic tensor-program (schedule) generator (DNN code generation, C5).

Substitutes for the TenSet BERT workloads driving TLP's cost model: we
model the dominant operator of each BERT variant — dense matmuls of
network-specific shapes — and generate candidate *schedules* (tile
sizes, unrolling, vectorization, parallelism) the TVM-style search
would explore.  The analytical simulator in
:mod:`repro.simulators.tensor` turns a (network, schedule) pair into a
throughput label.  Training on BERT-base schedules and predicting on
the other variants reproduces the paper's drift protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from ..util import stable_hash

#: BERT variant -> (hidden size, intermediate size, layers, heads)
BERT_VARIANTS = {
    "bert-tiny": dict(hidden=128, intermediate=512, layers=2, heads=2),
    "bert-base": dict(hidden=768, intermediate=3072, layers=12, heads=12),
    "bert-medium": dict(hidden=512, intermediate=2048, layers=8, heads=8),
    "bert-large": dict(hidden=1024, intermediate=4096, layers=24, heads=16),
}

TILE_CHOICES = (4, 8, 16, 32, 64, 128)
UNROLL_CHOICES = (0, 16, 64, 256)
VECTORIZE_CHOICES = (1, 4, 8, 16)
PARALLEL_CHOICES = (1, 2, 4, 8, 12)


@dataclass(frozen=True)
class ScheduleSpec:
    """One candidate schedule for a network's dominant matmul.

    Attributes:
        network: BERT variant name.
        m, n, k: matmul dimensions derived from the network shape.
        tile_m, tile_n, tile_k: loop tiling factors.
        unroll: max-unroll pragma value (0 = off).
        vectorize: inner-loop vector width.
        parallel: number of parallel outer chunks.
    """

    network: str
    m: int
    n: int
    k: int
    tile_m: int
    tile_n: int
    tile_k: int
    unroll: int
    vectorize: int
    parallel: int

    def feature_vector(self) -> np.ndarray:
        """Numeric schedule features (the TLP paper's input analogue)."""
        return np.array(
            [
                np.log2(self.m),
                np.log2(self.n),
                np.log2(self.k),
                np.log2(self.tile_m),
                np.log2(self.tile_n),
                np.log2(self.tile_k),
                np.log1p(self.unroll),
                float(self.vectorize),
                float(self.parallel),
                np.log2(self.tile_m * self.tile_n * self.tile_k),
                float(self.m % self.tile_m == 0),
                float(self.n % self.tile_n == 0),
            ]
        )

    def token_sequence(self, max_len: int = 24) -> np.ndarray:
        """Schedule as a short token-id sequence for transformer models.

        Mirrors TLP's insight that schedule primitives form a sentence;
        ids are small ints in a fixed schedule vocabulary (0 = pad).
        """
        vocabulary = []
        vocabulary.append(1 + int(np.log2(self.m)))          # shape tokens 1..20
        vocabulary.append(1 + int(np.log2(self.n)))
        vocabulary.append(1 + int(np.log2(self.k)))
        vocabulary.append(21 + TILE_CHOICES.index(self.tile_m))
        vocabulary.append(27 + TILE_CHOICES.index(self.tile_n))
        vocabulary.append(33 + TILE_CHOICES.index(self.tile_k))
        vocabulary.append(39 + UNROLL_CHOICES.index(self.unroll))
        vocabulary.append(43 + VECTORIZE_CHOICES.index(self.vectorize))
        vocabulary.append(47 + PARALLEL_CHOICES.index(self.parallel))
        padded = np.zeros(max_len, dtype=int)
        padded[: len(vocabulary)] = vocabulary
        return padded


SCHEDULE_VOCAB_SIZE = 64
FEATURE_NAMES = (
    "log_m",
    "log_n",
    "log_k",
    "log_tile_m",
    "log_tile_n",
    "log_tile_k",
    "log_unroll",
    "vectorize",
    "parallel",
    "log_tile_volume",
    "m_divisible",
    "n_divisible",
)


def matmul_shape(network: str, rng: np.random.Generator) -> tuple:
    """Sample one of the network's characteristic matmul shapes."""
    config = BERT_VARIANTS.get(network)
    if config is None:
        raise ValueError(f"unknown network {network!r}; options: {sorted(BERT_VARIANTS)}")
    hidden = config["hidden"]
    intermediate = config["intermediate"]
    seq_len = int(rng.choice([64, 128, 256]))
    shapes = [
        (seq_len, hidden, hidden),          # QKV projection
        (seq_len, intermediate, hidden),    # FFN up
        (seq_len, hidden, intermediate),    # FFN down
    ]
    return shapes[int(rng.integers(len(shapes)))]


def generate_schedule(network: str, rng: np.random.Generator) -> ScheduleSpec:
    """Sample one random candidate schedule for a network."""
    m, n, k = matmul_shape(network, rng)
    return ScheduleSpec(
        network=network,
        m=m,
        n=n,
        k=k,
        tile_m=int(rng.choice(TILE_CHOICES)),
        tile_n=int(rng.choice(TILE_CHOICES)),
        tile_k=int(rng.choice(TILE_CHOICES)),
        unroll=int(rng.choice(UNROLL_CHOICES)),
        vectorize=int(rng.choice(VECTORIZE_CHOICES)),
        parallel=int(rng.choice(PARALLEL_CHOICES)),
    )


def generate_dataset(network: str, n_schedules: int, seed: int = 0) -> list:
    """Generate ``n_schedules`` candidate schedules for one network."""
    rng = np.random.default_rng(stable_hash(network) ^ seed)
    return [generate_schedule(network, rng) for _ in range(n_schedules)]


def features(schedules) -> np.ndarray:
    return np.stack([schedule.feature_vector() for schedule in schedules])


def token_sequences(schedules, max_len: int = 24) -> np.ndarray:
    return np.stack([schedule.token_sequence(max_len) for schedule in schedules])
