"""Program substrate: code generators, tokenization, features, graphs.

Every dataset the paper's five case studies depend on is synthesized
here (see DESIGN.md for the substitution rationale): OpenCL kernels
across benchmark suites, vectorizable loop variants, era-evolving
vulnerable C functions, and BERT tensor-program schedules.
"""

from .features import code_metrics, static_code_features
from .graphs import build_program_graph, build_program_graphs
from .kernels import (
    COARSENING_SUITES,
    MAPPING_SUITES,
    SUITE_PROFILES,
    KernelDataset,
    KernelSpec,
    generate_kernel,
    generate_suite,
    render_kernel_source,
)
from .loops import (
    CONFIGURATIONS,
    FAMILY_NAMES,
    INTERLEAVE_FACTORS,
    LOOP_FAMILIES,
    VECTOR_FACTORS,
    LoopDataset,
    LoopSpec,
    generate_loop,
    render_loop_source,
)
from .tensor_programs import (
    BERT_VARIANTS,
    SCHEDULE_VOCAB_SIZE,
    ScheduleSpec,
    generate_schedule,
)
from .tokens import CodeVocabulary, token_histogram, tokenize
from .vulnerabilities import (
    CWE_TYPES,
    ERAS,
    VulnerabilitySample,
    generate_sample,
    split_by_year,
)
from . import tensor_programs, vulnerabilities

__all__ = [
    "BERT_VARIANTS",
    "COARSENING_SUITES",
    "CONFIGURATIONS",
    "CWE_TYPES",
    "CodeVocabulary",
    "ERAS",
    "FAMILY_NAMES",
    "INTERLEAVE_FACTORS",
    "KernelDataset",
    "KernelSpec",
    "LOOP_FAMILIES",
    "LoopDataset",
    "LoopSpec",
    "MAPPING_SUITES",
    "SCHEDULE_VOCAB_SIZE",
    "SUITE_PROFILES",
    "ScheduleSpec",
    "VECTOR_FACTORS",
    "VulnerabilitySample",
    "build_program_graph",
    "build_program_graphs",
    "code_metrics",
    "generate_kernel",
    "generate_loop",
    "generate_sample",
    "generate_schedule",
    "generate_suite",
    "render_kernel_source",
    "render_loop_source",
    "split_by_year",
    "static_code_features",
    "tensor_programs",
    "token_histogram",
    "tokenize",
    "vulnerabilities",
]
