"""Synthetic vulnerable-C-function generator (vulnerability detection, C4).

Substitutes for the paper's NVD/CVE corpus (2013-2023, top-8 CWEs).
Each sample is a small C function that either contains a vulnerability
pattern or its patched counterpart.  Crucially, the *surface idiom* of
each CWE evolves by era — mirroring the paper's motivating example
where a 2012 double-free is two literal ``free`` calls but a 2023 one
hides behind a thread-spawned cleanup wrapper.  Training on early eras
and testing on late ones therefore produces real concept drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: the eight CWE categories (paper: top-8 of the 2023 CWE list)
CWE_TYPES = (
    "double-free",
    "use-after-free",
    "buffer-overflow",
    "integer-overflow",
    "null-dereference",
    "format-string",
    "out-of-bounds-read",
    "uninitialized-use",
)

ERAS = {
    "early": range(2013, 2018),
    "mid": range(2018, 2021),
    "late": range(2021, 2024),
}

_NAME_POOLS = {
    "early": ("buf", "ptr", "data", "tmp", "name", "str", "p", "q"),
    "mid": ("buffer", "handle", "ctx", "node", "entry", "conn", "req", "pkt"),
    "late": ("session_state", "hsts_cache", "worker_ctx", "async_buf",
             "shared_queue", "rpc_payload", "tls_conn", "io_uring_sqe"),
}


def _era_of(year: int) -> str:
    for era, years in ERAS.items():
        if year in years:
            return era
    raise ValueError(f"year {year} outside the supported range 2013-2023")


@dataclass(frozen=True)
class VulnerabilitySample:
    """One generated C function with its ground-truth labels."""

    code: str
    vulnerable: bool
    cwe: str
    year: int
    name: str

    @property
    def era(self) -> str:
        return _era_of(self.year)


def _double_free(var, era, vulnerable, index):
    if era == "early":
        body = [
            f"static int parse_attr_{index}(char* input) {{",
            f"  char* {var} = malloc(64);",
            f"  if (input) strncpy({var}, input, 63);",
            f"  free({var});",
        ]
        if vulnerable:
            body.append(f"  free({var});")
        body += ["  return 0;", "}"]
    elif era == "mid":
        body = [
            f"static void release_{index}(ctx_t* c) {{",
            f"  if (c->{var}) {{ free(c->{var}); ",
        ]
        body.append("  }" if vulnerable else f"    c->{var} = 0; }}")
        body += [
            f"}}",
            f"int handler_{index}(ctx_t* c) {{",
            f"  release_{index}(c);",
            f"  release_{index}(c);",
            "  return 0;",
            "}",
        ]
    else:  # late: concurrent cleanup through a wrapper
        body = [
            f"static void cleanup_{index}(void* arg) {{",
            f"  state_t* s = (state_t*)arg;",
        ]
        if vulnerable:
            body.append(f"  hsts_free(s->{var});")
        else:
            body += [
                "  pthread_mutex_lock(&s->lock);",
                f"  if (s->{var}) {{ hsts_free(s->{var}); s->{var} = 0; }}",
                "  pthread_mutex_unlock(&s->lock);",
            ]
        body += [
            "}",
            f"void spawn_workers_{index}(state_t* s, int n) {{",
            "  for (int i = 0; i < n; i++) {",
            f"    pthread_create(&s->tid[i], 0, (void*)cleanup_{index}, s);",
            "  }",
            "}",
        ]
    return "\n".join(body)


def _use_after_free(var, era, vulnerable, index):
    if era == "early":
        body = [
            f"int read_record_{index}(char* src) {{",
            f"  char* {var} = malloc(32);",
            f"  memcpy({var}, src, 32);",
            f"  free({var});",
        ]
        body.append(f"  return {var}[0];" if vulnerable else "  return 0;")
        body.append("}")
    elif era == "mid":
        body = [
            f"int drain_{index}(queue_t* q) {{",
            f"  node_t* {var} = q->head;",
            f"  q->head = {var}->next;",
            f"  free({var});",
        ]
        body.append(
            f"  return {var}->value;" if vulnerable else "  return q->head ? q->head->value : 0;"
        )
        body.append("}")
    else:
        body = [
            f"static void on_complete_{index}(conn_t* c) {{",
            "  conn_release(c);",
            "}",
            f"int submit_{index}(conn_t* c, req_t* r) {{",
            f"  c->{var} = r;",
            f"  schedule_async(on_complete_{index}, c);",
        ]
        body.append(
            f"  return c->{var}->status;" if vulnerable else "  return queue_status(r);"
        )
        body.append("}")
    return "\n".join(body)


def _buffer_overflow(var, era, vulnerable, index):
    if era == "early":
        size = 16 if vulnerable else 64
        body = [
            f"void copy_input_{index}(char* src) {{",
            f"  char {var}[{size}];",
            f"  strcpy({var}, src);" if vulnerable else f"  strncpy({var}, src, {size} - 1);",
            f"  printf(\"%s\", {var});",
            "}",
        ]
    elif era == "mid":
        body = [
            f"void assemble_{index}(pkt_t* p, char* payload, int len) {{",
            f"  char {var}[128];",
        ]
        if vulnerable:
            body.append(f"  memcpy({var}, payload, len);")
        else:
            body.append(f"  memcpy({var}, payload, len < 128 ? len : 128);")
        body += [f"  emit(p, {var});", "}"]
    else:
        body = [
            f"int deserialize_{index}(rpc_t* rpc) {{",
            f"  size_t n = rpc->hdr.count * rpc->hdr.width;",
            f"  char* {var} = malloc(rpc->hdr.count);",
        ]
        if vulnerable:
            body.append(f"  fill_entries({var}, rpc->body, n);")
        else:
            body.append(f"  fill_entries({var}, rpc->body, rpc->hdr.count);")
        body += ["  return 0;", "}"]
    return "\n".join(body)


def _integer_overflow(var, era, vulnerable, index):
    if era == "early":
        body = [
            f"char* alloc_table_{index}(int rows, int cols) {{",
            f"  int {var} = rows * cols;" if vulnerable else f"  long {var} = (long)rows * cols;\n  if ({var} > 1 << 20) return 0;",
            f"  return malloc({var});",
            "}",
        ]
    elif era == "mid":
        body = [
            f"int grow_{index}(vec_t* v, unsigned add) {{",
        ]
        if vulnerable:
            body.append(f"  unsigned {var} = v->len + add;")
        else:
            body.append(
                f"  unsigned {var};\n  if (__builtin_add_overflow(v->len, add, &{var})) return -1;"
            )
        body += [f"  v->data = realloc(v->data, {var});", "  return 0;", "}"]
    else:
        body = [
            f"size_t frame_len_{index}(hdr_t* h) {{",
        ]
        if vulnerable:
            body.append(f"  size_t {var} = h->chunks << h->shift;")
        else:
            body.append(
                f"  size_t {var};\n  if (h->shift > 16 || h->chunks > (SIZE_MAX >> h->shift)) return 0;\n  {var} = h->chunks << h->shift;"
            )
        body += [f"  return {var} + sizeof(hdr_t);", "}"]
    return "\n".join(body)


def _null_dereference(var, era, vulnerable, index):
    if era == "early":
        body = [
            f"int length_{index}(char* s) {{",
            f"  char* {var} = strchr(s, ':');",
        ]
        body.append(f"  return {var}[1];" if vulnerable else f"  return {var} ? {var}[1] : -1;")
        body.append("}")
    elif era == "mid":
        body = [
            f"int lookup_{index}(map_t* m, int key) {{",
            f"  entry_t* {var} = map_find(m, key);",
        ]
        body.append(f"  return {var}->value;" if vulnerable else f"  if (!{var}) return 0;\n  return {var}->value;")
        body.append("}")
    else:
        body = [
            f"int begin_{index}(tls_t* t) {{",
            f"  session_t* {var} = tls_session(t);",
        ]
        if vulnerable:
            body.append(f"  return {var}->epoch + resume({var});")
        else:
            body.append(f"  if (!{var}) return tls_error(t);\n  return {var}->epoch + resume({var});")
        body.append("}")
    return "\n".join(body)


def _format_string(var, era, vulnerable, index):
    if era == "early":
        body = [
            f"void log_msg_{index}(char* {var}) {{",
            f"  printf({var});" if vulnerable else f"  printf(\"%s\", {var});",
            "}",
        ]
    elif era == "mid":
        body = [
            f"void audit_{index}(conn_t* c, char* {var}) {{",
            f"  fprintf(c->log, {var});" if vulnerable else f"  fprintf(c->log, \"%s\", {var});",
            "}",
        ]
    else:
        body = [
            f"void trace_{index}(ctx_t* c) {{",
            f"  char* {var} = request_header(c, \"X-Trace\");",
            f"  snprintf(c->out, 256, {var});" if vulnerable else f"  snprintf(c->out, 256, \"%s\", {var});",
            "}",
        ]
    return "\n".join(body)


def _oob_read(var, era, vulnerable, index):
    if era == "early":
        bound = "<=" if vulnerable else "<"
        body = [
            f"int sum_{index}(int* {var}, int n) {{",
            "  int s = 0;",
            f"  for (int i = 0; i {bound} n; i++) s += {var}[i];",
            "  return s;",
            "}",
        ]
    elif era == "mid":
        body = [
            f"int field_{index}(pkt_t* p, int idx) {{",
        ]
        if vulnerable:
            body.append(f"  return p->{var}[idx];")
        else:
            body.append(f"  if (idx < 0 || idx >= p->count) return -1;\n  return p->{var}[idx];")
        body.append("}")
    else:
        body = [
            f"int decode_{index}(frame_t* f) {{",
            f"  int off = f->hdr.offset;",
        ]
        if vulnerable:
            body.append(f"  return f->{var}[off + f->hdr.delta];")
        else:
            body.append(
                f"  size_t end = (size_t)off + f->hdr.delta;\n  if (end >= f->len) return -1;\n  return f->{var}[end];"
            )
        body.append("}")
    return "\n".join(body)


def _uninitialized(var, era, vulnerable, index):
    if era == "early":
        body = [
            f"int pick_{index}(int flag) {{",
            f"  int {var};",
        ]
        if not vulnerable:
            body.append(f"  {var} = 0;")
        body += [f"  if (flag) {var} = 7;", f"  return {var};", "}"]
    elif era == "mid":
        body = [
            f"int stats_{index}(sample_t* s, int n) {{",
            f"  acc_t {var};" if vulnerable else f"  acc_t {var} = {{0}};",
            "  for (int i = 0; i < n; i++) {",
            f"    {var}.total += s[i].v;",
            "  }",
            f"  return {var}.total;",
            "}",
        ]
    else:
        body = [
            f"int negotiate_{index}(tls_t* t) {{",
            f"  params_t {var};" if vulnerable else f"  params_t {var};\n  memset(&{var}, 0, sizeof({var}));",
            f"  if (t->mode == 2) load_params(t, &{var});",
            f"  return apply_params(t, &{var});",
            "}",
        ]
    return "\n".join(body)


_RENDERERS = {
    "double-free": _double_free,
    "use-after-free": _use_after_free,
    "buffer-overflow": _buffer_overflow,
    "integer-overflow": _integer_overflow,
    "null-dereference": _null_dereference,
    "format-string": _format_string,
    "out-of-bounds-read": _oob_read,
    "uninitialized-use": _uninitialized,
}


def generate_sample(
    cwe: str, year: int, vulnerable: bool, index: int, rng: np.random.Generator
) -> VulnerabilitySample:
    """Render one labelled C function for the given CWE, year and polarity."""
    renderer = _RENDERERS.get(cwe)
    if renderer is None:
        raise ValueError(f"unknown CWE {cwe!r}; options: {CWE_TYPES}")
    era = _era_of(year)
    var = str(rng.choice(_NAME_POOLS[era]))
    code = renderer(var, era, vulnerable, index)
    return VulnerabilitySample(
        code=code,
        vulnerable=vulnerable,
        cwe=cwe,
        year=year,
        name=f"{cwe}-{year}-{index:05d}",
    )


def generate_dataset(
    n_samples: int = 1000,
    years=range(2013, 2024),
    vulnerable_fraction: float = 0.5,
    seed: int = 0,
) -> list:
    """Generate a balanced corpus across CWE types and years."""
    if not 0.0 < vulnerable_fraction < 1.0:
        raise ValueError("vulnerable_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    years = list(years)
    samples = []
    for index in range(n_samples):
        cwe = CWE_TYPES[index % len(CWE_TYPES)]
        year = int(rng.choice(years))
        vulnerable = bool(rng.random() < vulnerable_fraction)
        samples.append(generate_sample(cwe, year, vulnerable, index, rng))
    return samples


def split_by_year(samples, train_until: int = 2020) -> tuple:
    """Temporal split: indices of samples up to vs after ``train_until``."""
    years = np.asarray([s.year for s in samples])
    train_mask = years <= train_until
    return np.flatnonzero(train_mask), np.flatnonzero(~train_mask)
