"""Program-graph construction (ProGraML-like representation).

The ProGraML underlying model consumes graphs whose nodes are
statements/values and whose edges encode control and data flow.  This
module builds such graphs from generated source text: one node per
statement with a per-node feature vector derived from its tokens, plus
sequential control-flow edges and def-use data-flow edges inferred from
identifier reads/writes.
"""

from __future__ import annotations

import numpy as np

from .tokens import tokenize

_NODE_FEATURES = 10


def _statement_features(tokens) -> np.ndarray:
    """Fixed-length feature vector for one statement's token list."""
    n = max(1, len(tokens))
    token_set = set(tokens)
    return np.array(
        [
            float(len(tokens)),
            1.0 if token_set & {"if", "else", "switch"} else 0.0,
            1.0 if token_set & {"for", "while"} else 0.0,
            1.0 if token_set & {"malloc", "calloc", "free", "realloc"} else 0.0,
            1.0 if "=" in token_set else 0.0,
            sum(1 for t in tokens if t in {"+", "-", "*", "/", "mad"}) / n,
            sum(1 for t in tokens if t == "[") / n,
            1.0 if token_set & {"barrier", "pthread_create", "lock"} else 0.0,
            1.0 if "return" in token_set else 0.0,
            sum(1 for t in tokens if t == "<num>") / n,
        ]
    )


def _split_statements(code: str) -> list:
    """Split source into statement-ish chunks on ';', '{' and '}'."""
    statements = []
    current = []
    for token in tokenize(code):
        current.append(token)
        if token in (";", "{", "}"):
            if len(current) > 1 or current[0] not in ("{", "}"):
                statements.append(current)
            current = []
    if current:
        statements.append(current)
    return statements


def _identifiers(tokens) -> list:
    return [t for t in tokens if t and (t[0].isalpha() or t[0] == "_")]


def build_program_graph(code: str) -> dict:
    """Build a ``{"X", "A"}`` graph dict for :class:`repro.ml.GNNClassifier`.

    Edges: (a) control flow between consecutive statements, and (b)
    data flow from a statement that writes an identifier (appears left
    of ``=``) to later statements reading it.
    """
    statements = _split_statements(code)
    if not statements:
        statements = [["<num>"]]
    n = len(statements)
    features = np.stack([_statement_features(tokens) for tokens in statements])
    adjacency = np.zeros((n, n))

    # control-flow chain
    for i in range(n - 1):
        adjacency[i, i + 1] = 1.0
        adjacency[i + 1, i] = 1.0

    # def-use edges
    writes = {}
    for i, tokens in enumerate(statements):
        if "=" in tokens:
            eq = tokens.index("=")
            for name in _identifiers(tokens[:eq]):
                writes.setdefault(name, []).append(i)
    for i, tokens in enumerate(statements):
        read_from = tokens.index("=") + 1 if "=" in tokens else 0
        for name in _identifiers(tokens[read_from:]):
            for writer in writes.get(name, ()):
                if writer < i:
                    adjacency[writer, i] = 1.0
                    adjacency[i, writer] = 1.0
    return {"X": features, "A": adjacency}


def build_program_graphs(sources) -> list:
    """Batch version of :func:`build_program_graph`."""
    return [build_program_graph(code) for code in sources]
