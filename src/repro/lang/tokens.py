"""A small C/OpenCL tokenizer and vocabulary.

The sequence models (DeepTune's LSTM, Vulde's Bi-LSTM, the transformer
classifiers) consume integer token sequences produced here.  Token id 0
is reserved for padding; unknown tokens map to a dedicated ``<unk>`` id.
"""

from __future__ import annotations

import re

import numpy as np
from ..util import stable_hash

# Order matters: multi-character operators must precede their prefixes.
_TOKEN_PATTERN = re.compile(
    r"""
    (?P<comment>/\*.*?\*/|//[^\n]*)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<number>\d+\.\d+[fF]?|\d+[uUlL]*|0x[0-9a-fA-F]+)
  | (?P<identifier>[A-Za-z_]\w*)
  | (?P<operator><<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|->|[-+*/%=<>!&|^~?:;,.(){}\[\]])
  | (?P<whitespace>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)

C_KEYWORDS = (
    "auto break case char const continue default do double else enum extern "
    "float for goto if int long register return short signed sizeof static "
    "struct switch typedef union unsigned void volatile while"
).split()

OPENCL_KEYWORDS = (
    "__kernel __global __local __private __constant kernel global local "
    "barrier get_global_id get_local_id get_group_id get_local_size "
    "get_global_size float2 float4 float8 int2 int4 uint uchar size_t"
).split()

COMMON_LIBRARY_IDENTIFIERS = (
    "malloc calloc realloc free memcpy memset strcpy strncpy strlen sprintf "
    "snprintf printf fprintf scanf fopen fclose fread fwrite exit abort "
    "pthread_create pthread_join pthread_mutex_lock pthread_mutex_unlock "
    "lock unlock atomic_add mad fma sqrt exp log sin cos min max abs"
).split()


def tokenize(code: str) -> list:
    """Split C/OpenCL source into a list of token strings.

    Comments and whitespace are dropped; strings and chars collapse to
    placeholder tokens so literal content does not blow up the
    vocabulary.
    """
    tokens = []
    position = 0
    while position < len(code):
        match = _TOKEN_PATTERN.match(code, position)
        if match is None:
            # Skip a single unrecognized character rather than failing:
            # generated code should never hit this, but robustness wins.
            position += 1
            continue
        position = match.end()
        kind = match.lastgroup
        if kind in ("whitespace", "comment"):
            continue
        if kind == "string":
            tokens.append("<str>")
        elif kind == "char":
            tokens.append("<chr>")
        elif kind == "number":
            tokens.append("<num>")
        else:
            tokens.append(match.group())
    return tokens


class CodeVocabulary:
    """Fixed vocabulary mapping tokens to contiguous integer ids.

    Ids: 0 = padding, 1 = ``<unk>``; known tokens start at 2.  Unseen
    identifiers hash into a small bucket range so fresh variable names
    (the paper's "renamed parameters" loops) stay in-vocabulary.
    """

    PAD = 0
    UNK = 1

    def __init__(self, extra_tokens=(), n_identifier_buckets: int = 32):
        if n_identifier_buckets < 1:
            raise ValueError("n_identifier_buckets must be >= 1")
        base = (
            C_KEYWORDS
            + OPENCL_KEYWORDS
            + COMMON_LIBRARY_IDENTIFIERS
            + ["<str>", "<chr>", "<num>"]
            + [
                "(", ")", "{", "}", "[", "]", ";", ",", ".",
                "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
                "?", ":", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
                "+=", "-=", "*=", "/=", "->", "<<", ">>",
            ]
            + list(extra_tokens)
        )
        self._index = {}
        next_id = 2
        for token in base:
            if token not in self._index:
                self._index[token] = next_id
                next_id += 1
        self._bucket_base = next_id
        self.n_identifier_buckets = n_identifier_buckets

    @property
    def size(self) -> int:
        """Total id space (padding and unk included)."""
        return self._bucket_base + self.n_identifier_buckets

    def token_id(self, token: str) -> int:
        """Return the id of one token (bucketing unknown identifiers)."""
        known = self._index.get(token)
        if known is not None:
            return known
        if token and (token[0].isalpha() or token[0] == "_"):
            bucket = stable_hash(token) % self.n_identifier_buckets
            return self._bucket_base + bucket
        return self.UNK

    def encode(self, code: str, max_len: int = 64) -> np.ndarray:
        """Tokenize and encode source into a fixed-length id vector.

        Sequences longer than ``max_len`` are truncated; shorter ones
        are zero-padded on the right.
        """
        if max_len < 1:
            raise ValueError("max_len must be >= 1")
        ids = [self.token_id(token) for token in tokenize(code)][:max_len]
        padded = np.zeros(max_len, dtype=int)
        padded[: len(ids)] = ids
        return padded

    def encode_batch(self, sources, max_len: int = 64) -> np.ndarray:
        """Encode a list of source strings into a ``(n, max_len)`` matrix."""
        return np.stack([self.encode(code, max_len) for code in sources])


def token_histogram(code: str, vocabulary: CodeVocabulary) -> np.ndarray:
    """Bag-of-tokens feature vector over the vocabulary id space.

    Used as a cheap static feature extractor for classical models.
    """
    counts = np.zeros(vocabulary.size)
    for token in tokenize(code):
        counts[vocabulary.token_id(token)] += 1.0
    total = counts.sum()
    if total > 0:
        counts /= total
    return counts
