"""Synthetic vectorizable-loop generator (loop vectorization, C2).

Substitutes for the 6,000 synthetic loops of the paper's loop
vectorization study, which were created by renaming parameters of 18
base benchmarks from the LLVM vectorization test suite.  We model the
same structure: 18 base *loop families* with distinct latent behaviour
(stride, dependency distance, trip count, arithmetic intensity), each
expanded into many renamed variants.  Holding out families introduces
the drift the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: the 35 (VF, IF) combinations explored in the paper: VF in
#: {1,2,4,8,16,32,64}, IF in {1,2,4,8,16}
VECTOR_FACTORS = (1, 2, 4, 8, 16, 32, 64)
INTERLEAVE_FACTORS = (1, 2, 4, 8, 16)
CONFIGURATIONS = tuple(
    (vf, interleave) for vf in VECTOR_FACTORS for interleave in INTERLEAVE_FACTORS
)

#: 18 base loop families: (stride, dependency distance, log2 trip count,
#: arithmetic intensity, reduction?, conditional?)
LOOP_FAMILIES = {
    "s000_saxpy": dict(stride=1, dependency=0, trip_log2=16.0, intensity=1.0, reduction=False, conditional=False),
    "s111_unroll": dict(stride=2, dependency=0, trip_log2=14.0, intensity=1.5, reduction=False, conditional=False),
    "s112_reverse": dict(stride=1, dependency=1, trip_log2=13.0, intensity=1.0, reduction=False, conditional=False),
    "s121_forward": dict(stride=1, dependency=2, trip_log2=14.0, intensity=1.2, reduction=False, conditional=False),
    "s122_stride": dict(stride=4, dependency=0, trip_log2=15.0, intensity=1.0, reduction=False, conditional=False),
    "s131_scalar": dict(stride=1, dependency=0, trip_log2=12.0, intensity=4.0, reduction=False, conditional=False),
    "s141_gather": dict(stride=8, dependency=0, trip_log2=14.0, intensity=0.8, reduction=False, conditional=False),
    "s151_short": dict(stride=1, dependency=0, trip_log2=8.0, intensity=1.0, reduction=False, conditional=False),
    "s211_dep": dict(stride=1, dependency=4, trip_log2=15.0, intensity=1.5, reduction=False, conditional=False),
    "s221_recur": dict(stride=1, dependency=1, trip_log2=14.0, intensity=2.0, reduction=False, conditional=False),
    "s231_nested": dict(stride=1, dependency=0, trip_log2=18.0, intensity=2.5, reduction=False, conditional=False),
    "s241_mixed": dict(stride=2, dependency=2, trip_log2=14.0, intensity=1.8, reduction=False, conditional=True),
    "s311_sum": dict(stride=1, dependency=0, trip_log2=16.0, intensity=0.5, reduction=True, conditional=False),
    "s312_prod": dict(stride=1, dependency=0, trip_log2=14.0, intensity=0.7, reduction=True, conditional=False),
    "s321_cond_sum": dict(stride=1, dependency=0, trip_log2=15.0, intensity=0.6, reduction=True, conditional=True),
    "s331_search": dict(stride=1, dependency=0, trip_log2=13.0, intensity=0.4, reduction=True, conditional=True),
    "s411_branchy": dict(stride=1, dependency=0, trip_log2=14.0, intensity=1.0, reduction=False, conditional=True),
    "s421_stencil": dict(stride=1, dependency=3, trip_log2=17.0, intensity=3.0, reduction=False, conditional=False),
}

FAMILY_NAMES = tuple(LOOP_FAMILIES)


@dataclass(frozen=True)
class LoopSpec:
    """Latent description of one vectorizable loop variant.

    Variant-level jitter perturbs the family's base parameters the way
    the paper's renamed/perturbed loop programs do.
    """

    name: str
    family: str
    stride: int
    dependency: int
    trip_log2: float
    intensity: float
    reduction: bool
    conditional: bool
    alignment: int  # bytes; affects vector load efficiency

    def feature_vector(self) -> np.ndarray:
        return np.array(
            [
                float(self.stride),
                float(self.dependency),
                self.trip_log2,
                self.intensity,
                1.0 if self.reduction else 0.0,
                1.0 if self.conditional else 0.0,
                float(self.alignment),
                self.intensity / (1.0 + self.stride),
            ]
        )


FEATURE_NAMES = (
    "stride",
    "dependency",
    "trip_log2",
    "intensity",
    "reduction",
    "conditional",
    "alignment",
    "density",
)


def generate_loop(family: str, index: int, rng: np.random.Generator) -> LoopSpec:
    """Draw one loop variant from a family with parameter jitter."""
    base = LOOP_FAMILIES.get(family)
    if base is None:
        raise ValueError(f"unknown family {family!r}; options: {FAMILY_NAMES}")
    stride = max(1, int(round(base["stride"] * rng.uniform(0.75, 1.5))))
    dependency = max(0, int(round(base["dependency"] + rng.integers(-1, 2))))
    return LoopSpec(
        name=f"{family}_v{index:04d}",
        family=family,
        stride=stride,
        dependency=dependency,
        trip_log2=float(np.clip(base["trip_log2"] + rng.normal(0.0, 1.0), 6.0, 20.0)),
        intensity=float(np.clip(base["intensity"] * rng.uniform(0.7, 1.4), 0.1, 8.0)),
        reduction=bool(base["reduction"]),
        conditional=bool(base["conditional"]),
        alignment=int(rng.choice([4, 8, 16, 32, 64])),
    )


def render_loop_source(spec: LoopSpec) -> str:
    """Render a loop spec to C-like source for the sequence models."""
    lines = [f"void {spec.name}(float* a, float* b, float* c, int n) {{"]
    if spec.reduction:
        lines.append("  float acc = 0.0f;")
    lines.append(f"  for (int i = 0; i < n; i += {spec.stride}) {{")
    indexed = f"a[i - {spec.dependency}]" if spec.dependency > 0 else "a[i]"
    expr = f"b[i] * c[i] + {indexed}"
    for _ in range(max(0, int(round(spec.intensity)) - 1)):
        expr = f"({expr}) * b[i]"
    if spec.conditional:
        lines.append(f"    if (b[i] > 0.0f) {{")
        target = "acc +=" if spec.reduction else "a[i] ="
        lines.append(f"      {target} {expr};")
        lines.append("    }")
    else:
        target = "acc +=" if spec.reduction else "a[i] ="
        lines.append(f"    {target} {expr};")
    lines.append("  }")
    if spec.reduction:
        lines.append("  a[0] = acc;")
    lines.append("}")
    return "\n".join(lines)


@dataclass
class LoopDataset:
    """A generated corpus of loop variants."""

    loops: list = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        n_loops: int = 600,
        families=FAMILY_NAMES,
        seed: int = 0,
    ) -> "LoopDataset":
        """Generate ``n_loops`` variants spread evenly over the families."""
        rng = np.random.default_rng(seed)
        loops = []
        families = tuple(families)
        for index in range(n_loops):
            family = families[index % len(families)]
            loops.append(generate_loop(family, index, rng))
        return cls(loops=loops)

    def __len__(self) -> int:
        return len(self.loops)

    def features(self) -> np.ndarray:
        return np.stack([loop.feature_vector() for loop in self.loops])

    def sources(self) -> list:
        return [render_loop_source(loop) for loop in self.loops]

    def families(self) -> np.ndarray:
        return np.asarray([loop.family for loop in self.loops])

    def split_by_family(self, held_out) -> tuple:
        """Return ``(train_indices, test_indices)`` holding families out."""
        held = {held_out} if isinstance(held_out, str) else set(held_out)
        families = self.families()
        test_mask = np.isin(families, sorted(held))
        return np.flatnonzero(~test_mask), np.flatnonzero(test_mask)
