"""Analytical GPU model for thread coarsening (case study C1).

Substitutes for the paper's four measured GPU platforms.  Given a
kernel spec and a coarsening factor, the model combines the classic
effects coarsening trades off:

* merging ``f`` work-items multiplies per-thread work by ``f`` but
  removes redundant computation when locality is high;
* instruction-level parallelism grows with ``f`` up to a per-GPU limit;
* register pressure grows with ``f`` and collapses occupancy past a
  per-GPU budget;
* total thread count shrinks by ``f`` and can underutilize the device.

The four platforms differ in these budgets the way the paper's AMD and
NVIDIA parts do, so the optimal factor genuinely varies per (kernel,
GPU) pair and an exhaustive sweep defines the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lang.kernels import KernelSpec
from ..util import stable_hash

#: coarsening factors explored by the paper (1 = no coarsening)
COARSENING_FACTORS = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class GPUPlatform:
    """Per-device budgets of the analytical model."""

    name: str
    compute_throughput: float  # ops per cycle (higher = faster ALUs)
    memory_bandwidth: float    # accesses per cycle
    ilp_limit: float           # max ILP gain from coarsening
    register_budget: float     # per-thread registers before occupancy loss
    min_threads_log2: float    # parallelism needed to saturate the device
    divergence_penalty: float  # cost multiplier for divergent kernels


GPU_PLATFORMS = {
    "amd-radeon-7970": GPUPlatform(
        name="amd-radeon-7970",
        compute_throughput=34.0,
        memory_bandwidth=9.0,
        ilp_limit=2.4,
        register_budget=10.0,
        min_threads_log2=14.0,
        divergence_penalty=1.6,
    ),
    "amd-radeon-5900": GPUPlatform(
        name="amd-radeon-5900",
        compute_throughput=22.0,
        memory_bandwidth=6.0,
        ilp_limit=3.0,
        register_budget=7.0,
        min_threads_log2=13.0,
        divergence_penalty=1.9,
    ),
    "nvidia-gtx-480": GPUPlatform(
        name="nvidia-gtx-480",
        compute_throughput=18.0,
        memory_bandwidth=8.0,
        ilp_limit=1.6,
        register_budget=5.0,
        min_threads_log2=13.5,
        divergence_penalty=1.3,
    ),
    "nvidia-tesla-k20": GPUPlatform(
        name="nvidia-tesla-k20",
        compute_throughput=28.0,
        memory_bandwidth=11.0,
        ilp_limit=2.0,
        register_budget=8.0,
        min_threads_log2=15.0,
        divergence_penalty=1.2,
    ),
}

GPU_NAMES = tuple(GPU_PLATFORMS)


def _jitter(spec_name: str, config: str, scale: float = 0.02) -> float:
    """Deterministic measurement noise per (kernel, configuration)."""
    seed = stable_hash(spec_name, config)
    return float(1.0 + scale * np.random.default_rng(seed).standard_normal())


def coarsened_runtime(spec: KernelSpec, factor: int, gpu: str) -> float:
    """Simulated runtime (arbitrary units, lower is better).

    Args:
        spec: the kernel's latent workload description.
        factor: thread-coarsening factor (power of two, 1..32).
        gpu: platform name from :data:`GPU_PLATFORMS`.
    """
    if factor not in COARSENING_FACTORS:
        raise ValueError(f"factor must be one of {COARSENING_FACTORS}, got {factor}")
    platform = GPU_PLATFORMS.get(gpu)
    if platform is None:
        raise ValueError(f"unknown GPU {gpu!r}; options: {GPU_NAMES}")

    f = float(factor)
    # Redundant-work elimination: high-locality kernels share loads and
    # subexpressions across merged threads.
    shared_fraction = spec.locality * (1.0 - 1.0 / f)
    compute_work = spec.compute_ops * f * (1.0 - 0.35 * shared_fraction)
    memory_work = spec.memory_ops * f * (1.0 - 0.55 * shared_fraction)

    # ILP gain: coarsening exposes independent instructions, saturating
    # at the platform's limit.
    ilp = min(platform.ilp_limit, 1.0 + 0.45 * np.log2(f))
    compute_cycles = compute_work / (platform.compute_throughput * ilp)
    coalescing = 0.4 + 0.6 * spec.locality
    memory_cycles = memory_work / (platform.memory_bandwidth * coalescing)

    per_thread = compute_cycles + memory_cycles
    # Divergence hurts more as threads merge: a coarsened thread carries
    # every divergent path of the work-items it absorbed.
    if spec.divergence > 0.2:
        divergence_cost = spec.divergence * (platform.divergence_penalty - 1.0)
        per_thread *= 1.0 + divergence_cost * (1.0 + 1.1 * np.log2(f))
    # Large working sets thrash caches when each thread touches more data.
    if spec.footprint_log2_kb > 11.0 and f > 1:
        per_thread *= 1.0 + 0.05 * (spec.footprint_log2_kb - 11.0) * np.log2(f)

    # Register pressure: each merged thread adds live values.
    pressure = f * (1.0 + spec.compute_ops / 40.0)
    if pressure > platform.register_budget:
        per_thread *= (pressure / platform.register_budget) ** 1.2

    # Device utilization: too few threads leave SMs idle.
    threads_log2 = spec.parallelism_log2 - np.log2(f)
    if threads_log2 < platform.min_threads_log2:
        per_thread *= 2.0 ** (platform.min_threads_log2 - threads_log2)

    waves = 2.0 ** max(0.0, threads_log2 - platform.min_threads_log2)
    runtime = per_thread * waves
    return runtime * _jitter(spec.name, f"{gpu}:cf{factor}")


def runtime_profile(spec: KernelSpec, gpu: str) -> np.ndarray:
    """Runtimes over every coarsening factor, aligned with the factors."""
    return np.asarray(
        [coarsened_runtime(spec, factor, gpu) for factor in COARSENING_FACTORS]
    )


def best_factor(spec: KernelSpec, gpu: str) -> int:
    """Oracle coarsening factor: the exhaustive-sweep argmin."""
    profile = runtime_profile(spec, gpu)
    return COARSENING_FACTORS[int(np.argmin(profile))]


def speedup_of_choice(spec: KernelSpec, gpu: str, factor: int) -> float:
    """Performance of a chosen factor relative to the oracle (<= 1.0)."""
    profile = runtime_profile(spec, gpu)
    chosen = profile[COARSENING_FACTORS.index(factor)]
    return float(profile.min() / chosen)
