"""CPU-vs-GPU runtime model for heterogeneous device mapping (C3).

Substitutes for the paper's profiled DeepTune dataset: given a kernel
spec, produce the runtime on a multicore CPU and on a GPU, from which
the binary "which device is faster" label follows.  The decision
boundary depends on parallelism, transfer volume, divergence and
locality — the same factors that drive the real datasets.
"""

from __future__ import annotations

import numpy as np

from ..lang.kernels import KernelSpec
from ..util import stable_hash

#: CPU model parameters
_CPU_CORES = 8.0
_CPU_THROUGHPUT = 8.0      # ops per cycle per core
_CPU_PARALLEL_EFFICIENCY = 0.65
_CPU_CACHE_LOG2_KB = 13.0  # 8 MB LLC

#: GPU model parameters
_GPU_THROUGHPUT = 1200.0   # ops per cycle across the device
_GPU_MEM_BANDWIDTH = 250.0
_GPU_LAUNCH_OVERHEAD = 4e4
_TRANSFER_CYCLES_PER_KB = 120.0
_GPU_MIN_PARALLEL_LOG2 = 15.0


def _jitter(name: str, device: str, scale: float = 0.03) -> float:
    seed = stable_hash(name, device)
    return float(1.0 + scale * np.random.default_rng(seed).standard_normal())


def cpu_runtime(spec: KernelSpec) -> float:
    """Simulated multicore CPU runtime (arbitrary units)."""
    items = 2.0**spec.parallelism_log2
    work = items * (spec.compute_ops + spec.memory_ops * 0.6)
    effective_cores = 1.0 + (_CPU_CORES - 1.0) * _CPU_PARALLEL_EFFICIENCY
    cycles = work / (_CPU_THROUGHPUT * effective_cores)
    # Falling out of the LLC hurts the CPU badly.
    if spec.footprint_log2_kb > _CPU_CACHE_LOG2_KB:
        cycles *= 1.0 + 0.35 * (spec.footprint_log2_kb - _CPU_CACHE_LOG2_KB)
    # Branchy code costs the CPU little; vectorization loss is mild.
    cycles *= 1.0 + 0.1 * spec.divergence
    return cycles * _jitter(spec.name, "cpu")


def gpu_runtime(spec: KernelSpec) -> float:
    """Simulated GPU runtime including transfer and launch overheads."""
    items = 2.0**spec.parallelism_log2
    compute_cycles = items * spec.compute_ops / _GPU_THROUGHPUT
    coalescing = 0.35 + 0.65 * spec.locality
    memory_cycles = items * spec.memory_ops / (_GPU_MEM_BANDWIDTH * coalescing)
    kernel_cycles = compute_cycles + memory_cycles
    # Divergence serializes warps.
    kernel_cycles *= 1.0 + 1.4 * spec.divergence
    # Underutilization for small launches.
    if spec.parallelism_log2 < _GPU_MIN_PARALLEL_LOG2:
        kernel_cycles *= 2.0 ** (_GPU_MIN_PARALLEL_LOG2 - spec.parallelism_log2)
    total = kernel_cycles + _GPU_LAUNCH_OVERHEAD + spec.transfer_kb * _TRANSFER_CYCLES_PER_KB
    return total * _jitter(spec.name, "gpu")


def best_device(spec: KernelSpec) -> str:
    """Oracle device label: ``"cpu"`` or ``"gpu"``."""
    return "gpu" if gpu_runtime(spec) < cpu_runtime(spec) else "cpu"


def device_runtimes(spec: KernelSpec) -> dict:
    """Both runtimes keyed by device name."""
    return {"cpu": cpu_runtime(spec), "gpu": gpu_runtime(spec)}


def speedup_of_choice(spec: KernelSpec, device: str) -> float:
    """Performance of a chosen device relative to the oracle (<= 1.0)."""
    runtimes = device_runtimes(spec)
    if device not in runtimes:
        raise ValueError(f"device must be 'cpu' or 'gpu', got {device!r}")
    best = min(runtimes.values())
    return best / runtimes[device]
