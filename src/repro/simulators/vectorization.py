"""SIMD cost model for loop vectorization (case study C2).

Substitutes for the paper's measured Ryzen 5900X dataset: given a loop
spec and a (vectorization factor, interleave factor) pair, produce a
runtime.  The model captures the first-order effects an auto-vectorizer
fights with:

* loop-carried dependencies cap the usable vector width;
* non-unit stride turns vector loads into gathers;
* misalignment costs extra shuffles at wide factors;
* interleaving hides memory latency up to the core's ILP budget, then
  spills registers;
* conditionals require masking; reductions need a horizontal epilogue.

An exhaustive sweep over the paper's 35 configurations defines the
oracle (VF, IF) per loop.
"""

from __future__ import annotations

import numpy as np

from ..lang.loops import CONFIGURATIONS, LoopSpec
from ..util import stable_hash

_ILP_BUDGET = 6.0           # interleave copies the core can keep in flight
_REGISTER_FILE = 32.0       # vector registers before spilling
_GATHER_PENALTY = 0.35      # efficiency of strided/gather loads
_MASK_OVERHEAD = 0.6       # per-element masking cost for conditionals
_MAX_HARDWARE_LANES = 16.0  # wider VFs are emulated with multiple ops


def _jitter(name: str, config: str, scale: float = 0.02) -> float:
    seed = stable_hash(name, config)
    return float(1.0 + scale * np.random.default_rng(seed).standard_normal())


def loop_runtime(spec: LoopSpec, vf: int, interleave: int) -> float:
    """Simulated runtime of one loop under a (VF, IF) configuration."""
    if (vf, interleave) not in CONFIGURATIONS:
        raise ValueError(f"({vf}, {interleave}) is not one of the 35 configurations")

    trips = 2.0**spec.trip_log2
    scalar_work = trips * spec.intensity

    # Dependencies cap the vector width: lanes beyond the dependency
    # distance must serialize.
    if spec.dependency > 0 and vf > spec.dependency:
        usable_lanes = max(1.0, float(spec.dependency))
        # Wide vectors on a dependence-limited loop waste issue slots on
        # shuffles and partial stores.
        dependence_overhead = 1.0 + 0.2 * np.log2(float(vf) / spec.dependency)
    else:
        usable_lanes = float(vf)
        dependence_overhead = 1.0
    # VFs beyond the hardware width are split into multiple operations.
    effective_lanes = min(usable_lanes, _MAX_HARDWARE_LANES)
    if vf > _MAX_HARDWARE_LANES:
        effective_lanes *= 0.8  # double-pumped ops lose a little

    lane_speedup = max(1.0, effective_lanes)
    # Strided access degrades vector loads into gathers.
    if spec.stride > 1 and vf > 1:
        lane_speedup = 1.0 + (lane_speedup - 1.0) * _GATHER_PENALTY / np.log2(
            1.0 + spec.stride
        )
    # Misalignment costs shuffles at wide factors.
    if spec.alignment < 4 * vf and vf > 1:
        lane_speedup *= 0.7

    runtime = scalar_work / lane_speedup * dependence_overhead

    # Masking overhead for conditional bodies.
    if spec.conditional and vf > 1:
        runtime *= 1.0 + _MASK_OVERHEAD

    # Reduction epilogue: horizontal adds grow with vf * interleave.
    if spec.reduction and vf * interleave > 1:
        runtime *= 1.0 + 0.04 * np.log2(float(vf * interleave))

    # Interleaving hides latency up to the ILP budget...
    ilp_gain = min(float(interleave), _ILP_BUDGET)
    memory_bound = 1.0 / (1.0 + spec.intensity)  # low intensity = memory bound
    runtime /= 1.0 + (ilp_gain - 1.0) * 0.35 * memory_bound
    # ...then spills registers.
    pressure = float(vf) / 8.0 * interleave
    if pressure > _REGISTER_FILE / 4.0:
        runtime *= 1.0 + 0.3 * (pressure * 4.0 / _REGISTER_FILE - 1.0)

    # Vectorization overhead dominates short loops.
    if spec.trip_log2 < 9 and vf * interleave > 4:
        runtime *= 1.0 + 0.1 * np.log2(float(vf * interleave))

    return runtime * _jitter(spec.name, f"vf{vf}-if{interleave}")


def runtime_profile(spec: LoopSpec) -> np.ndarray:
    """Runtimes over all 35 configurations, aligned with CONFIGURATIONS."""
    return np.asarray([loop_runtime(spec, vf, il) for vf, il in CONFIGURATIONS])


def best_configuration(spec: LoopSpec) -> tuple:
    """Oracle (VF, IF): the exhaustive-sweep argmin."""
    profile = runtime_profile(spec)
    return CONFIGURATIONS[int(np.argmin(profile))]


def speedup_of_choice(spec: LoopSpec, vf: int, interleave: int) -> float:
    """Performance of a chosen configuration relative to the oracle."""
    profile = runtime_profile(spec)
    chosen = profile[CONFIGURATIONS.index((vf, interleave))]
    return float(profile.min() / chosen)
