"""Performance simulators providing ground-truth labels.

Each simulator replaces a hardware measurement campaign from the paper
(GPU thread-coarsening sweeps, CPU/GPU profiling, SIMD loop timing,
TVM schedule profiling) with a deterministic analytical model over the
corresponding generator's latent workload parameters.
"""

from . import gpu, mapping, tensor, vectorization
from .gpu import (
    COARSENING_FACTORS,
    GPU_NAMES,
    GPU_PLATFORMS,
    GPUPlatform,
    best_factor,
    coarsened_runtime,
)
from .mapping import best_device, cpu_runtime, device_runtimes, gpu_runtime
from .tensor import best_throughput, schedule_throughput, throughputs
from .vectorization import best_configuration, loop_runtime

__all__ = [
    "COARSENING_FACTORS",
    "GPU_NAMES",
    "GPU_PLATFORMS",
    "GPUPlatform",
    "best_configuration",
    "best_device",
    "best_factor",
    "best_throughput",
    "coarsened_runtime",
    "cpu_runtime",
    "device_runtimes",
    "gpu",
    "gpu_runtime",
    "loop_runtime",
    "mapping",
    "schedule_throughput",
    "tensor",
    "throughputs",
    "vectorization",
]
