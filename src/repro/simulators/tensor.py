"""Analytical schedule cost model for DNN code generation (C5).

Substitutes for profiling TVM-generated code on a 12-core CPU server:
given a :class:`~repro.lang.tensor_programs.ScheduleSpec`, produce the
throughput (GFLOP/s-like, higher is better) the schedule would achieve.
The model scores the classic scheduling effects — cache-fitting tiles,
vector-unit utilization, parallel load balance, unrolling — and the
optimum shifts with the matmul shape, so a cost model trained on
BERT-base schedules drifts on the other variants exactly as in the
paper's Table 3.
"""

from __future__ import annotations

import numpy as np

from ..lang.tensor_programs import ScheduleSpec
from ..util import stable_hash

_PEAK_THROUGHPUT = 100.0   # arbitrary units at perfect efficiency
_L1_FLOATS = 4096.0        # 16 KB of floats
_L2_FLOATS = 65536.0       # 256 KB of floats
_N_CORES = 12.0
_VECTOR_WIDTH = 8.0


def _jitter(spec: ScheduleSpec, scale: float = 0.03) -> float:
    key = (
        spec.network, spec.m, spec.n, spec.k,
        spec.tile_m, spec.tile_n, spec.tile_k,
        spec.unroll, spec.vectorize, spec.parallel,
    )
    seed = stable_hash(*key)
    return float(1.0 + scale * np.random.default_rng(seed).standard_normal())


def schedule_throughput(spec: ScheduleSpec) -> float:
    """Simulated throughput of one schedule (higher is better)."""
    efficiency = 1.0

    # Cache behaviour: the working set of one tile iteration.
    tile_floats = (
        spec.tile_m * spec.tile_k
        + spec.tile_k * spec.tile_n
        + spec.tile_m * spec.tile_n
    )
    if tile_floats <= _L1_FLOATS:
        cache_efficiency = 1.0
    elif tile_floats <= _L2_FLOATS:
        cache_efficiency = 0.7
    else:
        cache_efficiency = 0.35
    # Tiny tiles thrash on loop overhead instead.
    if tile_floats < 256:
        cache_efficiency *= 0.6
    efficiency *= cache_efficiency

    # Vector unit utilization.
    if spec.vectorize >= _VECTOR_WIDTH:
        vec_efficiency = 1.0
    else:
        vec_efficiency = 0.45 + 0.55 * spec.vectorize / _VECTOR_WIDTH
    if spec.n % spec.vectorize != 0:
        vec_efficiency *= 0.75  # remainder loop
    efficiency *= vec_efficiency

    # Parallel speedup with load-balance limits.
    chunks = max(1.0, spec.m / spec.tile_m)
    usable_cores = min(float(spec.parallel), _N_CORES, chunks)
    parallel_speedup = usable_cores * (0.92 ** max(0.0, usable_cores - 1.0) * 1.0 + 0.0)
    parallel_speedup = usable_cores * (1.0 - 0.03 * (usable_cores - 1.0))
    efficiency *= parallel_speedup / _N_CORES

    # Unrolling: mild gain, then instruction-cache pressure.
    if spec.unroll == 0:
        unroll_gain = 0.9
    elif spec.unroll <= 64:
        unroll_gain = 1.0
    else:
        unroll_gain = 0.95
    efficiency *= unroll_gain

    # Divisibility: ragged tiles waste lanes.
    if spec.m % spec.tile_m != 0:
        efficiency *= 0.85
    if spec.k % spec.tile_k != 0:
        efficiency *= 0.9

    # Small-operator regime: for narrow matmuls (BERT-tiny/medium) the
    # big-shape recipe backfires — wide vectors hit remainder loops,
    # aggressive parallelism and unrolling drown in overhead, and large
    # tiles exceed the useful reuse window.  This is what makes a cost
    # model trained on BERT-base drift on the smaller variants.
    scale_limit = float(min(spec.n, spec.k))
    if scale_limit < 768.0:
        sensitivity = (768.0 - scale_limit) / 768.0
        if spec.vectorize > 8:
            efficiency *= 1.0 - 0.5 * sensitivity
        if spec.parallel > 4:
            efficiency *= 1.0 - 0.35 * sensitivity
        if spec.unroll > 64:
            efficiency *= 1.0 - 0.3 * sensitivity
        if tile_floats > _L1_FLOATS:
            efficiency *= 1.0 - 0.45 * sensitivity

    return _PEAK_THROUGHPUT * efficiency * _jitter(spec)


def best_throughput(schedules) -> float:
    """Oracle throughput over a candidate set (exhaustive evaluation)."""
    if not schedules:
        raise ValueError("need at least one schedule")
    return max(schedule_throughput(s) for s in schedules)


def throughputs(schedules) -> np.ndarray:
    """Vector of simulated throughputs for a schedule list."""
    return np.asarray([schedule_throughput(s) for s in schedules])
