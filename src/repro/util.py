"""Small shared utilities."""

from __future__ import annotations

import zlib


def stable_hash(*parts) -> int:
    """Deterministic 32-bit hash of the string forms of ``parts``.

    Python's built-in ``hash()`` is salted per process (PYTHONHASHSEED),
    which would make generated datasets and simulated measurements
    differ between runs.  Everything in this package that needs a
    value derived from names/keys routes through this function instead.
    """
    text = "\x1f".join(repr(part) for part in parts)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
