"""Durable incremental checkpoints and warm restart (DESIGN.md §7).

The serving plane (DESIGN.md §5-§6) is entirely in-memory: a crash
loses the calibration store and detector state, and a restart pays a
full recalibration before the first decision.  This module persists the
streaming runtime to disk and restores it **bit-identically with zero
recalibration**, exploiting the same property that makes snapshot
publishes cheap: the segment compose layer already holds the detector's
state as immutable per-shard blocks, so a checkpoint only has to write
the blocks that changed since the previous generation.

Checkpoint format (one directory per runtime):

* **block files** (``shard-<s>-e<epoch>-<crc>.npz``) — one per shard,
  containing the shard's store columns, arrival/priority arrays, the
  per-expert calibration-score blocks and (regressor) cluster
  pseudo-labels.  Blocks are content-addressed (the CRC-32 of the
  serialized bytes is part of the name) and epoch-tagged, and they are
  write-once: a block whose shard did not mutate since the last
  generation is *skipped* — not reserialized, not rewritten — which is
  what makes a single-touched-shard checkpoint ``O(shard)`` instead of
  ``O(store)``.
* an optional **global block** (``global-<crc>.npz``) — small fitted
  state outside the store: cluster-router K-means centers and the
  regressor's calibration clusterer (labels, centers, and the feature
  matrix its nearest-neighbour ``assign`` searches).
* a **generation manifest** (``manifest-<generation>.json``) — every
  scalar (epochs, per-shard stream counters and RNG states, the
  resolved tau, the label-space size) plus the block file names and
  CRCs, self-checksummed with ``payload_crc``.  Manifests commit
  atomically (write temp → fsync → rename), so a generation either
  exists completely or not at all.

Restore walks the manifests newest-first and installs the first
generation whose manifest parses, whose payload checksum matches and
whose every block file exists with the recorded CRC — a torn manifest,
a truncated block or a crash between block writes and the manifest
commit therefore *falls back to the previous generation* instead of
failing the restart (the skipped generations are reported on the
:class:`RestoreReport`).  Only the last ``keep`` generations are
retained; older manifests and unreferenced blocks are garbage-collected
after each successful commit.

What is NOT checkpointed: the model itself and the interface's
training-set accumulator.  The caller constructs an interface with a
trained model (its own persistence problem) and a matching runtime
configuration, then :func:`restore_checkpoint` installs the
calibration/detector state into it.  Restored decisions are
bit-identical to the pre-crash detector because every input of the
decision function is persisted exactly: flat state is rebuilt by
concatenating the restored blocks in store order, per-label groupings
are pure functions of ``(scores, labels, n_labels)``, and the resolved
tau and RNG states are carried as scalars.
"""

from __future__ import annotations

import io
import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .clustering import CalibrationClusterer
from .exceptions import CheckpointError, ConfigurationError, ValidationError
from .pvalue import group_scores_by_label
from .sharding import ShardedCalibrationStore
from .streaming import StreamingPromClassifier, _ShardState
from ..ml.cluster import KMeans

#: manifest schema version; bump on incompatible layout changes
MANIFEST_FORMAT = 1

_MANIFEST_PREFIX = "manifest-"


class _CorruptGeneration(Exception):
    """Internal: this generation is unreadable; restore falls back."""


@dataclass(frozen=True)
class CheckpointInfo:
    """Outcome of one :meth:`CheckpointWriter.checkpoint` call.

    ``blocks_written``/``blocks_reused`` count per-shard (plus global)
    data blocks: a steady-state incremental checkpoint of a
    single-touched-shard publish writes 1 and reuses ``n_shards - 1``.
    """

    generation: int
    manifest: str
    blocks_written: int
    blocks_reused: int
    bytes_written: int
    seconds: float


@dataclass(frozen=True)
class RestoreReport:
    """Outcome of one :func:`restore_checkpoint` call.

    ``fallbacks`` lists the newer generations that were skipped as
    corrupt (empty for a clean restore of the latest generation) —
    the observable half of the graceful-degradation contract.

    ``trigger_restored`` reports whether the drift-trigger state was
    recovered from the manifest (DESIGN.md §11).  ``False`` when no
    trigger target was passed, when the manifest predates the trigger
    layer, or when the recorded state no longer matches the configured
    stack — in the latter two cases the stack is deterministically
    re-warmed instead (``reset(lifetime=True)``), never left holding
    stale pre-restore observations.
    """

    generation: int
    epoch: int
    seconds: float
    fallbacks: tuple = ()
    trigger_restored: bool = False


def _canonical_payload(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _serialize_arrays(arrays: dict) -> bytes:
    for name, array in arrays.items():
        if array.dtype == object:
            raise CheckpointError(
                f"cannot checkpoint object-dtype column {name!r}; store "
                f"only numeric/string columns or drop it from extra="
            )
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def _load_block(path: Path, crc: int) -> dict:
    if not path.exists():
        raise _CorruptGeneration(f"missing block file {path.name}")
    data = path.read_bytes()
    if zlib.crc32(data) != crc:
        raise _CorruptGeneration(f"CRC mismatch in block file {path.name}")
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            return {name: np.array(npz[name]) for name in npz.files}
    except (OSError, ValueError, KeyError) as err:
        raise _CorruptGeneration(
            f"unreadable block file {path.name}: {err}"
        ) from err


def _manifest_generation(path: Path) -> int | None:
    stem = path.name
    if not stem.startswith(_MANIFEST_PREFIX) or not stem.endswith(".json"):
        return None
    digits = stem[len(_MANIFEST_PREFIX) : -len(".json")]
    return int(digits) if digits.isdigit() else None


def list_generations(directory) -> tuple:
    """Committed generation numbers in ``directory``, ascending.

    Lists every manifest file present; corrupt manifests are still
    listed (they are only detected when read).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return ()
    generations = sorted(
        g
        for path in directory.iterdir()
        if (g := _manifest_generation(path)) is not None
    )
    return tuple(generations)


def _read_manifest(path: Path) -> dict:
    try:
        payload = json.loads(path.read_bytes())
    except (OSError, ValueError) as err:
        raise _CorruptGeneration(f"unreadable manifest {path.name}: {err}") from err
    if not isinstance(payload, dict) or "payload_crc" not in payload:
        raise _CorruptGeneration(f"manifest {path.name} lacks payload_crc")
    recorded = payload.pop("payload_crc")
    if zlib.crc32(_canonical_payload(payload)) != recorded:
        raise _CorruptGeneration(f"payload CRC mismatch in manifest {path.name}")
    if payload.get("format") != MANIFEST_FORMAT:
        raise _CorruptGeneration(
            f"manifest {path.name} has format {payload.get('format')!r}, "
            f"this reader speaks {MANIFEST_FORMAT}"
        )
    return payload


def _is_classifier(streaming) -> bool:
    return isinstance(streaming, StreamingPromClassifier)


def _capture(streaming) -> tuple:
    """Snapshot the runtime into ``(payload, shard_entries, global_arrays)``.

    ``shard_entries`` is one ``(manifest_entry, arrays)`` pair per shard
    (a single-store runtime is treated as one shard); ``arrays`` are the
    immutable blocks to persist.  Must run with the runtime quiescent
    (the serving loop calls this under its maintenance mutex).
    """
    prom = streaming.prom
    store = streaming.store
    classifier = _is_classifier(streaming)
    if not streaming.is_calibrated:
        raise CheckpointError("cannot checkpoint an uncalibrated runtime")
    columns = list(store.column_names)
    experts = streaming._compose_experts()
    n_labels = int(streaming._compose_n_labels())
    weighting = prom.weighting
    payload = {
        "format": MANIFEST_FORMAT,
        "kind": "classifier" if classifier else "regressor",
        "epoch": int(streaming.epoch),
        "n_shards": int(streaming.n_shards),
        "n_experts": len(experts),
        "n_labels": n_labels,
        "columns": columns,
        "tau": {
            "fixed": weighting.tau,
            "resolved": weighting._resolved_tau,
        },
    }
    shard_entries = []
    if streaming.is_sharded:
        payload["store_epoch"] = int(store.epoch)
        payload["capacities"] = [int(c) for c in store.shard_capacities]
        payload["policies"] = [policy.name for policy in store.policies]
        payload["router"] = store.router.name
        states = streaming._shard_states
        for s, shard in enumerate(store.shards):
            arrays = {
                f"col:{name}": store.column_segment(s, name) for name in columns
            }
            arrays["arrival"] = np.array(shard.arrival)
            arrays["priority"] = np.array(shard.priority)
            for e in range(len(experts)):
                arrays[f"score:{e}"] = np.asarray(states[s].scores[e])
            if not classifier:
                arrays["clusters"] = np.asarray(states[s].clusters)
            entry = {
                "epoch": int(store.shard_epochs[s]),
                "n_seen": int(shard.n_seen),
                "rng": shard._rng.bit_generator.state,
            }
            shard_entries.append((entry, arrays))
    else:
        payload["store_epoch"] = int(streaming.epoch)
        payload["capacities"] = [int(store.capacity)]
        payload["policies"] = [store.policy.name]
        payload["router"] = None
        arrays = {f"col:{name}": np.array(store.column(name)) for name in columns}
        arrays["arrival"] = np.array(store.arrival)
        arrays["priority"] = np.array(store.priority)
        for e in range(len(experts)):
            arrays[f"score:{e}"] = np.array(prom._scores[e])
        if not classifier:
            arrays["clusters"] = np.array(prom._clusters)
        entry = {
            "epoch": int(streaming.epoch),
            "n_seen": int(store.n_seen),
            "rng": store._rng.bit_generator.state,
        }
        shard_entries.append((entry, arrays))

    global_arrays = {}
    router = getattr(store, "router", None)
    if router is not None and router.name == "cluster" and router.is_fitted:
        global_arrays["router_centers"] = np.asarray(
            router._kmeans.cluster_centers_
        )
    if not classifier:
        clusterer = prom.clusterer_
        global_arrays["clusterer_labels"] = np.asarray(clusterer.labels_)
        global_arrays["clusterer_centers"] = np.asarray(clusterer.centers_)
        global_arrays["clusterer_features"] = np.asarray(clusterer._features)
        payload["clusterer_k"] = int(clusterer.k_)
    return payload, shard_entries, global_arrays


def _shard_fingerprint(streaming, shard_id: int, columns) -> tuple | None:
    """The tuple of one shard's immutable block objects.

    Under the compose layer's copy-on-write discipline, a shard whose
    every block is the *same object* as at the previous checkpoint has
    bit-identical content — the same invariant structural-sharing
    snapshot publishes rely on.  The writer holds the previous
    fingerprint's objects (not bare ``id()`` integers, which a later
    allocation could legally reuse) and compares by identity.  Returns
    ``None`` in single-store mode (no stable block objects).
    """
    if not streaming.is_sharded or streaming._shard_states is None:
        return None
    store = streaming.store
    state = streaming._shard_states[shard_id]
    blocks = [store.column_segment(shard_id, name) for name in columns]
    blocks.extend(state.scores)
    if state.clusters is not None:
        blocks.append(state.clusters)
    return tuple(blocks)


def same_fingerprint(current: tuple | None, remembered: tuple | None) -> bool:
    """Identity-compare two block fingerprints (see ``_shard_fingerprint``).

    Shared by the checkpoint writer (skip rewriting an untouched
    shard's files) and the shared-memory arena
    (:mod:`repro.core.shm` — skip re-exporting an untouched block):
    both planes rely on the same copy-on-write invariant, *same object
    implies same bytes*, and both must hold the remembered objects
    alive so ``id()`` reuse cannot alias a dead block.
    """
    return (
        current is not None
        and remembered is not None
        and len(current) == len(remembered)
        and all(a is b for a, b in zip(current, remembered))
    )


#: pre-PR 9 private spelling, kept for in-tree history/tests
_same_fingerprint = same_fingerprint


class CheckpointWriter:
    """Incremental, crash-consistent checkpoints of a streaming runtime.

    Args:
        directory: checkpoint directory (created if missing).  One
            directory serves one runtime; sharing it across runtimes
            interleaves their generations.
        keep: how many committed generations to retain (older manifests
            and unreferenced block files are garbage-collected after
            each successful commit).
        faults: optional :class:`~repro.core.faults.FaultInjector`;
            the writer reports the stages ``serialize``,
            ``write_block``, ``write_manifest`` and ``gc`` to it, so
            tests can crash or corrupt any step.
        triggers: optional drift-trigger stack (any object with a
            JSON-serializable ``state_dict()``, e.g. a
            :class:`~repro.core.triggers.TriggerStack`); its state is
            embedded in every manifest so warm restarts resume the
            detection windows instead of re-warming (DESIGN.md §11).

    :meth:`checkpoint` must see a quiescent runtime — the async serving
    loop runs it as a maintenance job under the maintenance mutex; a
    synchronous driver simply calls it between steps.  Trigger state is
    snapshotted through the stack's own lock, so serving threads may
    keep observing while a checkpoint job captures it.
    """

    def __init__(self, directory, keep: int = 3, faults=None, triggers=None):
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)
        self.triggers = triggers
        self._faults = faults
        self._block_memory: dict = {}
        generations = list_generations(self.directory)
        self._next_generation = (generations[-1] + 1) if generations else 1

    @property
    def latest_generation(self) -> int | None:
        """The newest committed generation number, or ``None``."""
        generations = list_generations(self.directory)
        return generations[-1] if generations else None

    def _hit(self, stage: str) -> None:
        if self._faults is not None:
            self._faults.hit(stage)

    def _write_atomic(self, name: str, data: bytes, stage: str) -> int:
        """Write-temp → fsync → rename; returns the bytes written.

        An armed truncation rule corrupts the committed bytes (and may
        raise after the rename) — the torn-write shape restore must
        survive by falling back a generation.
        """
        crash = None
        if self._faults is not None:
            data, crash = self._faults.mangle(stage, data)
        path = self.directory / name
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        if crash is not None:
            raise crash(f"injected crash after committing {name}")
        return len(data)

    def checkpoint(self, streaming) -> CheckpointInfo:
        """Persist the runtime as a new generation; returns the outcome.

        Incremental: a shard whose immutable blocks are unchanged since
        this writer's previous generation is skipped outright (its
        manifest entry is carried over), and blocks are additionally
        content-addressed so identical content is never written twice
        even across process restarts.
        """
        started = time.perf_counter()
        payload, shard_entries, global_arrays = _capture(streaming)
        columns = payload["columns"]
        blocks_written = 0
        blocks_reused = 0
        bytes_written = 0
        next_memory = {}
        shards = []
        for s, (entry, arrays) in enumerate(shard_entries):
            fingerprint = _shard_fingerprint(streaming, s, columns)
            remembered = self._block_memory.get(s)
            if (
                remembered is not None
                and _same_fingerprint(fingerprint, remembered[0])
                and (self.directory / remembered[1]["file"]).exists()
            ):
                entry.update(remembered[1])
                blocks_reused += 1
            else:
                self._hit("serialize")
                data = _serialize_arrays(arrays)
                crc = zlib.crc32(data)
                name = f"shard-{s:03d}-e{entry['epoch']:010d}-{crc:08x}.npz"
                if (self.directory / name).exists():
                    blocks_reused += 1
                else:
                    bytes_written += self._write_atomic(name, data, "write_block")
                    blocks_written += 1
                entry.update({"file": name, "crc": crc})
            next_memory[s] = (
                fingerprint,
                {"file": entry["file"], "crc": entry["crc"]},
            )
            shards.append(entry)
        payload["shards"] = shards
        if global_arrays:
            self._hit("serialize")
            data = _serialize_arrays(global_arrays)
            crc = zlib.crc32(data)
            name = f"global-{crc:08x}.npz"
            if (self.directory / name).exists():
                blocks_reused += 1
            else:
                bytes_written += self._write_atomic(name, data, "write_block")
                blocks_written += 1
            payload["global"] = {"file": name, "crc": crc}
        else:
            payload["global"] = None
        payload["triggers"] = (
            self.triggers.state_dict() if self.triggers is not None else None
        )
        generation = self._next_generation
        payload["generation"] = generation
        payload["payload_crc"] = zlib.crc32(_canonical_payload(payload))
        manifest_name = f"{_MANIFEST_PREFIX}{generation:010d}.json"
        bytes_written += self._write_atomic(
            manifest_name, json.dumps(payload, sort_keys=True).encode(),
            "write_manifest",
        )
        # The generation is committed; bookkeeping below may still crash
        # (an injected gc fault) without invalidating it.
        self._next_generation = generation + 1
        self._block_memory = next_memory
        self._collect_garbage()
        return CheckpointInfo(
            generation=generation,
            manifest=str(self.directory / manifest_name),
            blocks_written=blocks_written,
            blocks_reused=blocks_reused,
            bytes_written=bytes_written,
            seconds=time.perf_counter() - started,
        )

    def _collect_garbage(self) -> None:
        """Drop manifests beyond ``keep`` and blocks nothing references."""
        self._hit("gc")
        manifests = sorted(
            (
                (g, path)
                for path in self.directory.iterdir()
                if (g := _manifest_generation(path)) is not None
            ),
        )
        keep, drop = manifests[-self.keep :], manifests[: -self.keep]
        referenced = set()
        all_readable = bool(keep)
        for _, path in keep:
            try:
                payload = _read_manifest(path)
            except _CorruptGeneration:
                # An unreadable survivor might name blocks we cannot
                # enumerate — leave every block alone this round.
                all_readable = False
                continue
            for entry in payload.get("shards", ()):
                referenced.add(entry.get("file"))
            if payload.get("global"):
                referenced.add(payload["global"].get("file"))
        for _, path in drop:
            path.unlink(missing_ok=True)
        for path in self.directory.iterdir():
            name = path.name
            if name.endswith(".tmp"):
                path.unlink(missing_ok=True)
            elif (
                name.endswith(".npz") and all_readable and name not in referenced
            ):
                path.unlink(missing_ok=True)


def _validate(streaming, payload: dict) -> None:
    """Reject restoring into a runtime with a different configuration.

    Raises :class:`CheckpointError` (not a fallback): a configuration
    mismatch affects every generation in the directory equally.
    """
    kind = "classifier" if _is_classifier(streaming) else "regressor"
    store = streaming.store
    problems = []
    if payload["kind"] != kind:
        problems.append(f"checkpoint is a {payload['kind']}, runtime is a {kind}")
    if payload["n_shards"] != streaming.n_shards:
        problems.append(
            f"checkpoint has {payload['n_shards']} shards, "
            f"runtime has {streaming.n_shards}"
        )
    experts = streaming._compose_experts()
    if payload["n_experts"] != len(experts):
        problems.append(
            f"checkpoint carries {payload['n_experts']} expert score sets, "
            f"runtime has {len(experts)}"
        )
    if streaming.is_sharded:
        capacities = [int(c) for c in store.shard_capacities]
        policies = [policy.name for policy in store.policies]
        router = store.router.name
    else:
        capacities = [int(store.capacity)]
        policies = [store.policy.name]
        router = None
    if payload["capacities"] != capacities:
        problems.append(
            f"capacities differ: checkpoint {payload['capacities']}, "
            f"runtime {capacities}"
        )
    if payload["policies"] != policies:
        problems.append(
            f"eviction policies differ: checkpoint {payload['policies']}, "
            f"runtime {policies}"
        )
    if payload["router"] != router:
        problems.append(
            f"router differs: checkpoint {payload['router']!r}, "
            f"runtime {router!r}"
        )
    fixed = streaming.prom.weighting.tau
    if payload["tau"]["fixed"] != fixed:
        problems.append(
            f"fixed tau differs: checkpoint {payload['tau']['fixed']}, "
            f"runtime {fixed}"
        )
    if problems:
        raise CheckpointError(
            "checkpoint does not match the target runtime: "
            + "; ".join(problems)
        )


def _restore_rng(store_or_shard, state: dict) -> None:
    rng = np.random.default_rng(store_or_shard.seed)
    rng.bit_generator.state = state
    store_or_shard._rng = rng


def _restore_clusterer(prom, payload: dict, global_arrays: dict) -> None:
    clusterer = CalibrationClusterer(n_clusters=prom.n_clusters, seed=prom.seed)
    clusterer.k_ = int(payload["clusterer_k"])
    clusterer.labels_ = global_arrays["clusterer_labels"]
    clusterer.centers_ = global_arrays["clusterer_centers"]
    clusterer._features = global_arrays["clusterer_features"]
    prom.clusterer_ = clusterer


def _restore_router(store, global_arrays: dict) -> None:
    if store.router.name != "cluster":
        return
    centers = global_arrays.get("router_centers")
    if centers is None:
        return
    kmeans = KMeans(
        n_clusters=len(centers),
        max_iter=store.router.max_iter,
        seed=store.router.seed,
    )
    kmeans.cluster_centers_ = centers
    store.router._kmeans = kmeans


def _install(streaming, payload: dict, shard_blobs, global_arrays) -> None:
    """Install a validated, fully-read generation onto the runtime."""
    prom = streaming.prom
    store = streaming.store
    classifier = payload["kind"] == "classifier"
    columns = payload["columns"]
    n_experts = payload["n_experts"]
    n_labels = payload["n_labels"]
    if classifier:
        prom._n_classes = n_labels
    else:
        _restore_clusterer(prom, payload, global_arrays)
    prom.weighting._resolved_tau = payload["tau"]["resolved"]

    if isinstance(store, ShardedCalibrationStore):
        _restore_router(store, global_arrays)
        store._invalidate_columns()
        states = []
        for s, (entry, arrays) in enumerate(zip(payload["shards"], shard_blobs)):
            shard = store.shards[s]
            shard_columns = {name: arrays[f"col:{name}"] for name in columns}
            shard._set_from_arrays(
                shard_columns, arrays["arrival"], arrays["priority"]
            )
            shard._seen = int(entry["n_seen"])
            _restore_rng(shard, entry["rng"])
            store._shard_epochs[s] = int(entry["epoch"])
            scores = [arrays[f"score:{e}"] for e in range(n_experts)]
            group_key = (
                shard_columns["label"] if classifier else arrays["clusters"]
            )
            states.append(
                _ShardState(
                    scores=scores,
                    layouts=[
                        group_scores_by_label(block, group_key, n_labels)
                        for block in scores
                    ],
                    clusters=None if classifier else arrays["clusters"],
                )
            )
        store._epoch = int(payload["store_epoch"])
        streaming._shard_states = states
        streaming._bundle = None
        streaming._build_bundle(fresh=False)
        streaming._materialize_composed()
    else:
        entry, arrays = payload["shards"][0], shard_blobs[0]
        store._set_from_arrays(
            {name: arrays[f"col:{name}"] for name in columns},
            arrays["arrival"],
            arrays["priority"],
        )
        store._seen = int(entry["n_seen"])
        _restore_rng(store, entry["rng"])
        scores = [arrays[f"score:{e}"] for e in range(n_experts)]
        prom._features = store.column("features")
        if classifier:
            prom._labels = store.column("label")
            group_key = prom._labels
        else:
            prom._targets = store.column("target")
            prom._clusters = arrays["clusters"]
            group_key = prom._clusters
        prom._scores = scores
        prom._layouts = [
            group_scores_by_label(block, group_key, n_labels)
            for block in scores
        ]
        streaming._shard_states = None
        streaming._bundle = None
        streaming._bundle_fresh = True
    streaming._epoch = int(payload["epoch"])


def restore_checkpoint(streaming, directory, triggers=None) -> RestoreReport:
    """Rebuild a streaming runtime from the newest valid generation.

    Walks ``directory``'s manifests newest-first and installs the first
    generation that reads back clean (manifest parses, payload CRC
    matches, every block present with its recorded CRC); corrupt newer
    generations are skipped and reported via
    :attr:`RestoreReport.fallbacks`.  The runtime's configuration
    (shard count, capacities, policies, router, expert count, fixed
    tau) must match the checkpoint's; the restored detector state —
    store contents, RNG states, scores, groupings, resolved tau — is
    bit-identical to the checkpointed runtime, with zero recalibration
    work.

    Args:
        streaming: a :class:`~repro.core.streaming.StreamingPromClassifier`
            or :class:`~repro.core.streaming.StreamingPromRegressor`
            constructed with the same configuration as the runtime that
            wrote the checkpoints (it may be freshly constructed and
            never calibrated).
        directory: the checkpoint directory a
            :class:`CheckpointWriter` committed generations into.
        triggers: optional drift-trigger stack to restore alongside the
            calibration state (the counterpart of the writer's
            ``triggers``).  When the installed manifest carries a
            compatible trigger snapshot it is loaded
            (``RestoreReport.trigger_restored``); a pre-trigger-era or
            incompatible snapshot deterministically re-warms the stack
            (``reset(lifetime=True)``) instead — either way the stack
            never resumes with stale pre-restore observations.

    Raises:
        CheckpointError: no generation could be restored, or the
            runtime configuration does not match the checkpoint.
    """
    started = time.perf_counter()
    directory = Path(directory)
    generations = list_generations(directory)
    if not generations:
        raise CheckpointError(f"no checkpoint generations in {directory}")
    fallbacks = []
    for generation in reversed(generations):
        path = directory / f"{_MANIFEST_PREFIX}{generation:010d}.json"
        try:
            payload = _read_manifest(path)
            shard_blobs = [
                _load_block(directory / entry["file"], entry["crc"])
                for entry in payload["shards"]
            ]
            global_arrays = (
                _load_block(
                    directory / payload["global"]["file"],
                    payload["global"]["crc"],
                )
                if payload.get("global")
                else {}
            )
        except _CorruptGeneration as err:
            fallbacks.append(f"generation {generation}: {err}")
            continue
        _validate(streaming, payload)
        _install(streaming, payload, shard_blobs, global_arrays)
        trigger_restored = False
        if triggers is not None:
            trigger_state = payload.get("triggers")
            if trigger_state is not None:
                try:
                    triggers.load_state_dict(trigger_state)
                    trigger_restored = True
                except ValidationError as err:
                    # recorded under a different trigger configuration:
                    # re-warm deterministically rather than fail the
                    # whole (otherwise valid) calibration restore
                    fallbacks.append(f"trigger state: {err}")
                    triggers.reset(lifetime=True)
            else:
                # pre-trigger-era manifest (or a writer without a
                # trigger target): deterministic re-warm
                triggers.reset(lifetime=True)
        return RestoreReport(
            generation=generation,
            epoch=int(payload["epoch"]),
            seconds=time.perf_counter() - started,
            fallbacks=tuple(fallbacks),
            trigger_restored=trigger_restored,
        )
    raise CheckpointError(
        f"no valid checkpoint generation in {directory}: "
        + "; ".join(fallbacks)
    )
