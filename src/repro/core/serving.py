"""Async serving loop: a lock-free evaluate path over the shard layer.

The synchronous deployment loop (:func:`repro.experiments.stream_deployment`)
stalls every decision while calibration folds and shard rescoring run
inline: a micro-batch that triggers a model update pays the whole
rebuild before the *next* batch can be evaluated.  This module splits
serving into two planes (DESIGN.md §5):

* an **always-hot evaluate path** — decisions are served against a
  :class:`ComposeSnapshot`, an immutable frozen clone of the detector
  (and the model reference) published behind a single attribute.
  Readers load the pointer, evaluate, and never take a lock; snapshot
  publication is an atomic pointer swap (double buffering: the next
  snapshot is built aside while the current one keeps serving).  With
  a sharded runtime the freeze is a **structural-sharing publish**
  (DESIGN.md §6): the snapshot references the segment compose layer's
  immutable per-shard blocks instead of deep-copying the flat arrays,
  so publishing after an update that touched ``k`` of ``N`` shards
  costs ``O(k)``, and consecutive snapshots share the other ``N - k``
  shards' blocks outright;
* an **asynchronous maintenance plane** — calibration folds, shard
  recalibrations and model updates are :class:`MaintenanceJob` items in
  a bounded work queue, drained by background workers.  A worker takes
  the maintenance mutex plus the touched shards' write locks
  (:meth:`~repro.core.sharding.ShardedCalibrationStore.acquire_shards`),
  applies the job through the streaming runtime, and publishes a fresh
  snapshot on completion.

Backpressure is explicit: when the queue is full, ``"coalesce"``
(default) merges the new job into the newest queued job of the same
kind where the merge is semantically exact (fold batches concatenate,
recalibration shard sets union; model updates never merge — see
:meth:`AsyncServingLoop._coalesce`), ``"drop"`` rejects the newest
submission, and ``"block"`` waits for space.  Worker failures never
kill the loop — they are recorded as :class:`JobError` entries
(surfaced as ``StreamResult.errors`` by the stream driver) and the
last good snapshot keeps serving.

The equivalence contract, property-tested in
``tests/core/test_serving.py``: with the queue drained, decisions
served from the snapshot are bit-identical to the synchronous loop's
for every shard router × eviction policy combination, because a
drained loop has applied exactly the same mutations in exactly the
same order and the snapshot is a bit-exact copy of the resulting
state.

Two analyzers machine-check this module's locking and immutability
conventions (DESIGN.md §8): the static promlint gate
(``python -m repro.analysis`` — PL001 snapshot mutation, PL002 lock
discipline) and the runtime lock-order sanitizer
(:func:`~repro.core.sharding.enable_lock_order_sanitizer`, armed by
the ``concurrency`` test fixture), which raises
:class:`~repro.core.exceptions.LockOrderError` on any shard-lock
acquisition that is not strictly ascending.
"""

from __future__ import annotations

import copy
import inspect
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .exceptions import ConfigurationError, RetryExhaustedError, ServingError
from .triggers import observe_decisions

#: queue backpressure policies accepted by :class:`AsyncServingLoop`
BACKPRESSURE_POLICIES = ("coalesce", "drop", "block")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for failed maintenance jobs.

    A job that raises is re-queued at the head of the queue (preserving
    its position relative to later submissions) and retried after
    ``delay(attempt)`` seconds; after ``max_attempts`` total attempts it
    is dead-lettered instead — recorded as a
    :class:`~repro.core.exceptions.RetryExhaustedError`-tagged
    :class:`JobError` and appended to
    :attr:`AsyncServingLoop.dead_letters` — and the loop moves on.
    :class:`~repro.core.exceptions.ServingError` failures (unknown job
    kind, structural-mutation rejections) are permanent and never
    retried.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1:
            raise ConfigurationError(
                "need base_delay >= 0, max_delay >= 0 and multiplier >= 1"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )


@dataclass
class MaintenanceJob:
    """One queued unit of calibration/model maintenance.

    ``kind`` is ``"fold"`` (calibration-only extension),
    ``"recalibrate"`` (whole-shard rescoring; ``shard_ids=None`` means
    every shard), ``"model_update"`` (incremental model update plus
    full calibration rebuild) or ``"checkpoint"`` (persist the runtime
    through the configured :class:`~repro.core.durability.CheckpointWriter`).
    ``coalesced`` counts how many submissions were merged into this job
    by queue backpressure; ``attempts``/``not_before`` drive the
    :class:`RetryPolicy` (a retried job is not eligible to run before
    ``not_before`` on the monotonic clock).
    """

    kind: str
    X: np.ndarray | None = None
    y: np.ndarray | None = None
    shard_ids: tuple | None = None
    epochs: int = 20
    submitted_at: float = 0.0
    coalesced: int = 0
    attempts: int = 0
    not_before: float = 0.0


@dataclass(frozen=True)
class JobError:
    """A maintenance-plane failure, preserved instead of propagated.

    ``attempts`` is how many times the job ran before being recorded
    (> 1 only under a :class:`RetryPolicy`).
    """

    kind: str
    error: str
    traceback: str
    attempts: int = 1

    def __str__(self) -> str:
        return f"{self.kind}: {self.error}"


@dataclass
class ServingStats:
    """Counters of one :class:`AsyncServingLoop`'s lifetime.

    ``shard_blocks_shared`` / ``shard_blocks_rebuilt`` account the
    structural sharing of segment-composed snapshots (DESIGN.md §6):
    per publish, how many shards' blocks were reused by identity from
    the previously published snapshot versus rebuilt because the shard
    mutated.  Both stay 0 in single-store mode, where snapshots are
    deep copies.

    ``n_candidates_scored`` / ``n_shards_pruned`` account router-aware
    shard pruning (DESIGN.md §9) when a
    :class:`~repro.core.pruning.CandidatePruner` is installed on the
    detector: total calibration rows in served samples' candidate
    pools, and total shards those samples skipped.  Both stay 0 when
    evaluation is unpruned.

    ``last_prewarm_seconds`` / ``total_prewarm_seconds`` account the
    maintenance-thread view prewarm that follows each segment-composed
    publish (panel re-gathers, norms, scalar gather bases — the repair
    work the publish moved off the decision path, DESIGN.md §9).

    ``n_retries`` / ``n_dead_lettered`` account the :class:`RetryPolicy`
    (re-executions of failed jobs, and jobs given up on after the last
    attempt).  ``checkpoint_generations`` / ``last_checkpoint_ms`` /
    ``checkpoint_errors`` account the durability plane when a
    :class:`~repro.core.durability.CheckpointWriter` is attached
    (DESIGN.md §7): committed generations, the wall-clock cost of the
    newest commit, and failed checkpoint attempts (the loop keeps
    serving; the previous generation keeps restoring).

    The ``workers_*`` / ``table_publishes`` / ``torn_table_reads`` /
    ``shm_*`` counters account the multi-process tier (DESIGN.md §10)
    when a :class:`~repro.core.multiproc.ProcessServingPool` is
    attached: evaluator processes spawned, crashed and respawned; name
    tables published; torn table reads absorbed by last-good fallback;
    and the shared-memory arena's cumulative exported/identity-reused
    block counts and exported bytes.  All stay 0 without a pool.

    ``trigger_observations`` / ``trigger_fires`` account the drift
    triggers when a trigger stack is attached to the loop
    (DESIGN.md §11): decisions fed to the stack, and served batches on
    which the trigger ensemble fired.  Both stay 0 without one.
    """

    jobs_submitted: int = 0
    jobs_executed: int = 0
    jobs_coalesced: int = 0
    jobs_dropped: int = 0
    jobs_failed: int = 0
    snapshots_published: int = 0
    max_queue_depth: int = 0
    max_staleness: int = 0
    decisions_served: int = 0
    decisions_during_maintenance: int = 0
    n_candidates_scored: int = 0
    n_shards_pruned: int = 0
    last_publish_seconds: float = 0.0
    total_publish_seconds: float = 0.0
    last_prewarm_seconds: float = 0.0
    total_prewarm_seconds: float = 0.0
    shard_blocks_shared: int = 0
    shard_blocks_rebuilt: int = 0
    n_retries: int = 0
    n_dead_lettered: int = 0
    checkpoint_generations: int = 0
    last_checkpoint_ms: float = 0.0
    checkpoint_errors: int = 0
    workers_spawned: int = 0
    workers_crashed: int = 0
    workers_respawned: int = 0
    table_publishes: int = 0
    torn_table_reads: int = 0
    shm_blocks_exported: int = 0
    shm_blocks_reused: int = 0
    shm_bytes_exported: int = 0
    trigger_observations: int = 0
    trigger_fires: int = 0


@dataclass(frozen=True)
class ComposeSnapshot:
    """An immutable, point-in-time view of the serving state.

    ``interface`` is a shallow clone of the model interface whose
    detector has been replaced by a frozen copy
    (:meth:`~repro.core.streaming._ShardMixin.detector_snapshot`): its
    arrays are private, so evaluating the snapshot is safe from any
    thread while maintenance keeps mutating the live wrapper.  Only the
    evaluate surface (:meth:`predict` / :meth:`evaluate`) is supported
    on a snapshot; mutation methods still reach the *live* runtime and
    must not be called through it.

    ``epoch`` is the streaming wrapper's epoch the snapshot was built
    at — ``live_epoch - snapshot.epoch`` mutations have happened since.
    ``shard_epochs`` tags the per-shard store epochs the snapshot's
    blocks correspond to (empty in single-store mode), and
    ``blocks_shared`` counts how many shards' blocks this snapshot
    shares, by identity, with the previously published one — the
    observable form of the structural-sharing publish (DESIGN.md §6).
    """

    epoch: int
    interface: object = field(repr=False)
    calibration_size: int
    shard_sizes: tuple
    published_at: float
    shard_epochs: tuple = ()
    blocks_shared: int = 0

    def predict(self, X):
        """``(predictions, decisions)`` for raw inputs, snapshot state."""
        return self.interface.predict(X)

    def evaluate(self, *args, **kwargs):
        """Delegate to the frozen detector's batch ``evaluate``."""
        return self.interface.prom.evaluate(*args, **kwargs)


def freeze_interface(interface):
    """A shallow interface clone wired to a frozen detector copy.

    The clone shares the (stateless) feature-extraction hook and the
    current model reference; the detector is the frozen clone from
    :meth:`~repro.core.streaming._ShardMixin.detector_snapshot` — a
    structural-sharing snapshot over the segment compose layer when the
    runtime is sharded, a deep copy otherwise.  Model updates applied
    through :meth:`AsyncServingLoop.submit_model_update` swap the live
    interface's ``model`` attribute for a fresh object instead of
    mutating it (``isolate_model``), so the reference captured here
    stays stable for the snapshot's lifetime.
    """
    frozen = copy.copy(interface)
    frozen.prom = interface.streaming.detector_snapshot()
    return frozen


class AsyncServingLoop:
    """Serve decisions from snapshots; maintain state on workers.

    Args:
        interface: a trained, calibrated
            :class:`~repro.core.interface.ModelInterface` or
            :class:`~repro.core.interface.RegressionModelInterface`.
        n_workers: background maintenance workers.  Jobs are applied
            under one maintenance mutex (the global compose is shared
            state), so extra workers buy queue-drain overlap, not
            parallel folds; per-shard parallelism inside a
            recalibration job comes from the interface's ``parallel``
            thread pool.
        queue_capacity: bound on pending maintenance jobs.
        backpressure: full-queue policy — ``"coalesce"`` (default),
            ``"drop"`` or ``"block"``.
        publish_every: under a sustained backlog, force a snapshot
            publish after this many applied-but-unpublished jobs even
            though more work is queued — bounding how long readers can
            be served from an old snapshot while the queue never
            drains.  (An idle queue always publishes immediately.)
        retry: optional :class:`RetryPolicy`.  Transient job failures
            (anything but :class:`ServingError`) are re-queued with
            bounded exponential backoff; jobs that exhaust
            ``max_attempts`` are dead-lettered (``dead_letters``) and
            recorded as :class:`RetryExhaustedError` job errors.
            ``None`` (default) preserves the historical
            fail-once-record-once behaviour.
        checkpoint: optional
            :class:`~repro.core.durability.CheckpointWriter`.  When
            set, every ``checkpoint_every``-th snapshot publish
            enqueues a background ``"checkpoint"`` maintenance job that
            persists the runtime incrementally (DESIGN.md §7); a failed
            checkpoint increments ``stats.checkpoint_errors`` but never
            disturbs serving.
        checkpoint_every: publishes between automatic checkpoints.
        faults: optional :class:`~repro.core.faults.FaultInjector`
            probed before each job application (stage ``"job:<kind>"``)
            — the kill-worker hook of the fault-injection harness.
            ``None`` (default) keeps the maintenance path probe-free.
        process_pool: optional
            :class:`~repro.core.multiproc.ProcessServingPool`.  When
            attached, every snapshot publish also publishes a
            shared-memory name table so the pool's evaluator processes
            track the same state the in-process snapshot serves
            (DESIGN.md §10).  The pool is externally owned — the loop
            publishes to it but never closes it — and its counters are
            re-homed onto this loop's ``stats``.
        triggers: optional drift-trigger stack
            (:class:`~repro.core.triggers.TriggerStack` or
            :class:`~repro.core.triggers.PerShardTriggerStack`).  Every
            served decision batch is fed to it after counting, so
            direct :meth:`predict`/:meth:`evaluate` callers get trigger
            observability (``stats.trigger_observations`` /
            ``stats.trigger_fires``) without a deployment loop.  The
            stack's own leaf lock serializes observation, so concurrent
            serving threads are safe; routing for per-shard stacks
            reads the router snapshot, never the mutating shards
            (DESIGN.md §11).

    The evaluate path (:meth:`predict` / :meth:`evaluate`) never takes
    a lock: it reads the current :class:`ComposeSnapshot` and runs
    entirely on the snapshot's private arrays.  ``staleness`` — queued
    plus in-flight jobs not yet reflected in the published snapshot —
    is bounded by ``queue_capacity + n_workers``.
    """

    def __init__(
        self,
        interface,
        n_workers: int = 1,
        queue_capacity: int = 32,
        backpressure: str = "coalesce",
        publish_every: int = 8,
        retry: RetryPolicy | None = None,
        checkpoint=None,
        checkpoint_every: int = 1,
        faults=None,
        process_pool=None,
        triggers=None,
    ):
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if publish_every < 1:
            raise ConfigurationError(
                f"publish_every must be >= 1, got {publish_every}"
            )
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}"
            )
        self.interface = interface
        self.n_workers = int(n_workers)
        self.queue_capacity = int(queue_capacity)
        self.backpressure = backpressure
        self.publish_every = int(publish_every)
        self.retry = retry
        self.checkpoint = checkpoint
        self.checkpoint_every = int(checkpoint_every)
        self._faults = faults
        self.process_pool = process_pool
        self.triggers = triggers
        self._publishes_since_checkpoint = 0
        self._jobs_since_publish = 0
        self.stats = ServingStats()
        self.errors: list[JobError] = []
        self.dead_letters: list[MaintenanceJob] = []
        self._queue: deque[MaintenanceJob] = deque()
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        if process_pool is not None:
            process_pool.bind_stats(self.stats, self._stats_lock)
        self._in_flight = 0
        self._closed = False
        self._publish_pending = False
        self._snapshot = self._build_snapshot()
        self._accepts_isolate_model = "isolate_model" in inspect.signature(
            interface.incremental_update
        ).parameters
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"prom-serving-{i}", daemon=True
            )
            for i in range(self.n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- read side (lock-free) ----------------------------------------------------
    @property
    def snapshot(self) -> ComposeSnapshot:
        """The currently published snapshot (atomic pointer read)."""
        return self._snapshot

    @property
    def queue_depth(self) -> int:
        """Pending maintenance jobs (excluding in-flight ones).

        Safe to read from any thread; the value may be one submission
        stale by the time the caller acts on it.
        """
        return len(self._queue)

    @property
    def staleness(self) -> int:
        """Accepted jobs not yet reflected in the published snapshot."""
        return len(self._queue) + self._in_flight

    @property
    def maintenance_active(self) -> bool:
        """True while a worker is mid-job (folds/rescoring in flight)."""
        return self._in_flight > 0

    def predict(self, X):
        """``(predictions, decisions)`` against the current snapshot.

        The serving hot path: one atomic snapshot-pointer read, then
        pure array work on the snapshot's private state — never blocked
        by in-flight folds, recalibrations or model updates.
        """
        snapshot = self._snapshot
        during_maintenance = self.maintenance_active
        predictions, decisions = snapshot.predict(X)
        self._count_served(
            len(np.asarray(predictions)), during_maintenance, decisions
        )
        self._observe_triggers(decisions, raw=X, labels=predictions)
        return predictions, decisions

    def evaluate(self, *args, **kwargs):
        """Batch-evaluate precomputed features/outputs on the snapshot."""
        snapshot = self._snapshot
        during_maintenance = self.maintenance_active
        decisions = snapshot.evaluate(*args, **kwargs)
        self._count_served(len(decisions), during_maintenance, decisions)
        self._observe_triggers(decisions)
        return decisions

    def _observe_triggers(self, decisions, raw=None, labels=None) -> None:
        # the trigger stack's internal lock is a leaf: it is taken here
        # with no loop lock held, and _stats_lock is taken only after
        # observation returns, so no ordering edge ever forms between
        # the two (the lock-order sanitizer stays quiet under stress)
        if self.triggers is None:
            return
        fired = observe_decisions(
            self.triggers, decisions, raw=raw, labels=labels
        )
        with self._stats_lock:
            self.stats.trigger_observations += len(decisions)
            if fired:
                self.stats.trigger_fires += 1

    def _count_served(self, n: int, during_maintenance: bool, batch=None) -> None:
        # `+=` on the shared dataclass is a read-modify-write, and two
        # concurrent readers would lose increments permanently — a
        # dedicated lock keeps the stats exact for microseconds per
        # batch (readers of the stats may still observe a value one
        # batch stale, which is fine).
        with self._stats_lock:
            self.stats.decisions_served += n
            if during_maintenance:
                self.stats.decisions_during_maintenance += n
            scored = getattr(batch, "n_candidates_scored", None)
            if scored is not None:
                self.stats.n_candidates_scored += scored
                self.stats.n_shards_pruned += batch.n_shards_pruned or 0

    # -- write side (queued) ------------------------------------------------------
    def submit_fold(self, X, y) -> bool:
        """Queue a calibration-only extension (``extend_calibration``)."""
        return self._submit(
            MaintenanceJob(kind="fold", X=np.asarray(X), y=np.asarray(y))
        )

    def submit_recalibration(self, shard_ids=None) -> bool:
        """Queue whole-shard rescoring (``recalibrate_shards``)."""
        ids = None if shard_ids is None else tuple(int(s) for s in shard_ids)
        return self._submit(MaintenanceJob(kind="recalibrate", shard_ids=ids))

    def submit_model_update(self, X, y, epochs: int = 20) -> bool:
        """Queue an incremental model update + calibration rebuild."""
        return self._submit(
            MaintenanceJob(
                kind="model_update",
                X=np.asarray(X),
                y=np.asarray(y),
                epochs=epochs,
            )
        )

    def _submit(self, job: MaintenanceJob) -> bool:
        """Enqueue under the backpressure policy.

        Returns True when the job (or a coalesced form of it) will be
        applied, False when it was dropped.
        """
        job.submitted_at = time.perf_counter()
        with self._lock:
            if self._closed:
                raise ServingError("serving loop is closed")
            self.stats.jobs_submitted += 1
            while len(self._queue) >= self.queue_capacity:
                if self.backpressure == "block":
                    self._idle.wait()
                    if self._closed:
                        raise ServingError("serving loop closed while blocked")
                    continue
                if self.backpressure == "coalesce" and self._coalesce(job):
                    self.stats.jobs_coalesced += 1
                    self._track_depth()
                    return True
                self.stats.jobs_dropped += 1
                return False
            self._queue.append(job)
            self._track_depth()
            self._work_ready.notify()
        return True

    def _coalesce(self, job: MaintenanceJob) -> bool:
        """Merge ``job`` into the newest queued job of the same kind.

        Only the tail job is a merge candidate: merging deeper would
        reorder the job's effects relative to jobs queued after its
        target, breaking the drained-queue equivalence contract.
        Merging is restricted to the kinds whose merge is semantically
        exact — fold batches concatenate (the store folds them the same
        either way) and recalibration shard sets union.  Model updates
        never merge: one ``partial_fit`` over a concatenated batch is
        *not* two sequential ``partial_fit`` passes, so a full queue
        rejects the newer update instead (the submitter sees ``False``
        and keeps its alert state to retry).
        """
        if not self._queue or self._queue[-1].kind != job.kind:
            return False
        if job.kind == "model_update":
            return False
        tail = self._queue[-1]
        if job.kind == "checkpoint":
            # Two queued checkpoints persist the same state; one is
            # enough.
            tail.coalesced += 1
            return True
        if job.kind == "recalibrate":
            if tail.shard_ids is None or job.shard_ids is None:
                tail.shard_ids = None
            else:
                tail.shard_ids = tuple(
                    sorted(set(tail.shard_ids) | set(job.shard_ids))
                )
        else:
            tail.X = np.concatenate([tail.X, job.X])
            tail.y = np.concatenate([tail.y, job.y])
        tail.coalesced += 1
        return True

    def _track_depth(self) -> None:
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self._queue)
        )
        self.stats.max_staleness = max(
            self.stats.max_staleness, len(self._queue) + self._in_flight
        )

    # -- maintenance plane --------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._lock:
                while True:
                    if self._queue:
                        # A retried head job may carry a backoff
                        # deadline; sleep it off on the condition so a
                        # close() or a fresh submission still wakes us.
                        wait = self._queue[0].not_before - time.monotonic()
                        if wait <= 0:
                            break
                        self._work_ready.wait(timeout=wait)
                    elif self._closed:
                        return
                    else:
                        self._work_ready.wait()
                job = self._queue.popleft()
                self._in_flight += 1
                self._idle.notify_all()
            try:
                job.attempts += 1
                self._execute(job)
                with self._stats_lock:
                    self.stats.jobs_executed += 1
            except Exception as err:  # noqa: BLE001 — the loop must survive
                self._handle_failure(job, err)
            finally:
                with self._lock:
                    self._in_flight -= 1
                    self._idle.notify_all()

    def _handle_failure(self, job: MaintenanceJob, err: Exception) -> None:
        """Retry a transiently failed job, or record it and move on.

        :class:`ServingError` failures are structural (unknown kind,
        rejected mutation) — retrying cannot help, so they are recorded
        immediately.  Everything else is considered transient when a
        :class:`RetryPolicy` is configured: the job goes back to the
        *head* of the queue (it must not reorder behind jobs submitted
        after it) with a backoff deadline.  Once attempts are exhausted
        the job is dead-lettered: kept on ``dead_letters`` for
        inspection/resubmission and recorded as a
        :class:`RetryExhaustedError`-tagged :class:`JobError`.
        """
        retryable = self.retry is not None and not isinstance(err, ServingError)
        if retryable and job.attempts < self.retry.max_attempts:
            with self._lock:
                if not self._closed:
                    job.not_before = (
                        time.monotonic() + self.retry.delay(job.attempts)
                    )
                    # Deliberately bypasses queue_capacity: a retry is
                    # readmitting accepted work, not accepting new work.
                    self._queue.appendleft(job)
                    self._track_depth()
                    self._work_ready.notify()
                    with self._stats_lock:
                        self.stats.n_retries += 1
                    return
        if retryable:
            exhausted = RetryExhaustedError(
                f"{job.kind} failed after {job.attempts} attempts: "
                f"{type(err).__name__}: {err}"
            )
            error = f"{type(exhausted).__name__}: {exhausted}"
            with self._stats_lock:
                self.stats.n_dead_lettered += 1
            self.dead_letters.append(job)
        else:
            error = f"{type(err).__name__}: {err}"
        with self._stats_lock:
            self.stats.jobs_failed += 1
            self.errors.append(
                JobError(
                    kind=job.kind,
                    error=error,
                    traceback=traceback.format_exc(),
                    attempts=job.attempts,
                )
            )
        # A failed job publishes nothing itself, but it may have been
        # the backlog's designated publisher: flush any deferred
        # publish so earlier applied jobs become visible (and drain()
        # leaves a current snapshot).
        if self._publish_pending:
            with self._state_lock:
                if self._publish_pending and not self._queue:
                    self._publish()
                    self._publish_pending = False

    def _execute(self, job: MaintenanceJob) -> None:
        """Apply one job under the maintenance mutex + shard write locks.

        Lock order is fixed — maintenance mutex first, then shard locks
        ascending — so concurrent workers cannot deadlock.  Holding the
        shard locks across the apply is what arms the structural-
        mutation guard: a foreign ``clear()``/``rebalance()`` racing
        this job is rejected instead of corrupting it.
        """
        interface = self.interface
        streaming = interface.streaming
        if self._faults is not None:
            self._faults.hit(f"job:{job.kind}")
        if job.kind == "checkpoint":
            # Checkpoints only read calibration state; the state lock
            # alone pins it (no job mutates state without holding it),
            # and nothing is published afterwards.
            with self._state_lock:
                self._run_checkpoint()
            return
        published = False
        with self._state_lock:
            store = streaming.store
            if streaming.is_sharded:
                shard_ids = job.shard_ids if job.kind == "recalibrate" else None
                with store.acquire_shards(shard_ids):
                    self._apply(interface, job)
            else:
                self._apply(interface, job)
            # Publish once per burst, not once per job: with more work
            # already queued, this snapshot could never be the one a
            # drained reader observes, so the O(store) copy is deferred
            # to the backlog's last job (readers meanwhile keep the
            # previous consistent snapshot; `staleness` already counts
            # the queued jobs).  A sustained backlog must not starve
            # readers on an ancient snapshot, though — publish_every
            # bounds the deferral.
            self._jobs_since_publish += 1
            if self._queue and self._jobs_since_publish < self.publish_every:
                self._publish_pending = True
            else:
                self._publish()
                self._publish_pending = False
                published = True
        if published:
            self._after_publish()

    def _apply(self, interface, job: MaintenanceJob) -> None:
        if job.kind == "fold":
            interface.extend_calibration(job.X, job.y)
        elif job.kind == "recalibrate":
            interface.recalibrate_shards(job.shard_ids)
        elif job.kind == "model_update":
            if self._accepts_isolate_model:
                interface.incremental_update(
                    job.X, job.y, epochs=job.epochs, isolate_model=True
                )
            else:
                # Defensive isolation for interface overrides that lack
                # the kwarg (including **kwargs catch-alls, which would
                # silently ignore it): swap in a deep copy first, so an
                # override mutating `self.model` in place can never
                # touch the object captured by published snapshots.
                interface.model = copy.deepcopy(interface.model)
                interface.incremental_update(job.X, job.y, epochs=job.epochs)
        else:
            raise ServingError(f"unknown maintenance job kind {job.kind!r}")

    def _run_checkpoint(self) -> None:
        """Persist the runtime through the attached writer (timed).

        Failures re-raise into the worker's error path (so the retry
        policy applies) after bumping ``checkpoint_errors`` — serving
        and the previously committed generation are never affected.
        """
        started = time.perf_counter()
        try:
            info = self.checkpoint.checkpoint(self.interface.streaming)
        except Exception:
            with self._stats_lock:
                self.stats.checkpoint_errors += 1
            raise
        del info  # CheckpointInfo is surfaced via writer.latest_generation
        with self._stats_lock:
            self.stats.checkpoint_generations += 1
            self.stats.last_checkpoint_ms = (
                (time.perf_counter() - started) * 1000.0
            )

    def _after_publish(self) -> None:
        """Post-publish hook: schedule a checkpoint when one is due.

        Called by the executing worker *after* releasing the state
        lock.  The checkpoint rides the maintenance queue as its own
        job, so it coalesces under backlog (consecutive due
        checkpoints merge into one) and never blocks the publish that
        triggered it.
        """
        if self.checkpoint is None:
            return
        self._publishes_since_checkpoint += 1
        if self._publishes_since_checkpoint < self.checkpoint_every:
            return
        self._publishes_since_checkpoint = 0
        self._submit_checkpoint()

    def _submit_checkpoint(self) -> bool:
        """Enqueue a ``"checkpoint"`` job without ever blocking.

        Workers call this from the publish path; under ``"block"``
        backpressure a full queue must coalesce or drop instead of
        waiting (the single worker waiting on itself would deadlock).
        """
        job = MaintenanceJob(kind="checkpoint")
        job.submitted_at = time.perf_counter()
        with self._lock:
            if self._closed:
                return False
            self.stats.jobs_submitted += 1
            if len(self._queue) >= self.queue_capacity:
                if self._coalesce(job):
                    self.stats.jobs_coalesced += 1
                    return True
                self.stats.jobs_dropped += 1
                return False
            self._queue.append(job)
            self._track_depth()
            self._work_ready.notify()
        return True

    def _build_snapshot(self) -> ComposeSnapshot:
        """Freeze the current state into a new :class:`ComposeSnapshot`.

        With a segment-composed (sharded) runtime this is ``O(touched
        shards)``: the frozen detector references the live bundle's
        immutable blocks, and the sharing with the previously published
        snapshot is accounted per shard.  Single-store runtimes pay the
        historical ``O(store)`` deep copy.
        """
        started = time.perf_counter()
        streaming = self.interface.streaming
        frozen = freeze_interface(self.interface)
        previous = getattr(self, "_snapshot", None)
        bundle = getattr(frozen.prom, "_segment_bundle", None)
        shared = 0
        if bundle is not None:
            previous_bundle = (
                getattr(previous.interface.prom, "_segment_bundle", None)
                if previous is not None
                else None
            )
            shared = bundle.shared_shards_with(previous_bundle)
            self.stats.shard_blocks_shared += shared
            self.stats.shard_blocks_rebuilt += bundle.n_shards - shared
        snapshot = ComposeSnapshot(
            epoch=streaming.epoch,
            interface=frozen,
            calibration_size=self.interface.calibration_size,
            shard_sizes=tuple(self.interface.shard_sizes),
            published_at=time.perf_counter(),
            shard_epochs=tuple(getattr(streaming.store, "shard_epochs", ())),
            blocks_shared=shared,
        )
        elapsed = time.perf_counter() - started
        self.stats.last_publish_seconds = elapsed
        self.stats.total_publish_seconds += elapsed
        if bundle is not None:
            # prewarm the segment-direct view here, on the maintenance
            # thread: the panel re-gathers and norm rebuilds a mutation
            # leaves behind must not tax the first decision after the
            # publish (DESIGN.md §9).  Timed apart from the publish —
            # it is repair work moved off the decision path, not part
            # of the structural-sharing pointer swap.
            started = time.perf_counter()
            view = bundle.evaluation_view()
            if view is not None:
                view.prewarm()
            prewarm = time.perf_counter() - started
            self.stats.last_prewarm_seconds = prewarm
            self.stats.total_prewarm_seconds += prewarm
        return snapshot

    def _publish(self) -> None:
        """Build the next snapshot aside, then swap the pointer.

        With a :class:`~repro.core.multiproc.ProcessServingPool`
        attached, the shared-memory name table is published right after
        the in-process pointer swap — both planes run under the same
        state lock, so the table always names the state the snapshot
        serves.
        """
        snapshot = self._build_snapshot()
        self._snapshot = snapshot  # atomic pointer swap
        self.stats.snapshots_published += 1
        self._jobs_since_publish = 0
        if self.process_pool is not None:
            self.process_pool.publish()

    # -- lifecycle ----------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> None:
        """Block until every accepted job has been applied and published.

        After ``drain()`` returns, ``staleness`` is 0 and the published
        snapshot reflects all accepted maintenance — the precondition
        of the sync-vs-async equivalence contract.

        Raises:
            ServingError: when ``timeout`` (seconds) elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._queue or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServingError(
                            f"drain timed out with {len(self._queue)} queued "
                            f"and {self._in_flight} in-flight jobs"
                        )
                self._idle.wait(remaining)

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the workers (idempotent).

        ``drain=True`` (default) applies the queued jobs first;
        ``drain=False`` abandons them.  ``timeout`` is a **hard
        deadline** for the whole shutdown: when the drain cannot finish
        in time (e.g. a wedged worker), ``close`` does not raise —
        it records a ``kind="drain"`` :class:`JobError`, abandons the
        still-queued jobs, best-effort flushes any deferred snapshot
        publish, and returns once the join budget is spent (wedged
        daemon workers are left behind).  The last published snapshot
        keeps serving reads after close; submissions raise.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        timed_out = False
        if drain and not self._closed:
            try:
                self.drain(timeout=timeout)
            except ServingError as err:
                timed_out = True
                with self._stats_lock:
                    self.errors.append(
                        JobError(
                            kind="drain",
                            error=f"ServingError: {err}",
                            traceback="",
                        )
                    )
                # The designated publisher may be the wedged job:
                # flush the deferred publish ourselves so applied work
                # is visible, but never block past the deadline on the
                # state lock a wedged worker might hold.
                if self._publish_pending and self._state_lock.acquire(
                    timeout=max(0.0, deadline - time.monotonic())
                ):
                    try:
                        if self._publish_pending:
                            self._publish()
                            self._publish_pending = False
                    finally:
                        self._state_lock.release()
        with self._lock:
            self._closed = True
            if not drain or timed_out:
                self._queue.clear()
            self._work_ready.notify_all()
            self._idle.notify_all()
        for worker in self._workers:
            remaining = timeout
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            worker.join(timeout=remaining)

    def __enter__(self) -> "AsyncServingLoop":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def __repr__(self) -> str:
        return (
            f"AsyncServingLoop(workers={self.n_workers}, "
            f"queue={len(self._queue)}/{self.queue_capacity}, "
            f"backpressure={self.backpressure!r}, "
            f"epoch={self._snapshot.epoch})"
        )
