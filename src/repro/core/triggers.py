"""Pluggable drift-trigger policy layer (DESIGN.md §11).

``DriftMonitor`` was the last hard-coded policy in the maintenance
plane: one credibility threshold over one rolling window.  This module
decomposes drift detection the way eviction, sharding and serving are
already decomposed — into small policy objects that compose:

* :class:`DetectionWindows` — the observation state: an amount- or
  step-based *current* window plus a seeded reservoir-sampled
  *reference* window (the long-run baseline distribution detectors
  compare against).
* :class:`DriftDetector` — per-metric evidence: the windowed
  rejection rate (:class:`CredibilityDetector`, the legacy metric), a
  two-sample test on the conformal p-value distribution
  (:class:`PValueDetector`), and an expert-disagreement accuracy proxy
  (:class:`AccuracyProxyDetector`).
* :class:`DriftDecisionPolicy` — metric series → fire/no-fire:
  static threshold, dynamic quantile threshold, dynamic EWMA
  threshold, hysteresis.  Raw hypothesis testing (a static
  significance cut on :class:`PValueDetector`) is deliberately
  reproduced *and measured* as oversensitive — see
  ``benchmarks/bench_triggers.py``.
* :class:`WarmupPolicy` — minimum window fill before any fire.
* :class:`DriftTrigger` / :class:`TriggerStack` — one assembled
  (windows, detector, policy, warmup) unit, and an any/all/majority
  ensemble of them behind the legacy monitor protocol
  (``observe_batch`` / ``rejection_rate`` / ``alert`` / ``reset``).
* :class:`PerShardTriggerStack` — per-shard trigger instances keyed
  off a :class:`~repro.core.sharding.ShardRouter`.
* :class:`CostAwareBudgetPolicy` — scales the relabel budget by
  trigger severity × expected coverage loss, using the PR 8
  agreement-vs-spill study (:class:`CoverageCostModel`).

The default stack (:func:`default_trigger_stack`, what a bare
``TriggerConfig()`` builds) is property-tested decision-identical to
the historical deque-based ``DriftMonitor`` — bit-identical ``alert``
and ``rejection_rate`` sequences under any interleaving of observes
and resets — so the refactor inherits the repo's equivalence contract.

Determinism: every random choice (the reference reservoir) is driven
by an explicitly seeded generator, and "time"-based windows count
observe *steps*, not wall-clock (``time.time()`` is banned from
``core/`` by promlint PL004) — so trigger state checkpoints and
restores bit-identically (DESIGN.md §7).
"""

from __future__ import annotations

import abc
import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .committee import DecisionBatch
from .exceptions import ConfigurationError, ValidationError

#: window modes accepted by DetectionWindows (``"steps"`` is the
#: deterministic stand-in for Modyn's time-based windows: logical
#: observe steps, since wall-clock reads are banned from core/)
WINDOW_MODES = ("amount", "steps")

#: ensemble vote-combination modes accepted by TriggerStack
ENSEMBLE_MODES = ("any", "all", "majority")

_STATE_VERSION = 1


# -- observations ------------------------------------------------------------------


@dataclass(frozen=True)
class ObservationBatch:
    """Per-sample trigger observations extracted from committee output.

    Detectors consume this normalized form so a decision batch is
    unpacked exactly once per observe call (and so per-shard stacks can
    slice observations without re-touching the source batch).

    Attributes:
        flags: per-sample drifting verdicts.
        credibility: per-sample conformal p-values.
        disagreement: per-sample expert-split indicator (1.0 when the
            committee was not unanimous), the accuracy proxy.
    """

    flags: tuple
    credibility: tuple
    disagreement: tuple

    def __len__(self) -> int:
        """Number of samples observed."""
        return len(self.flags)

    @classmethod
    def from_decisions(cls, decisions) -> "ObservationBatch":
        """Normalize a ``DecisionBatch`` or ``Decision`` iterable."""
        if isinstance(decisions, ObservationBatch):
            return decisions
        if isinstance(decisions, DecisionBatch):
            flags = tuple(bool(f) for f in np.asarray(decisions.drifting))
            credibility = tuple(
                float(c) for c in np.asarray(decisions.credibility, dtype=float)
            )
            accepts = decisions.expert_accept.sum(axis=0)
            n_experts = decisions.expert_accept.shape[0]
            disagreement = tuple(
                float(0 < a < n_experts) for a in accepts
            )
            return cls(flags, credibility, disagreement)
        decisions = list(decisions)
        flags = tuple(bool(d.drifting) for d in decisions)
        credibility = tuple(float(d.credibility) for d in decisions)
        disagreement = tuple(
            0.0
            if not d.votes
            else float(0 < sum(1 for v in d.votes if v.accept) < len(d.votes))
            for d in decisions
        )
        return cls(flags, credibility, disagreement)

    def select(self, indices) -> "ObservationBatch":
        """The sub-batch at ``indices`` (per-shard routing)."""
        return ObservationBatch(
            flags=tuple(self.flags[i] for i in indices),
            credibility=tuple(self.credibility[i] for i in indices),
            disagreement=tuple(self.disagreement[i] for i in indices),
        )


# -- detection windows -------------------------------------------------------------


class DetectionWindows:
    """Current + reference observation windows for one detector.

    The *current* window holds the most recent observations — either
    the last ``size`` samples (``mode="amount"``) or every sample of
    the last ``size`` observe steps (``mode="steps"``, the logical-time
    window).  The *reference* window is a seeded reservoir sample over
    every observation ever pushed, so distribution detectors keep a
    stationary baseline even after drift has flushed through the
    current window.

    Args:
        size: current-window span (samples or steps, per ``mode``).
        mode: ``"amount"`` or ``"steps"``.
        reference_size: reservoir capacity of the reference window.
        seed: reservoir RNG seed — explicit so trigger state is
            checkpoint-covered (promlint PL004).
    """

    def __init__(
        self,
        size: int = 100,
        mode: str = "amount",
        reference_size: int = 256,
        seed: int = 0,
    ):
        if size < 1:
            raise ConfigurationError(f"window size must be >= 1, got {size}")
        if mode not in WINDOW_MODES:
            raise ConfigurationError(
                f"window mode must be one of {WINDOW_MODES}, got {mode!r}"
            )
        if reference_size < 1:
            raise ConfigurationError(
                f"reference_size must be >= 1, got {reference_size}"
            )
        self.size = int(size)
        self.mode = mode
        self.reference_size = int(reference_size)
        self.seed = int(seed)
        self._samples = deque(maxlen=size) if mode == "amount" else None
        self._steps = deque(maxlen=size) if mode == "steps" else None
        self._reference = []
        self._rng = np.random.default_rng(seed)
        self._n_pushed = 0

    @property
    def current(self) -> tuple:
        """The current-window observations, oldest first."""
        if self.mode == "amount":
            return tuple(self._samples)
        return tuple(v for step in self._steps for v in step)

    @property
    def reference(self) -> tuple:
        """The reservoir-sampled reference observations."""
        return tuple(self._reference)

    @property
    def n_pushed(self) -> int:
        """Observations pushed over this window's lifetime."""
        return self._n_pushed

    def push(self, values) -> None:
        """Ingest one observe step's observations."""
        values = [float(v) for v in values]
        if self.mode == "amount":
            self._samples.extend(values)
        else:
            self._steps.append(tuple(values))
        for value in values:
            self._n_pushed += 1
            if len(self._reference) < self.reference_size:
                self._reference.append(value)
            else:
                # reservoir algorithm R: keep each of the n pushed
                # observations with probability reference_size / n
                slot = int(self._rng.integers(self._n_pushed))
                if slot < self.reference_size:
                    self._reference[slot] = value

    def reset(self, reference: bool = False) -> None:
        """Clear the current window; optionally re-warm the reference.

        ``reference=True`` restores the construction state exactly —
        empty reservoir, reseeded RNG, zero counters — so a fully reset
        window is bit-identical to a fresh one (the deterministic
        re-warm contract of DESIGN.md §7).
        """
        if self.mode == "amount":
            self._samples.clear()
        else:
            self._steps.clear()
        if reference:
            self._reference = []
            self._rng = np.random.default_rng(self.seed)
            self._n_pushed = 0

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the window state."""
        state = {
            "mode": self.mode,
            "size": self.size,
            "reference_size": self.reference_size,
            "seed": self.seed,
            "reference": list(self._reference),
            "n_pushed": self._n_pushed,
            "rng": self._rng.bit_generator.state,
        }
        if self.mode == "amount":
            state["current"] = list(self._samples)
        else:
            state["steps"] = [list(step) for step in self._steps]
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        if state.get("mode") != self.mode or state.get("size") != self.size:
            raise ValidationError(
                f"window state is {state.get('mode')!r}/{state.get('size')}, "
                f"this window is {self.mode!r}/{self.size}"
            )
        if self.mode == "amount":
            self._samples = deque(
                (float(v) for v in state["current"]), maxlen=self.size
            )
        else:
            self._steps = deque(
                (tuple(float(v) for v in step) for step in state["steps"]),
                maxlen=self.size,
            )
        self._reference = [float(v) for v in state["reference"]]
        self._n_pushed = int(state["n_pushed"])
        self._rng = np.random.default_rng(self.seed)
        self._rng.bit_generator.state = state["rng"]


# -- detectors ---------------------------------------------------------------------


class DriftDetector(abc.ABC):
    """One drift metric over a pair of detection windows.

    Subclasses pick which observation column they watch
    (:meth:`update`) and how the windows condense into a scalar
    (:meth:`metric`).  Higher metric values always mean *more* drift
    evidence, so every decision policy composes with every detector.
    """

    #: short name used in TriggerDecision records and state dicts
    name = "detector"

    def __init__(self, windows: DetectionWindows):
        self.windows = windows

    @abc.abstractmethod
    def update(self, observations: ObservationBatch) -> None:
        """Ingest one observe step's observations."""

    @abc.abstractmethod
    def metric(self) -> float:
        """Current drift evidence (higher = more drifted)."""

    def ready(self) -> bool:
        """Whether enough data arrived for :meth:`metric` to mean much."""
        return len(self.windows.current) > 0

    def reset(self, reference: bool = False) -> None:
        """Clear the current window (and optionally the reference)."""
        self.windows.reset(reference=reference)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the detector state."""
        return {"name": self.name, "windows": self.windows.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        if state.get("name") != self.name:
            raise ValidationError(
                f"detector state is for {state.get('name')!r}, "
                f"this detector is {self.name!r}"
            )
        self.windows.load_state_dict(state["windows"])


class CredibilityDetector(DriftDetector):
    """Windowed rejection rate — the legacy ``DriftMonitor`` metric.

    Watches the committee's per-sample drifting verdicts (credibility
    below the calibrated threshold) and reports their rate over the
    current window.  With a static threshold policy and the legacy
    warmup this is decision-identical to the historical monitor.
    """

    name = "credibility"

    def update(self, observations: ObservationBatch) -> None:
        """Push this step's drifting flags."""
        self.windows.push(float(f) for f in observations.flags)

    def metric(self) -> float:
        """Rejection rate over the current window (0 when empty).

        Computed as ``sum/len`` over 0.0/1.0 flags — bit-identical to
        the legacy integer ``sum/len`` for any window that fits in a
        float's exact-integer range.
        """
        current = self.windows.current
        if not current:
            return 0.0
        return sum(current) / len(current)


def _ks_statistic(current, reference) -> float:
    """Two-sample Kolmogorov–Smirnov statistic."""
    a = np.sort(np.asarray(current, dtype=float))
    b = np.sort(np.asarray(reference, dtype=float))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / len(a)
    cdf_b = np.searchsorted(b, grid, side="right") / len(b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _ks_p_value(statistic: float, n_current: int, n_reference: int) -> float:
    """Asymptotic two-sample KS significance (Q_KS series)."""
    if statistic <= 0.0:
        return 1.0
    effective = n_current * n_reference / (n_current + n_reference)
    lam = (np.sqrt(effective) + 0.12 + 0.11 / np.sqrt(effective)) * statistic
    j = np.arange(1, 101)
    terms = 2.0 * ((-1.0) ** (j - 1)) * np.exp(-2.0 * (j * lam) ** 2)
    return float(min(max(terms.sum(), 0.0), 1.0))


class PValueDetector(DriftDetector):
    """Two-sample KS test: current vs reference credibility windows.

    The *raw hypothesis testing* detector: it compares the conformal
    p-value (credibility) distribution of the current window against
    the reservoir-sampled reference and reports ``1 - p`` of the KS
    test as its metric, so a static threshold of ``1 - alpha``
    reproduces a textbook significance cut.  Measured oversensitive at
    production window sizes (overlapping windows = massive multiple
    testing) — pair it with a dynamic policy instead; the repro of
    that finding lives in ``benchmarks/bench_triggers.py`` and is
    locked in by ``tests/core/test_triggers.py``.

    Args:
        windows: detection windows over credibility values.
        min_samples: smallest per-side sample count the test runs on.
    """

    name = "p_value"

    def __init__(self, windows: DetectionWindows, min_samples: int = 10):
        super().__init__(windows)
        if min_samples < 2:
            raise ConfigurationError(
                f"min_samples must be >= 2, got {min_samples}"
            )
        self.min_samples = int(min_samples)

    def update(self, observations: ObservationBatch) -> None:
        """Push this step's credibility values."""
        self.windows.push(observations.credibility)

    def ready(self) -> bool:
        """Both windows hold at least ``min_samples`` observations."""
        return (
            len(self.windows.current) >= self.min_samples
            and len(self.windows.reference) >= self.min_samples
        )

    def statistic(self) -> float:
        """The raw KS statistic between current and reference."""
        if not self.ready():
            return 0.0
        return _ks_statistic(self.windows.current, self.windows.reference)

    def p_value(self) -> float:
        """Asymptotic significance of the current KS statistic."""
        if not self.ready():
            return 1.0
        return _ks_p_value(
            self.statistic(),
            len(self.windows.current),
            len(self.windows.reference),
        )

    def metric(self) -> float:
        """``1 - p_value`` — higher means stronger drift evidence."""
        return 1.0 - self.p_value()


class AccuracyProxyDetector(DriftDetector):
    """Windowed expert-disagreement rate — a label-free accuracy proxy.

    A committee that stops being unanimous is losing accuracy before
    the rejection rate shows it (the leading indicator noted in
    :class:`~repro.core.report.DriftReport`); this detector makes that
    signal triggerable without oracle labels.
    """

    name = "accuracy_proxy"

    def update(self, observations: ObservationBatch) -> None:
        """Push this step's expert-split indicators."""
        self.windows.push(observations.disagreement)

    def metric(self) -> float:
        """Expert-disagreement rate over the current window."""
        current = self.windows.current
        if not current:
            return 0.0
        return sum(current) / len(current)


# -- decision policies -------------------------------------------------------------


class DriftDecisionPolicy(abc.ABC):
    """Condense a drift-metric series into fire/no-fire decisions.

    ``last_threshold`` always reports the effective threshold the most
    recent :meth:`decide` compared against, so dynamic policies stay
    observable per step.
    """

    def __init__(self):
        self.last_threshold = float("inf")

    @abc.abstractmethod
    def decide(self, metric: float) -> bool:
        """Whether this metric value fires the trigger."""

    def reset(self) -> None:
        """Drop adaptive state (called after accepted model updates)."""
        self.last_threshold = float("inf")

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the policy state."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""


class StaticThresholdPolicy(DriftDecisionPolicy):
    """Fire whenever the metric crosses a fixed threshold.

    The legacy policy (``metric >= threshold``); with
    :class:`PValueDetector` and ``threshold = 1 - alpha`` it is exactly
    a raw hypothesis test at significance ``alpha``.

    Args:
        threshold: fixed firing threshold, in ``(0, 1]``.
    """

    def __init__(self, threshold: float = 0.3):
        super().__init__()
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        self.threshold = float(threshold)
        self.last_threshold = self.threshold

    def decide(self, metric: float) -> bool:
        """``metric >= threshold``."""
        self.last_threshold = self.threshold
        return metric >= self.threshold

    def reset(self) -> None:
        """Stateless — nothing to drop."""
        self.last_threshold = self.threshold


class QuantileThresholdPolicy(DriftDecisionPolicy):
    """Fire when the metric exceeds a rolling quantile of its history.

    The dynamic threshold Modyn found robust where raw hypothesis
    testing is oversensitive: the policy calibrates itself to whatever
    the metric does on *this* deployment's stationary traffic and fires
    only on excursions above its recent ``quantile``.  Decisions start
    once half the history window has filled; the current metric is
    compared against history *excluding itself*, then recorded.

    Args:
        quantile: history quantile used as the threshold, in (0, 1).
        history: metric observations retained (>= 2).
    """

    def __init__(self, quantile: float = 0.95, history: int = 32):
        super().__init__()
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {quantile}"
            )
        if history < 2:
            raise ConfigurationError(f"history must be >= 2, got {history}")
        self.quantile = float(quantile)
        self.history = int(history)
        self._values = deque(maxlen=history)

    def decide(self, metric: float) -> bool:
        """``metric > quantile(history)`` once history is warm."""
        fired = False
        if len(self._values) >= max(1, self.history // 2):
            self.last_threshold = float(
                np.quantile(np.asarray(self._values, dtype=float), self.quantile)
            )
            fired = metric > self.last_threshold
        else:
            self.last_threshold = float("inf")
        self._values.append(float(metric))
        return fired

    def reset(self) -> None:
        """Drop the metric history (the distribution just changed)."""
        self._values.clear()
        self.last_threshold = float("inf")

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the policy state."""
        return {
            "values": list(self._values),
            "last_threshold": self.last_threshold,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._values = deque(
            (float(v) for v in state["values"]), maxlen=self.history
        )
        self.last_threshold = float(state["last_threshold"])


class EWMAThresholdPolicy(DriftDecisionPolicy):
    """Fire when the metric leaves an EWMA control band.

    Tracks an exponentially weighted mean and variance of the metric
    and fires on ``metric > mean + widen * std`` — the annealed-
    criterion shape: the band keeps adapting, so sustained level shifts
    fire once at onset instead of on every step.

    Args:
        alpha: EWMA smoothing factor, in (0, 1].
        widen: band width in EWMA standard deviations (>= 0).
        warm_steps: metric observations before decisions start.
    """

    def __init__(
        self, alpha: float = 0.3, widen: float = 2.0, warm_steps: int = 5
    ):
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if widen < 0.0:
            raise ConfigurationError(f"widen must be >= 0, got {widen}")
        if warm_steps < 1:
            raise ConfigurationError(
                f"warm_steps must be >= 1, got {warm_steps}"
            )
        self.alpha = float(alpha)
        self.widen = float(widen)
        self.warm_steps = int(warm_steps)
        self._n = 0
        self._mean = 0.0
        self._variance = 0.0

    def decide(self, metric: float) -> bool:
        """Band check against pre-update statistics, then fold in."""
        fired = False
        if self._n >= self.warm_steps:
            self.last_threshold = self._mean + self.widen * float(
                np.sqrt(self._variance)
            )
            fired = metric > self.last_threshold
        else:
            self.last_threshold = float("inf")
        delta = float(metric) - self._mean
        self._mean += self.alpha * delta
        self._variance = (1.0 - self.alpha) * (
            self._variance + self.alpha * delta * delta
        )
        self._n += 1
        return fired

    def reset(self) -> None:
        """Drop the control band (the distribution just changed)."""
        self._n = 0
        self._mean = 0.0
        self._variance = 0.0
        self.last_threshold = float("inf")

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the policy state."""
        return {
            "n": self._n,
            "mean": self._mean,
            "variance": self._variance,
            "last_threshold": self.last_threshold,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._n = int(state["n"])
        self._mean = float(state["mean"])
        self._variance = float(state["variance"])
        self.last_threshold = float(state["last_threshold"])


class HysteresisPolicy(DriftDecisionPolicy):
    """Fire at ``enter``; stay fired until the metric drops below ``exit``.

    Debounces a metric that oscillates around a single threshold: a
    trigger that entered the fired state keeps firing while the metric
    stays above the (lower) exit threshold, so the maintenance plane
    sees one sustained alarm instead of a flapping one.

    Args:
        enter: threshold that arms the alarm, in (0, 1].
        exit_below: threshold that disarms it (must be <= ``enter``).
    """

    def __init__(self, enter: float = 0.3, exit_below: float = 0.15):
        super().__init__()
        if not 0.0 < enter <= 1.0:
            raise ConfigurationError(f"enter must be in (0, 1], got {enter}")
        if not 0.0 <= exit_below <= enter:
            raise ConfigurationError(
                f"exit_below must be in [0, enter], got {exit_below}"
            )
        self.enter = float(enter)
        self.exit_below = float(exit_below)
        self._active = False

    def decide(self, metric: float) -> bool:
        """Two-threshold comparison with memory of the armed state."""
        self.last_threshold = self.exit_below if self._active else self.enter
        self._active = metric >= self.last_threshold
        return self._active

    def reset(self) -> None:
        """Disarm the alarm."""
        self._active = False
        self.last_threshold = self.enter

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the policy state."""
        return {"active": self._active, "last_threshold": self.last_threshold}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._active = bool(state["active"])
        self.last_threshold = float(state["last_threshold"])


class WarmupPolicy:
    """Minimum current-window fill before a trigger may fire.

    The legacy monitor required ``min(10, window)`` observed samples
    before alerting, and re-required them after every window reset;
    this object makes that rule explicit and swappable.

    Args:
        min_samples: smallest window fill that may fire (>= 0).
    """

    def __init__(self, min_samples: int = 10):
        if min_samples < 0:
            raise ConfigurationError(
                f"min_samples must be >= 0, got {min_samples}"
            )
        self.min_samples = int(min_samples)

    def ready(self, window_fill: int) -> bool:
        """Whether ``window_fill`` observations satisfy the warmup."""
        return window_fill >= self.min_samples


# -- triggers ----------------------------------------------------------------------


@dataclass(frozen=True)
class TriggerDecision:
    """One observe step's outcome for a trigger (or trigger stack).

    Attributes:
        fired: the combined fire/no-fire verdict.
        metric: the primary detector's metric value.
        threshold: the effective threshold it was compared against
            (``inf`` while the policy itself is still warming).
        detector: the primary detector's name.
        window_fill: current-window fill after this step.
        warmed: whether the warmup policy allowed firing.
        votes: per-trigger decisions when this is an ensemble verdict.
    """

    fired: bool
    metric: float
    threshold: float
    detector: str
    window_fill: int
    warmed: bool
    votes: tuple = ()


class DriftTrigger:
    """One assembled (windows, detector, policy, warmup) trigger unit.

    Args:
        detector: the :class:`DriftDetector` (owns its windows).
        policy: the :class:`DriftDecisionPolicy`.
        warmup: optional :class:`WarmupPolicy`; ``None`` fires as soon
            as the detector itself is ready.
        name: display name (defaults to the detector's).
    """

    def __init__(
        self,
        detector: DriftDetector,
        policy: DriftDecisionPolicy,
        warmup: WarmupPolicy | None = None,
        name: str | None = None,
    ):
        self.detector = detector
        self.policy = policy
        self.warmup = warmup
        self.name = name or detector.name

    def observe_batch(self, decisions) -> TriggerDecision:
        """Ingest one step's decisions and decide fire/no-fire.

        The policy sees the metric of every step (so dynamic thresholds
        calibrate during warmup too), but ``fired`` is masked until the
        detector is ready and the warmup is satisfied.
        """
        observations = ObservationBatch.from_decisions(decisions)
        self.detector.update(observations)
        metric = self.detector.metric()
        fill = len(self.detector.windows.current)
        warmed = self.detector.ready() and (
            self.warmup is None or self.warmup.ready(fill)
        )
        decided = self.policy.decide(metric)
        return TriggerDecision(
            fired=bool(decided and warmed),
            metric=float(metric),
            threshold=float(self.policy.last_threshold),
            detector=self.name,
            window_fill=fill,
            warmed=warmed,
        )

    def reset(self, lifetime: bool = False) -> None:
        """Clear window + policy state; ``lifetime=True`` re-warms fully."""
        self.detector.reset(reference=lifetime)
        self.policy.reset()

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of detector + policy state."""
        return {
            "name": self.name,
            "detector": self.detector.state_dict(),
            "policy": self.policy.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        if state.get("name") != self.name:
            raise ValidationError(
                f"trigger state is for {state.get('name')!r}, "
                f"this trigger is {self.name!r}"
            )
        self.detector.load_state_dict(state["detector"])
        self.policy.load_state_dict(state["policy"])


def _combine_votes(votes: tuple, ensemble: str) -> bool:
    """Any/all/majority combination of per-trigger verdicts."""
    fired = [vote.fired for vote in votes]
    if ensemble == "any":
        return any(fired)
    if ensemble == "all":
        return all(fired)
    return sum(fired) * 2 > len(fired)


class TriggerStack:
    """An ensemble of triggers behind the legacy monitor protocol.

    This is what the deployment loop holds: it exposes exactly the
    surface ``DriftMonitor`` exposed (``observe`` / ``observe_batch`` /
    ``rejection_rate`` / ``alert`` / ``lifetime_rejection_rate`` /
    ``reset``) plus trigger observability (:attr:`last_decision`),
    durability (:meth:`state_dict` / :meth:`load_state_dict`) and the
    cost-aware relabel budget (:meth:`relabel_budget`).  All entry
    points are serialized on one internal leaf lock, so serving threads
    may observe while a maintenance worker checkpoints the state.

    The stack always tracks the windowed rejection-rate flags itself
    (independent of which detectors are configured), so
    ``rejection_rate`` stays legacy-identical even for stacks built
    without a credibility detector.

    Args:
        triggers: the :class:`DriftTrigger` members (>= 1); the first
            is the *primary* whose metric/threshold the combined
            :class:`TriggerDecision` reports.
        ensemble: ``"any"`` / ``"all"`` / ``"majority"``.
        window: span of the stack's own rejection-rate flag window.
        budget_policy: optional :class:`CostAwareBudgetPolicy`.
    """

    def __init__(
        self,
        triggers,
        ensemble: str = "any",
        window: int = 100,
        budget_policy=None,
    ):
        triggers = tuple(triggers)
        if not triggers:
            raise ConfigurationError("TriggerStack needs at least one trigger")
        if ensemble not in ENSEMBLE_MODES:
            raise ConfigurationError(
                f"ensemble must be one of {ENSEMBLE_MODES}, got {ensemble!r}"
            )
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.triggers = triggers
        self.ensemble = ensemble
        self.window = int(window)
        self.budget_policy = budget_policy
        self._flags = deque(maxlen=window)
        self._total_seen = 0
        self._total_rejected = 0
        self._last = None
        self._lock = threading.RLock()

    def observe(self, decision) -> bool:
        """Record one decision; returns the current alert state."""
        return self.observe_batch([decision])

    def observe_batch(self, decisions) -> bool:
        """Record a batch of decisions; returns the current alert state."""
        observations = ObservationBatch.from_decisions(decisions)
        with self._lock:
            if len(observations) == 0:
                return self.alert
            self._ingest(observations)
            return self.alert

    def observe_stream_batch(self, decisions, raw=None, labels=None) -> bool:
        """The deployment-loop entry point.

        ``raw`` / ``labels`` carry routing context for per-shard stacks
        (:class:`PerShardTriggerStack`); the global stack ignores them,
        which keeps the two interchangeable at the call site.
        """
        return self.observe_batch(decisions)

    def _ingest(self, observations: ObservationBatch) -> None:
        """Update flags, counters and every member trigger (locked)."""
        self._flags.extend(observations.flags)
        self._total_seen += len(observations)
        self._total_rejected += sum(1 for f in observations.flags if f)
        votes = tuple(
            trigger.observe_batch(observations) for trigger in self.triggers
        )
        primary = votes[0]
        self._last = TriggerDecision(
            fired=_combine_votes(votes, self.ensemble),
            metric=primary.metric,
            threshold=primary.threshold,
            detector=primary.detector,
            window_fill=primary.window_fill,
            warmed=primary.warmed,
            votes=votes,
        )

    @property
    def last_decision(self) -> TriggerDecision | None:
        """The most recent combined decision (``None`` before/after reset)."""
        return self._last

    @property
    def rejection_rate(self) -> float:
        """Rejection rate over the stack's flag window (0 when empty)."""
        with self._lock:
            if not self._flags:
                return 0.0
            return sum(self._flags) / len(self._flags)

    @property
    def alert(self) -> bool:
        """Whether the most recent observe step fired the ensemble."""
        last = self._last
        return bool(last is not None and last.fired)

    @property
    def lifetime_rejection_rate(self) -> float:
        """Rejection rate since creation (survives window resets)."""
        with self._lock:
            if self._total_seen == 0:
                return 0.0
            return self._total_rejected / self._total_seen

    def relabel_budget(self, base_fraction: float) -> float:
        """The effective relabel budget for the last observed step.

        Pass-through of ``base_fraction`` unless a
        :class:`CostAwareBudgetPolicy` is attached — so the default
        stack's deployment behaviour is identical to the legacy loop.
        """
        with self._lock:
            if self.budget_policy is None:
                return base_fraction
            return self.budget_policy.budget(base_fraction, self._last)

    def reset(self, lifetime: bool = False) -> None:
        """Clear windows and policy state (e.g. after a model update).

        Mirrors the legacy contract: lifetime counters survive unless
        ``lifetime=True``, which re-warms everything deterministically
        (reference reservoirs re-seeded) so a fully reset stack is
        bit-identical to a fresh one.
        """
        with self._lock:
            self._flags.clear()
            self._last = None
            for trigger in self.triggers:
                trigger.reset(lifetime=lifetime)
            if lifetime:
                self._total_seen = 0
                self._total_rejected = 0

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the whole stack (DESIGN.md §7)."""
        with self._lock:
            return {
                "version": _STATE_VERSION,
                "kind": "stack",
                "window": self.window,
                "ensemble": self.ensemble,
                "flags": [int(f) for f in self._flags],
                "total_seen": self._total_seen,
                "total_rejected": self._total_rejected,
                "triggers": [t.state_dict() for t in self.triggers],
            }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this stack."""
        if state.get("version") != _STATE_VERSION or state.get("kind") != "stack":
            raise ValidationError(
                f"unsupported trigger state {state.get('kind')!r} "
                f"v{state.get('version')!r}"
            )
        if len(state.get("triggers", ())) != len(self.triggers):
            raise ValidationError(
                f"trigger state has {len(state.get('triggers', ()))} members, "
                f"this stack has {len(self.triggers)}"
            )
        with self._lock:
            self._flags = deque(
                (bool(f) for f in state["flags"]), maxlen=self.window
            )
            self._total_seen = int(state["total_seen"])
            self._total_rejected = int(state["total_rejected"])
            self._last = None
            for trigger, sub in zip(self.triggers, state["triggers"]):
                trigger.load_state_dict(sub)


class PerShardTriggerStack:
    """Per-shard trigger instances keyed off a shard router.

    Routes each observed sample to the shard that would store it and
    feeds that shard's own :class:`TriggerStack`, so drift localized to
    one shard fires without having to dominate the global window — the
    signal the drift-aware-eviction and adaptive-spill ROADMAP items
    consume.  The ensemble fires when any shard stack fires.

    Thread-safety: all observation and checkpoint entry points take one
    internal leaf lock, and routing reads the router *snapshot* this
    stack was constructed with — never the live, mutating shard state —
    so observing is safe while :class:`~repro.core.serving.AsyncServingLoop`
    maintenance churns the calibration shards.

    Args:
        factory: ``factory(shard_id) -> TriggerStack`` building one
            per-shard stack (seeds should derive from ``shard_id`` so
            the assembly is deterministic).
        router: a fitted :class:`~repro.core.sharding.ShardRouter`
            used to route observations (read-only).
        n_shards: shard count (stacks are built eagerly).
        featurizer: optional callable mapping raw inputs to routing
            features (``interface.feature_extraction``); used when
            ``observe_stream_batch`` receives ``raw`` without
            ``features``.
        window: span of the global rejection-rate flag window.
    """

    def __init__(
        self,
        factory,
        router,
        n_shards: int,
        featurizer=None,
        window: int = 100,
    ):
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.router = router
        self.n_shards = int(n_shards)
        self.featurizer = featurizer
        self.window = int(window)
        self.shard_stacks = tuple(factory(shard) for shard in range(n_shards))
        self._flags = deque(maxlen=window)
        self._total_seen = 0
        self._total_rejected = 0
        self._last = None
        self._fired_shards = ()
        self._lock = threading.RLock()

    def observe(self, decision) -> bool:
        """Record one decision (unrouted; lands on shard 0)."""
        return self.observe_batch([decision])

    def observe_batch(self, decisions) -> bool:
        """Record a batch without routing context (lands on shard 0)."""
        return self.observe_stream_batch(decisions)

    def observe_stream_batch(self, decisions, raw=None, labels=None) -> bool:
        """Route one batch's decisions to their shards and observe.

        ``raw`` is featurized through ``featurizer`` when no explicit
        features are derivable; without any routing context the whole
        batch lands on shard 0 (degraded but safe).  ``labels`` feeds
        label-keyed routers (the model's *predicted* labels at serving
        time, mirroring :class:`~repro.core.pruning.CandidatePruner`).
        """
        observations = ObservationBatch.from_decisions(decisions)
        if len(observations) == 0:
            return self.alert
        shard_ids = self._route(len(observations), raw, labels)
        with self._lock:
            self._flags.extend(observations.flags)
            self._total_seen += len(observations)
            self._total_rejected += sum(1 for f in observations.flags if f)
            votes = []
            fired_shards = []
            for shard in range(self.n_shards):
                indices = [
                    i for i, s in enumerate(shard_ids) if s == shard
                ]
                if not indices:
                    continue
                stack = self.shard_stacks[shard]
                stack.observe_batch(observations.select(indices))
                decision = stack.last_decision
                if decision is not None:
                    votes.append(decision)
                    if decision.fired:
                        fired_shards.append(shard)
            fired = bool(fired_shards)
            primary = max(votes, key=lambda v: v.metric) if votes else None
            self._fired_shards = tuple(fired_shards)
            self._last = TriggerDecision(
                fired=fired,
                metric=primary.metric if primary else 0.0,
                threshold=primary.threshold if primary else float("inf"),
                detector=primary.detector if primary else "",
                window_fill=primary.window_fill if primary else 0,
                warmed=bool(primary and primary.warmed),
                votes=tuple(votes),
            )
            return fired

    def _route(self, n: int, raw, labels) -> np.ndarray:
        """Shard assignment for ``n`` samples from the routing context."""
        if self.router is None or raw is None or self.featurizer is None:
            return np.zeros(n, dtype=int)
        features = self.featurizer(np.asarray(raw))
        routed = np.asarray(
            self.router.route(features, labels), dtype=int
        )
        return np.clip(routed, 0, self.n_shards - 1)

    @property
    def last_decision(self) -> TriggerDecision | None:
        """The most recent combined decision (max-metric shard primary)."""
        return self._last

    @property
    def fired_shards(self) -> tuple:
        """Shard ids whose stacks fired on the most recent step."""
        return self._fired_shards

    @property
    def rejection_rate(self) -> float:
        """Global rejection rate over the flag window (0 when empty)."""
        with self._lock:
            if not self._flags:
                return 0.0
            return sum(self._flags) / len(self._flags)

    @property
    def alert(self) -> bool:
        """Whether any shard stack fired on the most recent step."""
        last = self._last
        return bool(last is not None and last.fired)

    @property
    def lifetime_rejection_rate(self) -> float:
        """Global rejection rate since creation."""
        with self._lock:
            if self._total_seen == 0:
                return 0.0
            return self._total_rejected / self._total_seen

    def relabel_budget(self, base_fraction: float) -> float:
        """Delegate to the highest-severity fired shard's budget policy."""
        with self._lock:
            for shard in self._fired_shards:
                stack = self.shard_stacks[shard]
                if stack.budget_policy is not None:
                    return stack.budget_policy.budget(
                        base_fraction, stack.last_decision
                    )
            return base_fraction

    def reset(self, lifetime: bool = False) -> None:
        """Reset every shard stack plus the global window/counters."""
        with self._lock:
            self._flags.clear()
            self._last = None
            self._fired_shards = ()
            for stack in self.shard_stacks:
                stack.reset(lifetime=lifetime)
            if lifetime:
                self._total_seen = 0
                self._total_rejected = 0

    def state_dict(self) -> dict:
        """JSON-serializable snapshot across every shard stack."""
        with self._lock:
            return {
                "version": _STATE_VERSION,
                "kind": "per_shard",
                "window": self.window,
                "n_shards": self.n_shards,
                "flags": [int(f) for f in self._flags],
                "total_seen": self._total_seen,
                "total_rejected": self._total_rejected,
                "shards": [s.state_dict() for s in self.shard_stacks],
            }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this stack."""
        if (
            state.get("version") != _STATE_VERSION
            or state.get("kind") != "per_shard"
        ):
            raise ValidationError(
                f"unsupported trigger state {state.get('kind')!r} "
                f"v{state.get('version')!r}"
            )
        if state.get("n_shards") != self.n_shards:
            raise ValidationError(
                f"trigger state has {state.get('n_shards')} shards, "
                f"this stack has {self.n_shards}"
            )
        with self._lock:
            self._flags = deque(
                (bool(f) for f in state["flags"]), maxlen=self.window
            )
            self._total_seen = int(state["total_seen"])
            self._total_rejected = int(state["total_rejected"])
            self._last = None
            self._fired_shards = ()
            for stack, sub in zip(self.shard_stacks, state["shards"]):
                stack.load_state_dict(sub)


# -- cost-aware relabel budget -----------------------------------------------------


@dataclass(frozen=True)
class CoverageCostModel:
    """Expected decision-agreement loss as a function of prune spill.

    The default curve is the PR 8 coverage study
    (``BENCH_segment_eval.json: coverage_vs_spill``, cluster router —
    the worst measured case): agreement with the unpruned path at
    spill 0 / 0.25 / 0.5 / 1.0 under drift.  ``expected_loss`` is
    ``1 - agreement`` linearly interpolated over that curve.

    Attributes:
        spills: measured spill settings, ascending.
        agreement: measured agreement-with-unpruned at each spill.
    """

    spills: tuple = (0.0, 0.25, 0.5, 1.0)
    agreement: tuple = (0.55, 0.795, 0.915, 1.0)

    def __post_init__(self):
        if len(self.spills) != len(self.agreement) or len(self.spills) < 2:
            raise ConfigurationError(
                "spills and agreement must be equal-length (>= 2) curves"
            )
        if list(self.spills) != sorted(self.spills):
            raise ConfigurationError("spills must be ascending")

    def expected_loss(self, spill: float) -> float:
        """``1 - agreement`` interpolated at ``spill``, clipped to [0, 1]."""
        agreement = float(np.interp(spill, self.spills, self.agreement))
        return float(min(max(1.0 - agreement, 0.0), 1.0))


class CostAwareBudgetPolicy:
    """Scale the relabel budget by severity × expected coverage loss.

    When a trigger fires, the effective budget rises from the loop's
    base fraction toward ``ceiling``, scaled by the larger of (a) how
    far the metric overshot its threshold and (b) the expected
    coverage loss at the deployment's prune-spill setting — drifted
    traffic served under aggressive pruning has lost the most
    agreement (PR 8's study), so it earns the most oracle labels.
    Without a fire the base budget passes through untouched.

    Args:
        ceiling: largest budget fraction the policy may spend, (0, 1].
        cost_model: the agreement-vs-spill curve (PR 8 defaults).
        spill: the deployment's prune-spill setting, in [0, 1]
            (1.0 = exact mode, no expected coverage loss).
    """

    def __init__(
        self,
        ceiling: float = 0.25,
        cost_model: CoverageCostModel | None = None,
        spill: float = 1.0,
    ):
        if not 0.0 < ceiling <= 1.0:
            raise ConfigurationError(
                f"ceiling must be in (0, 1], got {ceiling}"
            )
        if not 0.0 <= spill <= 1.0:
            raise ConfigurationError(f"spill must be in [0, 1], got {spill}")
        self.ceiling = float(ceiling)
        self.cost_model = cost_model or CoverageCostModel()
        self.spill = float(spill)

    def budget(self, base_fraction: float, decision) -> float:
        """The effective budget fraction for one observed step."""
        if decision is None or not decision.fired:
            return base_fraction
        if base_fraction >= self.ceiling:
            return base_fraction
        threshold = decision.threshold
        if not np.isfinite(threshold):
            severity = 1.0
        else:
            span = max(threshold, 1.0 - threshold, 1e-12)
            severity = min(
                1.0, max(0.0, (decision.metric - threshold) / span)
            )
        loss = self.cost_model.expected_loss(self.spill)
        scale = max(severity, loss)
        return min(
            1.0, base_fraction + (self.ceiling - base_fraction) * scale
        )


# -- assembly ----------------------------------------------------------------------

_DETECTOR_NAMES = ("credibility", "p_value", "accuracy_proxy")
_POLICY_NAMES = ("static", "quantile", "ewma", "hysteresis")


def observe_decisions(monitor, decisions, raw=None, labels=None) -> bool:
    """Observe one batch through any monitor-protocol object.

    Trigger stacks take the routing-aware ``observe_stream_batch``
    path; legacy monitors (or user-supplied objects) fall back to
    ``observe_batch(decisions)``.  Returns the alert verdict either
    way — the single call site both the deployment loop and the async
    serving loop use.
    """
    observe = getattr(monitor, "observe_stream_batch", None)
    if observe is not None:
        return observe(decisions, raw=raw, labels=labels)
    return monitor.observe_batch(decisions)


def default_trigger_stack(
    window: int = 100, threshold: float = 0.3, seed: int = 0
) -> TriggerStack:
    """The legacy-equivalent stack: credibility + static threshold.

    One :class:`CredibilityDetector` over an amount window of
    ``window`` samples, a :class:`StaticThresholdPolicy` at
    ``threshold`` and the legacy warmup of ``min(10, window)`` —
    property-tested decision-identical to the historical
    ``DriftMonitor`` (``tests/core/test_triggers.py``).
    """
    detector = CredibilityDetector(
        DetectionWindows(size=window, mode="amount", seed=seed)
    )
    trigger = DriftTrigger(
        detector,
        StaticThresholdPolicy(threshold),
        warmup=WarmupPolicy(min(10, window)),
    )
    return TriggerStack((trigger,), ensemble="any", window=window)


def _build_policy(config) -> DriftDecisionPolicy:
    """One decision policy per the config's ``policy`` selector."""
    if config.policy == "static":
        return StaticThresholdPolicy(config.threshold)
    if config.policy == "quantile":
        return QuantileThresholdPolicy(config.quantile, config.history)
    if config.policy == "ewma":
        return EWMAThresholdPolicy(config.ewma_alpha, config.ewma_widen)
    if config.policy == "hysteresis":
        exit_below = (
            config.hysteresis_exit
            if config.hysteresis_exit is not None
            else config.threshold / 2.0
        )
        return HysteresisPolicy(config.threshold, exit_below)
    raise ConfigurationError(
        f"policy must be one of {_POLICY_NAMES}, got {config.policy!r}"
    )


def _build_detector(name: str, config, seed: int) -> DriftDetector:
    """One detector per the config, with its own seeded windows."""
    windows = DetectionWindows(
        size=config.window,
        mode=config.window_mode,
        reference_size=config.reference,
        seed=seed,
    )
    if name == "credibility":
        return CredibilityDetector(windows)
    if name == "p_value":
        return PValueDetector(windows)
    if name == "accuracy_proxy":
        return AccuracyProxyDetector(windows)
    raise ConfigurationError(
        f"detectors must be from {_DETECTOR_NAMES}, got {name!r}"
    )


def _build_single_stack(config, seed: int) -> TriggerStack:
    """One TriggerStack from a TriggerConfig (ignoring per_shard)."""
    warmup_samples = (
        config.warmup
        if config.warmup is not None
        else min(10, config.window)
    )
    triggers = tuple(
        DriftTrigger(
            _build_detector(name, config, seed + 31 * index),
            _build_policy(config),
            warmup=WarmupPolicy(warmup_samples),
        )
        for index, name in enumerate(config.detectors)
    )
    budget_policy = None
    if config.budget_ceiling is not None:
        budget_policy = CostAwareBudgetPolicy(
            ceiling=config.budget_ceiling, spill=config.spill
        )
    return TriggerStack(
        triggers,
        ensemble=config.ensemble,
        window=config.window,
        budget_policy=budget_policy,
    )


def build_trigger_stack(
    config, router=None, n_shards: int = 1, featurizer=None
):
    """Assemble the trigger stack a :class:`~repro.core.config.TriggerConfig` describes.

    Returns a :class:`TriggerStack`, or a :class:`PerShardTriggerStack`
    when ``config.per_shard`` is set and a router with more than one
    shard is available (per-shard mode silently degrades to the global
    stack otherwise — a single-store deployment has nothing to key on).
    Per-shard member stacks derive their reservoir seeds from
    ``config.seed`` and the shard id, so assembly is deterministic.
    """
    if config.per_shard and router is not None and n_shards > 1:
        return PerShardTriggerStack(
            factory=lambda shard: _build_single_stack(
                config, config.seed + 7919 * (shard + 1)
            ),
            router=router,
            n_shards=n_shards,
            featurizer=featurizer,
            window=config.window,
        )
    return _build_single_stack(config, config.seed)
