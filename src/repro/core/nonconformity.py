"""Nonconformity functions (paper Sec. 5.1.1 and the supplement).

A nonconformity function maps the underlying model's intermediate
output (class-probability vectors for classification, point predictions
for regression) to a scalar "strangeness" per sample: *larger score =
stranger*.  Prom ships the four classification functions from the paper
(LAC, Top-K, APS, RAPS) and two regression residual scores, all behind
one abstract interface so new functions drop in by subclassing.
"""

from __future__ import annotations

import abc

import numpy as np
from .exceptions import ConfigurationError, ValidationError


def _check_probabilities(probabilities) -> np.ndarray:
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim == 1:
        probs = probs.reshape(1, -1)
    if probs.ndim != 2:
        raise ValidationError(f"expected (n, n_classes) probabilities, got {probs.shape}")
    if np.any(probs < -1e-9):
        raise ValidationError("probabilities must be non-negative")
    return probs


class NonconformityFunction(abc.ABC):
    """Abstract base for classification nonconformity functions."""

    #: short name used in reports and committee vote summaries
    name: str = "base"

    #: which tail of the calibration score distribution signals
    #: strangeness.  ``"right"``: larger score = stranger (LAC, TopK).
    #: ``"both"``: scores unusually small OR large are strange — needed
    #: for cumulative-mass scores (APS, RAPS) whose value at the
    #: predicted label *shrinks* when the model is uncertain, so a
    #: drifted low-confidence prediction sits in the LEFT tail of a
    #: well-trained model's calibration scores.
    tail: str = "right"

    @abc.abstractmethod
    def score(self, probabilities, labels) -> np.ndarray:
        """Return per-sample nonconformity of ``labels`` under ``probabilities``.

        ``probabilities`` is ``(n, n_classes)``; ``labels`` is an
        integer array of class indices, one per row.  Higher scores mean
        the label conforms *less* with the model's output.
        """

    def score_all_labels(self, probabilities) -> np.ndarray:
        """Return the ``(n, n_classes)`` score of every candidate label.

        The generic implementation loops over candidate labels; the
        built-in functions override it with closed forms that score the
        whole batch in one broadcast (same values, no Python loop).
        """
        probs = _check_probabilities(probabilities)
        n, n_classes = probs.shape
        out = np.empty((n, n_classes))
        for label in range(n_classes):
            out[:, label] = self.score(probs, np.full(n, label))
        return out

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


class LAC(NonconformityFunction):
    """Least Ambiguous set-valued Classifier score: ``1 - p_label``."""

    name = "LAC"

    def score(self, probabilities, labels) -> np.ndarray:
        probs = _check_probabilities(probabilities)
        labels = np.asarray(labels, dtype=int)
        return 1.0 - probs[np.arange(len(probs)), labels]

    def score_all_labels(self, probabilities) -> np.ndarray:
        return 1.0 - _check_probabilities(probabilities)


def _strictly_higher_mask(probs: np.ndarray) -> np.ndarray:
    """``(n, n_classes, n_classes)`` mask: ``[i, c, j]`` = p_ij > p_ic.

    O(n * C^2) on purpose: it reproduces the per-label ``score()``
    reductions bit-for-bit (a sort-based O(n * C log C) form would
    reassociate the sums), and the evaluation chunker bounds ``n`` by
    the same ``C^2`` factor so the temporary stays within budget.
    """
    return probs[:, None, :] > probs[:, :, None]


class TopK(NonconformityFunction):
    """Rank of the label when classes are sorted by descending probability.

    The most probable class has score 1, the second 2, and so on —
    matching the supplement's Top-K definition.
    """

    name = "TopK"

    def score(self, probabilities, labels) -> np.ndarray:
        probs = _check_probabilities(probabilities)
        labels = np.asarray(labels, dtype=int)
        # rank = number of classes with strictly higher probability + 1.
        label_probs = probs[np.arange(len(probs)), labels]
        ranks = np.sum(probs > label_probs[:, None], axis=1) + 1
        return ranks.astype(float)

    def score_all_labels(self, probabilities) -> np.ndarray:
        probs = _check_probabilities(probabilities)
        ranks = _strictly_higher_mask(probs).sum(axis=2) + 1
        return ranks.astype(float)


class APS(NonconformityFunction):
    """Adaptive Prediction Sets score: cumulative probability mass.

    Sum of class probabilities from the most probable class down to and
    including the scored label.
    """

    name = "APS"
    tail = "both"

    def score(self, probabilities, labels) -> np.ndarray:
        probs = _check_probabilities(probabilities)
        labels = np.asarray(labels, dtype=int)
        label_probs = probs[np.arange(len(probs)), labels]
        above = probs * (probs > label_probs[:, None])
        return above.sum(axis=1) + label_probs

    def score_all_labels(self, probabilities) -> np.ndarray:
        probs = _check_probabilities(probabilities)
        above = (_strictly_higher_mask(probs) * probs[:, None, :]).sum(axis=2)
        return above + probs


class RAPS(NonconformityFunction):
    """Regularized APS: APS plus a rank penalty ``lambda * (k - k_reg)+``."""

    name = "RAPS"
    tail = "both"

    def __init__(self, lam: float = 0.05, k_reg: int = 1):
        if lam < 0:
            raise ConfigurationError("lam must be non-negative")
        if k_reg < 0:
            raise ConfigurationError("k_reg must be non-negative")
        self.lam = lam
        self.k_reg = k_reg

    def score(self, probabilities, labels) -> np.ndarray:
        probs = _check_probabilities(probabilities)
        labels = np.asarray(labels, dtype=int)
        label_probs = probs[np.arange(len(probs)), labels]
        above = probs * (probs > label_probs[:, None])
        aps = above.sum(axis=1) + label_probs
        ranks = np.sum(probs > label_probs[:, None], axis=1) + 1
        penalty = self.lam * np.clip(ranks - self.k_reg, 0, None)
        return aps + penalty

    def score_all_labels(self, probabilities) -> np.ndarray:
        probs = _check_probabilities(probabilities)
        higher = _strictly_higher_mask(probs)
        aps = (higher * probs[:, None, :]).sum(axis=2) + probs
        ranks = higher.sum(axis=2) + 1
        penalty = self.lam * np.clip(ranks - self.k_reg, 0, None)
        return aps + penalty

    def __repr__(self) -> str:
        return f"RAPS(lam={self.lam}, k_reg={self.k_reg})"


DEFAULT_CLASSIFICATION_FUNCTIONS = (LAC, TopK, APS, RAPS)


def default_classification_functions() -> list:
    """Return fresh instances of the paper's four default functions."""
    return [factory() for factory in DEFAULT_CLASSIFICATION_FUNCTIONS]


class RegressionScore(abc.ABC):
    """Abstract base for regression nonconformity scores.

    Regression scores compare a point prediction against a (possibly
    approximated) ground-truth value; higher = stranger.
    """

    name: str = "reg-base"

    @abc.abstractmethod
    def score(self, predictions, targets) -> np.ndarray:
        """Return per-sample nonconformity of predictions vs targets."""

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


class AbsoluteErrorScore(RegressionScore):
    """Plain absolute residual ``|y - y_hat|``."""

    name = "AbsErr"

    def score(self, predictions, targets) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        return np.abs(targets - predictions)


class NormalizedErrorScore(RegressionScore):
    """Residual normalized by the target magnitude.

    ``|y - y_hat| / (|y| + beta)`` — robust to tasks whose target spans
    orders of magnitude (e.g. schedule throughputs).
    """

    name = "NormErr"

    def __init__(self, beta: float = 1e-6):
        if beta <= 0:
            raise ConfigurationError("beta must be positive")
        self.beta = beta

    def score(self, predictions, targets) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        return np.abs(targets - predictions) / (np.abs(targets) + self.beta)

    def __repr__(self) -> str:
        return f"NormalizedErrorScore(beta={self.beta})"


class SquaredErrorScore(RegressionScore):
    """Squared residual ``(y - y_hat)^2`` — emphasizes large deviations."""

    name = "SqErr"

    def score(self, predictions, targets) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        return (targets - predictions) ** 2


def default_regression_scores() -> list:
    """Return fresh instances of the default regression score ensemble."""
    return [AbsoluteErrorScore(), NormalizedErrorScore(), SquaredErrorScore()]
