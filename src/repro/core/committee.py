"""The expert committee: majority voting over nonconformity functions.

Each nonconformity function is one "expert"; its accept/reject verdict
on a test sample is aggregated by majority vote (paper Sec. 5,
Figure 5).  Ties are resolved conservatively as *reject* so that an
evenly split committee asks for human verification rather than
silently trusting the prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .scores import ExpertAssessment


@dataclass(frozen=True)
class Decision:
    """The committee's aggregated verdict for one test sample.

    Attributes:
        accepted: final accept (True) / drifting (False) outcome.
        credibility: median credibility across experts.
        confidence: median confidence across experts.
        votes: the individual expert assessments.
    """

    accepted: bool
    credibility: float
    confidence: float
    votes: tuple = field(default_factory=tuple)

    @property
    def drifting(self) -> bool:
        """True when the committee flags this sample as drifting."""
        return not self.accepted


class ExpertCommittee:
    """Aggregates expert assessments by (configurable) majority vote.

    Args:
        vote_threshold: fraction of experts that must *accept* for the
            committee to accept; the default 0.5 with strict comparison
            implements "reject on ties" majority voting.
    """

    def __init__(self, vote_threshold: float = 0.5):
        if not 0.0 < vote_threshold <= 1.0:
            raise ValueError(f"vote_threshold must be in (0, 1], got {vote_threshold}")
        self.vote_threshold = vote_threshold

    def decide(self, assessments) -> Decision:
        """Combine per-expert assessments into one :class:`Decision`."""
        votes = tuple(assessments)
        if not votes:
            raise ValueError("committee needs at least one expert assessment")
        accepts = sum(1 for vote in votes if vote.accept)
        accepted = accepts > self.vote_threshold * len(votes)
        credibility = float(np.median([vote.credibility for vote in votes]))
        confidence = float(np.median([vote.confidence for vote in votes]))
        return Decision(
            accepted=accepted,
            credibility=credibility,
            confidence=confidence,
            votes=votes,
        )


def unanimous_assessment(assessments) -> Decision:
    """Ablation aggregator: accept only when every expert accepts."""
    votes = tuple(assessments)
    accepted = all(vote.accept for vote in votes)
    return Decision(
        accepted=accepted,
        credibility=float(np.median([vote.credibility for vote in votes])),
        confidence=float(np.median([vote.confidence for vote in votes])),
        votes=votes,
    )
