"""The expert committee: majority voting over nonconformity functions.

Each nonconformity function is one "expert"; its accept/reject verdict
on a test sample is aggregated by majority vote (paper Sec. 5,
Figure 5).  Ties are resolved conservatively as *reject* so that an
evenly split committee asks for human verification rather than
silently trusting the prediction.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from .scores import ExpertAssessment
from .exceptions import ConfigurationError, ValidationError


@dataclass(frozen=True)
class Decision:
    """The committee's aggregated verdict for one test sample.

    Attributes:
        accepted: final accept (True) / drifting (False) outcome.
        credibility: median credibility across experts.
        confidence: median confidence across experts.
        votes: the individual expert assessments.
    """

    accepted: bool
    credibility: float
    confidence: float
    votes: tuple = field(default_factory=tuple)

    @property
    def drifting(self) -> bool:
        """True when the committee flags this sample as drifting."""
        return not self.accepted


@dataclass(frozen=True)
class DecisionBatch(Sequence):
    """Committee verdicts for a whole batch in struct-of-arrays form.

    The batch-evaluation engine produces one of these per
    ``evaluate()`` call: per-sample data lives in flat arrays so
    downstream consumers (detection metrics, relabel budgeting, drift
    reports) operate with NumPy instead of object lists.  It is also a
    full :class:`~collections.abc.Sequence` of :class:`Decision` —
    indexing and iteration materialize per-sample objects on demand, so
    existing per-sample code keeps working unchanged.

    Attributes:
        accepted: ``(n,)`` final accept/reject outcomes.
        credibility / confidence: ``(n,)`` median scores across experts.
        expert_names: the committee's function names, outer axis of the
            per-expert arrays.
        expert_credibility / expert_confidence / expert_set_size /
            expert_accept: ``(n_experts, n)`` per-expert detail.
        n_candidates_scored / n_shards_pruned: whole-batch pruning
            observability (set by the shard-pruned evaluate path,
            ``None`` otherwise): total calibration rows in the test
            samples' candidate pools, and total shards those samples
            skipped.  Preserved by :meth:`take` (a permutation keeps
            the whole batch), summed by :meth:`concatenate`, dropped by
            slicing (a subset is no longer the whole batch).
    """

    accepted: np.ndarray
    credibility: np.ndarray
    confidence: np.ndarray
    expert_names: tuple
    expert_credibility: np.ndarray
    expert_confidence: np.ndarray
    expert_set_size: np.ndarray
    expert_accept: np.ndarray
    n_candidates_scored: int | None = None
    n_shards_pruned: int | None = None

    def __len__(self) -> int:
        return len(self.accepted)

    @property
    def drifting(self) -> np.ndarray:
        """``(n,)`` boolean mask of samples flagged as drifting."""
        return ~np.asarray(self.accepted, dtype=bool)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return DecisionBatch(
                accepted=self.accepted[index],
                credibility=self.credibility[index],
                confidence=self.confidence[index],
                expert_names=self.expert_names,
                expert_credibility=self.expert_credibility[:, index],
                expert_confidence=self.expert_confidence[:, index],
                expert_set_size=self.expert_set_size[:, index],
                expert_accept=self.expert_accept[:, index],
            )
        i = int(index)
        if i < -len(self) or i >= len(self):
            raise IndexError(f"decision index {index} out of range")
        votes = tuple(
            ExpertAssessment(
                function_name=name,
                credibility=float(self.expert_credibility[e, i]),
                confidence=float(self.expert_confidence[e, i]),
                prediction_set_size=int(self.expert_set_size[e, i]),
                accept=bool(self.expert_accept[e, i]),
            )
            for e, name in enumerate(self.expert_names)
        )
        return Decision(
            accepted=bool(self.accepted[i]),
            credibility=float(self.credibility[i]),
            confidence=float(self.confidence[i]),
            votes=votes,
        )

    def to_decisions(self) -> list:
        """Materialize the batch as a plain list of :class:`Decision`."""
        return [self[i] for i in range(len(self))]

    def take(self, indices) -> "DecisionBatch":
        """Gather batch rows into a new order (a permutation/gather).

        Used by the shard-pruned evaluate path to restore the caller's
        row order after grouping test samples by candidate shard; the
        whole-batch pruning counters are preserved.
        """
        indices = np.asarray(indices, dtype=int)
        return DecisionBatch(
            accepted=self.accepted[indices],
            credibility=self.credibility[indices],
            confidence=self.confidence[indices],
            expert_names=self.expert_names,
            expert_credibility=self.expert_credibility[:, indices],
            expert_confidence=self.expert_confidence[:, indices],
            expert_set_size=self.expert_set_size[:, indices],
            expert_accept=self.expert_accept[:, indices],
            n_candidates_scored=self.n_candidates_scored,
            n_shards_pruned=self.n_shards_pruned,
        )

    @classmethod
    def concatenate(cls, batches, expert_names=()) -> "DecisionBatch":
        """Stitch per-chunk batches back into one result.

        Pruning counters sum when every batch carries them and drop to
        ``None`` when any batch lacks them.
        """
        batches = list(batches)
        if not batches:
            n_experts = len(expert_names)
            return cls(
                accepted=np.zeros(0, dtype=bool),
                credibility=np.zeros(0),
                confidence=np.zeros(0),
                expert_names=tuple(expert_names),
                expert_credibility=np.zeros((n_experts, 0)),
                expert_confidence=np.zeros((n_experts, 0)),
                expert_set_size=np.zeros((n_experts, 0), dtype=int),
                expert_accept=np.zeros((n_experts, 0), dtype=bool),
            )
        return cls(
            accepted=np.concatenate([b.accepted for b in batches]),
            credibility=np.concatenate([b.credibility for b in batches]),
            confidence=np.concatenate([b.confidence for b in batches]),
            expert_names=batches[0].expert_names,
            expert_credibility=np.concatenate(
                [b.expert_credibility for b in batches], axis=1
            ),
            expert_confidence=np.concatenate(
                [b.expert_confidence for b in batches], axis=1
            ),
            expert_set_size=np.concatenate(
                [b.expert_set_size for b in batches], axis=1
            ),
            expert_accept=np.concatenate(
                [b.expert_accept for b in batches], axis=1
            ),
            n_candidates_scored=(
                sum(b.n_candidates_scored for b in batches)
                if all(b.n_candidates_scored is not None for b in batches)
                else None
            ),
            n_shards_pruned=(
                sum(b.n_shards_pruned for b in batches)
                if all(b.n_shards_pruned is not None for b in batches)
                else None
            ),
        )


class ExpertCommittee:
    """Aggregates expert assessments by (configurable) majority vote.

    Args:
        vote_threshold: fraction of experts that must *accept* for the
            committee to accept; the default 0.5 with strict comparison
            implements "reject on ties" majority voting.
    """

    def __init__(self, vote_threshold: float = 0.5):
        if not 0.0 < vote_threshold <= 1.0:
            raise ConfigurationError(f"vote_threshold must be in (0, 1], got {vote_threshold}")
        self.vote_threshold = vote_threshold

    def decide(self, assessments) -> Decision:
        """Combine per-expert assessments into one :class:`Decision`."""
        votes = tuple(assessments)
        if not votes:
            raise ValidationError("committee needs at least one expert assessment")
        accepts = sum(1 for vote in votes if vote.accept)
        accepted = accepts > self.vote_threshold * len(votes)
        credibility = float(np.median([vote.credibility for vote in votes]))
        confidence = float(np.median([vote.confidence for vote in votes]))
        return Decision(
            accepted=accepted,
            credibility=credibility,
            confidence=confidence,
            votes=votes,
        )

    def decide_batch(self, assessment_batches) -> DecisionBatch:
        """Vectorized :meth:`decide` over per-expert assessment batches.

        ``assessment_batches`` holds one
        :class:`~repro.core.scores.ExpertAssessmentBatch` per expert;
        the vote count, accept threshold, and median credibility and
        confidence are computed with array reductions for the whole
        batch at once.
        """
        batches = list(assessment_batches)
        if not batches:
            raise ValidationError("committee needs at least one expert assessment")
        accept_matrix = np.stack([np.asarray(b.accept, dtype=bool) for b in batches])
        accepts = accept_matrix.sum(axis=0)
        credibility_matrix = np.stack([b.credibility for b in batches])
        confidence_matrix = np.stack([b.confidence for b in batches])
        return DecisionBatch(
            accepted=accepts > self.vote_threshold * len(batches),
            credibility=np.median(credibility_matrix, axis=0),
            confidence=np.median(confidence_matrix, axis=0),
            expert_names=tuple(b.function_name for b in batches),
            expert_credibility=credibility_matrix,
            expert_confidence=confidence_matrix,
            expert_set_size=np.stack(
                [np.asarray(b.prediction_set_size, dtype=int) for b in batches]
            ),
            expert_accept=accept_matrix,
        )


def unanimous_assessment(assessments) -> Decision:
    """Ablation aggregator: accept only when every expert accepts."""
    votes = tuple(assessments)
    accepted = all(vote.accept for vote in votes)
    return Decision(
        accepted=accepted,
        credibility=float(np.median([vote.credibility for vote in votes])),
        confidence=float(np.median([vote.confidence for vote in votes])),
        votes=votes,
    )
