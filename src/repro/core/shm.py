"""Shared-memory export of segment blocks (DESIGN.md §10).

The compose layer (:mod:`repro.core.segments`) already holds detector
state as immutable, copy-on-write per-shard blocks, and the durability
layer (:mod:`repro.core.durability`) already proved the payoff of
content-addressing them: an untouched block is the *same object* and
therefore the same bytes, so it never needs to be written twice.  This
module applies the same two ideas to ``multiprocessing.shared_memory``
so evaluator *processes* can map the calibration state instead of
receiving copies:

* :class:`SharedSegmentArena` — the parent-side exporter.  Each block
  is copied once into a named shared-memory segment; the name embeds
  the PR 6 CRC fingerprint of the bytes, and an identity cache (the
  same ``same_fingerprint`` contract the checkpoint writer uses) makes
  re-exporting an untouched block free.  Segments are refcounted by
  the name tables that reference them and unlinked when the last
  table lets go — POSIX keeps the mapping alive for any worker still
  attached, so unlink-on-last-detach is safe mid-read.
* :class:`SegmentNameTable` — the publish primitive.  A publish writes
  the touched blocks' segments, then swaps one small pickled manifest
  (block names + shapes + dtypes) into the table's own shared-memory
  block: payload first, then a ``(version, length, crc32)`` header.
  A reader that lands inside the swap sees a CRC mismatch — the PR 6
  torn-manifest trick — and keeps serving its last good table.
* :class:`SegmentAttacher` — the worker-side importer.  Attaches
  blocks by name, maps them zero-copy
  (:func:`~repro.core.blocks.attach_block`) and keeps the mappings
  cached across table versions so a publish that reuses a block costs
  the worker nothing.

The ownership model is strictly single-writer: only the parent process
creates segments, publishes tables and unlinks; workers attach
read-only and never write a byte of shared state.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from .blocks import attach_block, export_block
from .exceptions import ConfigurationError, SharedSegmentError

#: name-table header: (version, payload length, payload crc32).  The
#: version is monotonically increasing and starts at 1 — a zero version
#: means "never published", which readers treat like a torn read.
_HEADER = struct.Struct("<QQI")


def _attach_untracked(name: str):
    """Attach an existing segment without resource-tracker registration.

    ``SharedMemory(name=...)`` *attachments* are registered with the
    resource tracker exactly like creations (bpo-39959, fixed only in
    3.13's ``track=False``), so a worker exiting would unlink segments
    the parent still owns — and with the tracker process shared across
    forked workers, N sibling attachments produce N-1 noisy KeyError
    tracebacks when their unregistrations race.  Only the creating
    arena may own cleanup (single-writer model), so attachments
    suppress the registration call outright; workers are
    single-threaded at attach time, which makes the swap safe.
    """
    register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = register


class BlockRef:
    """A picklable handle to one exported block.

    Carries everything a worker needs to map the block zero-copy: the
    shared-memory segment name, the array shape and the dtype string.
    Refs are value objects — equality and hashing follow the name, so
    manifests can be diffed and refcounted by name.
    """

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: tuple, dtype: str):
        self.name = name
        self.shape = tuple(shape)
        self.dtype = dtype

    def __reduce__(self):
        """Pickle as the constructor call (slots, no ``__dict__``)."""
        return (BlockRef, (self.name, self.shape, self.dtype))

    def __eq__(self, other) -> bool:
        return isinstance(other, BlockRef) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"BlockRef({self.name!r}, shape={self.shape}, dtype={self.dtype!r})"


class SharedSegmentArena:
    """Parent-side exporter of immutable blocks into named SHM segments.

    Args:
        prefix: name prefix for every segment this arena creates; must
            be unique per arena (the process pool derives it from the
            parent PID and a pool sequence number).

    :meth:`export` copies a block into a fresh segment — or returns the
    existing ref if the *same object* was exported before, the
    ``same_fingerprint`` identity contract — and :meth:`retain` /
    :meth:`release` refcount segments by the name tables referencing
    them, unlinking on last release.  Only the creating process may
    call any method; the class is not itself shared.
    """

    def __init__(self, prefix: str):
        if not prefix:
            raise ConfigurationError("arena prefix must be non-empty")
        self.prefix = prefix
        self._sequence = 0
        # name -> [shm, refcount]; the arena owns (created) every entry
        self._segments: dict = {}
        # id(block) -> (pinned block, ref): pinning the block object
        # keeps its id() from being legally reused by a new allocation
        self._by_block: dict = {}
        self.blocks_exported = 0
        self.blocks_reused = 0
        self.bytes_exported = 0
        self._closed = False

    def _require_open(self) -> None:
        if self._closed:
            raise SharedSegmentError("arena is closed")

    def export(self, block) -> BlockRef:
        """Export one immutable block, reusing the segment if unchanged.

        Returns a :class:`BlockRef`; the new segment starts with
        refcount zero, so the caller must :meth:`retain` it (normally
        via the name table it is about to publish) before releasing
        whatever previously pinned the block.
        """
        self._require_open()
        cached = self._by_block.get(id(block))
        if cached is not None:
            self.blocks_reused += 1
            return cached[1]
        source = export_block(block)
        crc = zlib.crc32(source.tobytes())
        self._sequence += 1
        name = f"{self.prefix}-{self._sequence:06d}-{crc:08x}"
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, source.nbytes)
            )
        except OSError as error:
            raise SharedSegmentError(
                f"could not create shared segment {name!r}: {error}"
            ) from error
        if source.nbytes:
            np.ndarray(
                source.shape, dtype=source.dtype, buffer=shm.buf
            )[...] = source
        ref = BlockRef(name, source.shape, source.dtype.str)
        self._segments[name] = [shm, 0]
        self._by_block[id(block)] = (block, ref)
        self.blocks_exported += 1
        self.bytes_exported += source.nbytes
        return ref

    def retain(self, refs) -> None:
        """Bump the refcount of every segment named by ``refs``."""
        self._require_open()
        for ref in refs:
            entry = self._segments.get(ref.name)
            if entry is None:
                raise SharedSegmentError(
                    f"retain of unknown segment {ref.name!r}"
                )
            entry[1] += 1

    def release(self, refs) -> None:
        """Drop one reference per ref; unlink segments reaching zero.

        POSIX semantics make the unlink safe while workers are still
        mapped: the segment disappears from the namespace immediately
        (a late attach fails, which readers treat as a torn table) but
        the physical pages live until the last mapping closes.
        """
        self._require_open()
        for ref in refs:
            entry = self._segments.get(ref.name)
            if entry is None:
                continue
            entry[1] -= 1
            if entry[1] <= 0:
                self._drop(ref.name)

    def _drop(self, name: str) -> None:
        entry = self._segments.pop(name, None)
        if entry is None:
            return
        shm = entry[0]
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup
            pass
        for block_id, (_, ref) in list(self._by_block.items()):
            if ref.name == name:
                del self._by_block[block_id]

    def __len__(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Unlink every live segment and refuse further exports."""
        if self._closed:
            return
        for name in list(self._segments):
            self._drop(name)
        self._by_block.clear()
        self._closed = True


class SegmentNameTable:
    """The atomically-swappable manifest block of a serving arena.

    One small shared-memory block holding a versioned, CRC-checksummed
    payload (the pickled bundle manifest).  The parent creates it with
    :meth:`create` and overwrites it in place on every publish; workers
    :meth:`attach` once and poll :meth:`version_hint` /
    :meth:`read` — a read that lands mid-swap fails its CRC and the
    worker keeps the last table it validated, which the single-writer
    model guarantees is still fully attached and mapped.
    """

    def __init__(self, shm, owner: bool):
        self._shm = shm
        self._owner = owner
        self._version = 0

    @classmethod
    def create(cls, name: str, capacity: int = 1 << 20) -> "SegmentNameTable":
        """Create the table block (parent side, once per pool)."""
        if capacity <= _HEADER.size:
            raise ConfigurationError(
                f"table capacity must exceed the {_HEADER.size}-byte header"
            )
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=capacity
            )
        except OSError as error:
            raise SharedSegmentError(
                f"could not create name table {name!r}: {error}"
            ) from error
        shm.buf[: _HEADER.size] = _HEADER.pack(0, 0, 0)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SegmentNameTable":
        """Attach an existing table block (worker side)."""
        try:
            shm = _attach_untracked(name)
        except OSError as error:
            raise SharedSegmentError(
                f"could not attach name table {name!r}: {error}"
            ) from error
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        """The shared-memory name workers attach by."""
        return self._shm.name

    @property
    def version(self) -> int:
        """The last version this side published (writer) or loaded."""
        return self._version

    def publish(self, payload: bytes) -> int:
        """Swap a new payload in; returns the new version.

        Payload bytes land first, the header last, so a concurrent
        reader sees either the old consistent table or a CRC mismatch —
        never a silently mixed one.
        """
        if not self._owner:
            raise SharedSegmentError("only the creating process may publish")
        if _HEADER.size + len(payload) > self._shm.size:
            raise SharedSegmentError(
                f"manifest payload of {len(payload)} bytes exceeds the "
                f"table capacity of {self._shm.size - _HEADER.size}"
            )
        self._version += 1
        self._shm.buf[_HEADER.size : _HEADER.size + len(payload)] = payload
        self._shm.buf[: _HEADER.size] = _HEADER.pack(
            self._version, len(payload), zlib.crc32(payload)
        )
        return self._version

    def version_hint(self) -> int:
        """A cheap, possibly-torn read of the current version word.

        Workers use it to skip the full payload read + CRC when nothing
        changed; any value it returns is re-validated by :meth:`read`
        before being acted on.
        """
        version, _, _ = _HEADER.unpack_from(self._shm.buf, 0)
        return version

    def read(self) -> tuple | None:
        """Validate and return ``(version, payload bytes)``.

        Returns ``None`` on a torn read (mid-swap CRC mismatch, or a
        table that was never published); the caller keeps its last good
        manifest.
        """
        version, length, crc = _HEADER.unpack_from(self._shm.buf, 0)
        if version == 0 or _HEADER.size + length > self._shm.size:
            return None
        payload = bytes(self._shm.buf[_HEADER.size : _HEADER.size + length])
        if zlib.crc32(payload) != crc:
            return None
        self._version = version
        return version, payload

    def close(self) -> None:
        """Close the mapping; the owner also unlinks the block."""
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


class SegmentAttacher:
    """Worker-side cache of mapped segments, keyed by segment name.

    :meth:`get` attaches and maps a block on first use and reuses the
    mapping afterwards, so across table versions a worker only ever
    maps the blocks a publish actually touched.  :meth:`sweep` drops
    mappings absent from the latest manifest; a mapping whose ndarray
    views are still referenced cannot be closed yet (``BufferError``)
    and parks on a zombie list retried at the next sweep.
    """

    def __init__(self):
        self._attached: dict = {}
        self._zombies: list = []

    def get(self, ref: BlockRef) -> np.ndarray:
        """The read-only mapped array for ``ref`` (zero copy)."""
        entry = self._attached.get(ref.name)
        if entry is None:
            try:
                shm = _attach_untracked(ref.name)
            except OSError as error:
                raise SharedSegmentError(
                    f"could not attach segment {ref.name!r}: {error}"
                ) from error
            array = attach_block(shm.buf, ref.shape, np.dtype(ref.dtype))
            entry = (shm, array)
            self._attached[ref.name] = entry
        return entry[1]

    def sweep(self, live_names) -> None:
        """Close mappings whose names are no longer referenced."""
        live = set(live_names)
        for name in list(self._attached):
            if name not in live:
                self._zombies.append(self._attached.pop(name))
        still_zombie = []
        for shm, array in self._zombies:
            try:
                shm.close()
            except BufferError:
                still_zombie.append((shm, array))
        self._zombies = still_zombie

    def close(self) -> None:
        """Best-effort close of every mapping (worker shutdown)."""
        self._zombies.extend(self._attached.values())
        self._attached.clear()
        for shm, _ in self._zombies:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views still alive
                pass
        self._zombies = []


def dumps_manifest(manifest: dict) -> bytes:
    """Pickle a manifest for a :meth:`SegmentNameTable.publish`."""
    return pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)


def loads_manifest(payload: bytes) -> dict:
    """The inverse of :func:`dumps_manifest` (worker side)."""
    return pickle.loads(payload)
