"""Conformal p-value computation (paper Eq. 2).

The p-value of a test sample for candidate label ``y`` compares the
test sample's nonconformity against the (selected, distance-weighted)
calibration samples with true label ``y``.  Two weighting modes are
provided:

* ``"count"`` (default) — weighted counting: each calibration sample
  contributes its distance weight to the vote,
  ``p = (sum of w_i where a_i >= a_test) / (sum of w_i + 1)``.
  This realizes the paper's intent ("giving higher weight to closer
  samples") with a weighted-conformal formulation that is robust for
  discrete scores such as Top-K.  The ``+1`` in the denominator is the
  test sample's own weight (``exp(0) = 1``); a test sample far from
  every calibration sample drives all ``w_i`` to zero and hence its
  p-value to zero — exactly the "alien input" signal Prom uses for
  drift detection.
* ``"multiply"`` — the paper's literal Eq. 2: adjust
  ``a_i' = w_i * a_i`` and count unweighted.  With the paper's
  ``tau = 500`` and small feature distances the two coincide; for
  large distances or discrete scores the multiplicative form deflates
  calibration scores and over-rejects, which is why counting is the
  default here (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from .weighting import CalibrationSubset

WEIGHT_MODES = ("count", "multiply")


def classification_pvalue(
    calibration_scores: np.ndarray,
    calibration_labels: np.ndarray,
    subset: CalibrationSubset,
    test_score: float,
    label: int,
    weight_mode: str = "count",
    tail: str = "right",
) -> float:
    """Return the weighted conformal p-value of ``label`` for one sample.

    Args:
        calibration_scores: per-calibration-sample nonconformity scores
            evaluated at each sample's *true* label (full array).
        calibration_labels: true label index of each calibration sample.
        subset: the adaptive selection/weights for this test sample.
        test_score: the test sample's nonconformity at ``label``.
        label: candidate label index.
        weight_mode: ``"count"`` or ``"multiply"`` (see module docs).
        tail: ``"right"`` — only larger calibration scores count as
            conforming evidence; ``"both"`` — two-sided p-value,
            ``min(1, 2 * min(p_right, p_left))``, for score functions
            whose strangeness shows in either tail (APS/RAPS).

    Returns:
        p-value in ``[0, 1]``; ``0.0`` when no selected calibration
        sample carries ``label`` (maximal strangeness — the label was
        never observed nearby).
    """
    if weight_mode not in WEIGHT_MODES:
        raise ValueError(f"weight_mode must be one of {WEIGHT_MODES}, got {weight_mode!r}")
    if tail not in ("right", "both"):
        raise ValueError(f"tail must be 'right' or 'both', got {tail!r}")
    selected_labels = np.asarray(calibration_labels)[subset.indices]
    mask = selected_labels == label
    if not mask.any():
        return 0.0
    scores = np.asarray(calibration_scores, dtype=float)[subset.indices][mask]
    weights = subset.weights[mask]
    if weight_mode == "count":
        right = float(np.sum(weights[scores >= test_score]))
        left = float(np.sum(weights[scores <= test_score]))
        denominator = float(np.sum(weights)) + 1.0
    else:
        adjusted = weights * scores
        right = float(np.sum(adjusted >= test_score))
        left = float(np.sum(adjusted <= test_score))
        denominator = float(mask.sum())
    if tail == "right":
        numerator = right
    else:
        numerator = 2.0 * min(right, left)
    return min(1.0, numerator / denominator)


def pvalues_all_labels(
    calibration_scores: np.ndarray,
    calibration_labels: np.ndarray,
    subset: CalibrationSubset,
    test_scores_per_label: np.ndarray,
    n_classes: int,
    weight_mode: str = "count",
    tail: str = "right",
) -> np.ndarray:
    """Return the p-value of every candidate label for one test sample.

    ``test_scores_per_label`` holds the test sample's nonconformity at
    each of the ``n_classes`` candidate labels.
    """
    return np.asarray(
        [
            classification_pvalue(
                calibration_scores,
                calibration_labels,
                subset,
                float(test_scores_per_label[label]),
                label,
                weight_mode=weight_mode,
                tail=tail,
            )
            for label in range(n_classes)
        ]
    )


def regression_pvalue(
    calibration_scores: np.ndarray,
    calibration_clusters: np.ndarray,
    subset: CalibrationSubset,
    test_score: float,
    cluster: int,
    weight_mode: str = "count",
) -> float:
    """Regression p-value: identical machinery over cluster pseudo-labels.

    Calibration scores are residual-based nonconformity values; the
    cluster assignment (K-means over calibration features, paper
    Sec. 5.1.2) plays the role of the class label.
    """
    return classification_pvalue(
        calibration_scores,
        calibration_clusters,
        subset,
        test_score,
        cluster,
        weight_mode=weight_mode,
    )
