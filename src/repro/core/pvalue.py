"""Conformal p-value computation (paper Eq. 2).

The p-value of a test sample for candidate label ``y`` compares the
test sample's nonconformity against the (selected, distance-weighted)
calibration samples with true label ``y``.  Two weighting modes are
provided:

* ``"count"`` (default) — weighted counting: each calibration sample
  contributes its distance weight to the vote,
  ``p = (sum of w_i where a_i >= a_test) / (sum of w_i + 1)``.
  This realizes the paper's intent ("giving higher weight to closer
  samples") with a weighted-conformal formulation that is robust for
  discrete scores such as Top-K.  The ``+1`` in the denominator is the
  test sample's own weight (``exp(0) = 1``); a test sample far from
  every calibration sample drives all ``w_i`` to zero and hence its
  p-value to zero — exactly the "alien input" signal Prom uses for
  drift detection.
* ``"multiply"`` — the paper's literal Eq. 2: adjust
  ``a_i' = w_i * a_i`` and count unweighted against the ``n + 1``
  denominator (the test sample counts itself).  With the paper's
  ``tau = 500`` and small feature distances the two coincide; for
  large distances or discrete scores the multiplicative form deflates
  calibration scores and over-rejects, which is why counting is the
  default here (see DESIGN.md).

Two implementations are provided: the scalar reference
(:func:`classification_pvalue` / :func:`pvalues_all_labels`, one test
sample at a time) and the batch engine
(:func:`group_scores_by_label` + :func:`pvalues_all_labels_batch`),
which evaluates all labels of all test samples with label-binned
weighted scatter-adds over a per-label-grouped calibration layout — see
DESIGN.md for the data layout and complexity bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocks import BlockColumn
from .weighting import CalibrationSubset, CalibrationSubsetBatch
from .exceptions import ConfigurationError, ValidationError

WEIGHT_MODES = ("count", "multiply")


def classification_pvalue(
    calibration_scores: np.ndarray,
    calibration_labels: np.ndarray,
    subset: CalibrationSubset,
    test_score: float,
    label: int,
    weight_mode: str = "count",
    tail: str = "right",
) -> float:
    """Return the weighted conformal p-value of ``label`` for one sample.

    Args:
        calibration_scores: per-calibration-sample nonconformity scores
            evaluated at each sample's *true* label (full array).
        calibration_labels: true label index of each calibration sample.
        subset: the adaptive selection/weights for this test sample.
        test_score: the test sample's nonconformity at ``label``.
        label: candidate label index.
        weight_mode: ``"count"`` or ``"multiply"`` (see module docs).
        tail: ``"right"`` — only larger calibration scores count as
            conforming evidence; ``"both"`` — two-sided p-value,
            ``min(1, 2 * min(p_right, p_left))``, for score functions
            whose strangeness shows in either tail (APS/RAPS).

    Returns:
        p-value in ``[0, 1]``; ``0.0`` when no selected calibration
        sample carries ``label`` (maximal strangeness — the label was
        never observed nearby).
    """
    if weight_mode not in WEIGHT_MODES:
        raise ConfigurationError(f"weight_mode must be one of {WEIGHT_MODES}, got {weight_mode!r}")
    if tail not in ("right", "both"):
        raise ConfigurationError(f"tail must be 'right' or 'both', got {tail!r}")
    selected_labels = np.asarray(calibration_labels)[subset.indices]
    mask = selected_labels == label
    if not mask.any():
        return 0.0
    scores = np.asarray(calibration_scores, dtype=float)[subset.indices][mask]
    weights = subset.weights[mask]
    if weight_mode == "count":
        right = float(np.sum(weights[scores >= test_score]))
        left = float(np.sum(weights[scores <= test_score]))
        denominator = float(np.sum(weights)) + 1.0
    else:
        adjusted = weights * scores
        right = float(np.sum(adjusted >= test_score))
        left = float(np.sum(adjusted <= test_score))
        # Eq. 2 counts the test sample itself in the denominator (n + 1).
        denominator = float(mask.sum()) + 1.0
    if tail == "right":
        numerator = right
    else:
        numerator = 2.0 * min(right, left)
    return min(1.0, numerator / denominator)


def pvalues_all_labels(
    calibration_scores: np.ndarray,
    calibration_labels: np.ndarray,
    subset: CalibrationSubset,
    test_scores_per_label: np.ndarray,
    n_classes: int,
    weight_mode: str = "count",
    tail: str = "right",
) -> np.ndarray:
    """Return the p-value of every candidate label for one test sample.

    ``test_scores_per_label`` holds the test sample's nonconformity at
    each of the ``n_classes`` candidate labels.
    """
    return np.asarray(
        [
            classification_pvalue(
                calibration_scores,
                calibration_labels,
                subset,
                float(test_scores_per_label[label]),
                label,
                weight_mode=weight_mode,
                tail=tail,
            )
            for label in range(n_classes)
        ]
    )


@dataclass(frozen=True)
class LabelGroupedScores:
    """Calibration scores pre-grouped by label for the batch engine.

    Built once per expert at ``calibrate()`` time.  The batch p-value
    kernel consumes the original-order ``scores``/``labels`` pair with
    one label-binned scatter-add per tail; ``group_counts`` records how
    many calibration samples each label group holds (zero for labels
    never observed, whose p-values are exactly 0).  See DESIGN.md for
    the kernel design and the alternatives that were measured.

    Attributes:
        scores: per-calibration-sample nonconformity scores (original
            calibration order).
        labels: true label index of each calibration sample, validated
            against ``n_labels``.
        group_counts: ``(n_labels,)`` calibration samples per label.
        n_labels: number of candidate labels.
    """

    scores: np.ndarray
    labels: np.ndarray
    group_counts: np.ndarray
    n_labels: int


def group_scores_by_label(
    calibration_scores: np.ndarray,
    calibration_labels: np.ndarray,
    n_labels: int,
) -> LabelGroupedScores:
    """Return the :class:`LabelGroupedScores` layout for one expert."""
    scores = np.asarray(calibration_scores, dtype=float).ravel()
    labels = np.asarray(calibration_labels, dtype=int).ravel()
    if scores.shape != labels.shape:
        raise ValidationError("calibration scores and labels must align")
    if len(labels) and (labels.min() < 0 or labels.max() >= n_labels):
        raise ValidationError("calibration label index out of range")
    return LabelGroupedScores(
        scores=scores,
        labels=labels,
        group_counts=np.bincount(labels, minlength=n_labels),
        n_labels=n_labels,
    )


def update_label_groups(
    layout: LabelGroupedScores,
    keep_mask: np.ndarray,
    new_scores: np.ndarray,
    new_labels: np.ndarray,
    order: np.ndarray | None = None,
) -> LabelGroupedScores:
    """Incremental counterpart of :func:`group_scores_by_label`.

    Carries one expert's layout across a calibration-store mutation:
    the combined layout is the existing calibration rows followed by
    the ``new`` batch, and ``keep_mask`` marks the survivors (see
    :class:`~repro.core.calibration_store.StoreUpdate`).  ``order``
    (``StoreUpdate.order``) gathers the survivors into the store's new
    exposed order — required for slot-reuse evictions, which permute
    survivors; when omitted the historical arrival-ordered
    ``keep_mask`` gather applies.  Group counts are adjusted
    arithmetically from the added and evicted labels — ``O(batch +
    n_labels)`` bookkeeping on top of the ``O(n)`` survivor copy — and
    the result is exactly what :func:`group_scores_by_label` would
    build from the surviving scores and labels in store order.
    """
    new_scores = np.asarray(new_scores, dtype=float).ravel()
    new_labels = np.asarray(new_labels, dtype=int).ravel()
    if new_scores.shape != new_labels.shape:
        raise ValidationError("new scores and labels must align")
    if len(new_labels) and (
        new_labels.min() < 0 or new_labels.max() >= layout.n_labels
    ):
        raise ValidationError("new calibration label index out of range")
    keep_mask = np.asarray(keep_mask, dtype=bool)
    if len(keep_mask) != len(layout.labels) + len(new_labels):
        raise ValidationError(
            f"keep_mask covers {len(keep_mask)} rows, combined layout has "
            f"{len(layout.labels) + len(new_labels)}"
        )
    gather = np.flatnonzero(keep_mask) if order is None else np.asarray(order)
    combined_labels = np.concatenate([layout.labels, new_labels])
    group_counts = (
        layout.group_counts
        + np.bincount(new_labels, minlength=layout.n_labels)
        - np.bincount(combined_labels[~keep_mask], minlength=layout.n_labels)
    )
    return LabelGroupedScores(
        scores=np.concatenate([layout.scores, new_scores])[gather],
        labels=combined_labels[gather],
        group_counts=group_counts,
        n_labels=layout.n_labels,
    )


def merge_group_counts(layouts, n_labels: int) -> np.ndarray:
    """Integer-exact global group counts from per-segment layouts.

    The compose half of the segment-aware streaming runtime
    (:mod:`repro.core.segments`): segment counts are non-negative
    integers, so their sum is exact and the composed counts equal what
    :func:`group_scores_by_label` would compute on the concatenated
    scores and labels — no floating-point drift, no ``O(n)`` rescan.

    Args:
        layouts: per-segment :class:`LabelGroupedScores`, all built for
            the same label space.
        n_labels: number of candidate labels.

    Returns:
        ``(n_labels,)`` summed group counts.

    Raises:
        ValueError: when a layout's label space disagrees with
            ``n_labels``.
    """
    counts = np.zeros(n_labels, dtype=np.int64)
    for layout in layouts:
        if layout.n_labels != n_labels:
            raise ValidationError(
                f"cannot merge a layout over {layout.n_labels} labels "
                f"into a {n_labels}-label composition"
            )
        counts = counts + layout.group_counts
    return counts


def _label_binned_sums(flat_bins, values, n_test, n_labels) -> np.ndarray:
    """Per-(test sample, label) sums via one scatter-add (bincount)."""
    return np.bincount(
        flat_bins, weights=values.ravel(), minlength=n_test * n_labels
    ).reshape(n_test, n_labels)


@dataclass(frozen=True)
class SubsetBinning:
    """Expert-independent bookkeeping for one evaluation batch.

    Every expert of a committee shares the same calibration selection,
    distance weights and true labels; only the score values differ.
    This structure is computed once per batch and reused across experts:
    the selected labels, the flattened (test sample, label) bin index of
    every selected calibration sample, and both denominators (weighted
    and unweighted per-bin totals, for the two weight modes).

    Attributes:
        indices / weights: the selection, as in
            :class:`~repro.core.weighting.CalibrationSubsetBatch`.
        selected_labels: true label of each selected sample.
        flat_bins: flattened scatter-add target bin of each selected
            sample (``row * n_labels + label``).
        weight_sums: ``(n_test, n_labels)`` sum of selected weights per
            bin — the ``"count"``-mode denominator before its ``+1``.
        counts: ``(n_test, n_labels)`` selected samples per bin — the
            ``"multiply"``-mode denominator before its ``+1``.
        n_labels: number of candidate labels.
    """

    indices: np.ndarray
    weights: np.ndarray
    selected_labels: np.ndarray
    flat_bins: np.ndarray
    weight_sums: np.ndarray
    counts: np.ndarray
    n_labels: int


def bin_subset_by_label(
    subset_batch: CalibrationSubsetBatch,
    calibration_labels: np.ndarray,
    n_labels: int,
) -> SubsetBinning:
    """Build the shared :class:`SubsetBinning` for one evaluation batch.

    ``calibration_labels`` may be a
    :class:`~repro.core.blocks.BlockColumn` of per-shard label blocks;
    the selection gather then iterates the blocks directly (a gather is
    exact, so the binning is bit-identical to the flat path).
    """
    indices = np.asarray(subset_batch.indices)
    weights = np.asarray(subset_batch.weights)
    if isinstance(calibration_labels, BlockColumn):
        selected_labels = np.asarray(calibration_labels[indices], dtype=int)
    else:
        selected_labels = np.asarray(calibration_labels, dtype=int)[indices]
    n_test = len(indices)
    rows = np.arange(n_test)[:, None]
    flat_bins = (rows * n_labels + selected_labels).ravel()
    return SubsetBinning(
        indices=indices,
        weights=weights,
        selected_labels=selected_labels,
        flat_bins=flat_bins,
        weight_sums=_label_binned_sums(flat_bins, weights, n_test, n_labels),
        counts=np.bincount(flat_bins, minlength=n_test * n_labels)
        .reshape(n_test, n_labels)
        .astype(float),
        n_labels=n_labels,
    )


def pvalues_from_binning(
    layout: LabelGroupedScores,
    binning: SubsetBinning,
    test_scores: np.ndarray,
    weight_mode: str = "count",
    tail: str = "right",
) -> np.ndarray:
    """One expert's ``(n_test, n_labels)`` p-values from shared binning.

    The hot path of the batch engine: gathers the expert's calibration
    scores at the selected positions, compares them against each
    sample's candidate-label threshold in one elementwise pass, and
    reduces the weighted tail sums with one label-binned scatter-add
    per tail.  Everything is ``O(n_test * k)`` time and memory — never
    the dense ``n_test * n_labels * k`` of per-label boolean masks.

    ``layout.scores`` may be a
    :class:`~repro.core.blocks.BlockColumn` (the segment-direct
    evaluation view); the score gather then iterates per-shard blocks
    with bit-identical results.
    """
    if weight_mode not in WEIGHT_MODES:
        raise ConfigurationError(f"weight_mode must be one of {WEIGHT_MODES}, got {weight_mode!r}")
    if tail not in ("right", "both"):
        raise ConfigurationError(f"tail must be 'right' or 'both', got {tail!r}")
    test_scores = np.asarray(test_scores, dtype=float)
    n_labels = layout.n_labels
    if test_scores.ndim != 2 or test_scores.shape[1] != n_labels:
        raise ValidationError(
            f"test_scores must be (n_test, {n_labels}), got {test_scores.shape}"
        )
    n_test = test_scores.shape[0]
    selected_scores = layout.scores[binning.indices]
    # Each selected sample competes for its own true label: its
    # comparison threshold is the test sample's score at that label.
    rows = np.arange(n_test)[:, None]
    thresholds = test_scores[rows, binning.selected_labels]

    if weight_mode == "count":
        compared = selected_scores >= thresholds
        compared = binning.weights * compared
        right = _label_binned_sums(binning.flat_bins, compared, n_test, n_labels)
        if tail == "both":
            compared_left = binning.weights * (selected_scores <= thresholds)
            left = _label_binned_sums(
                binning.flat_bins, compared_left, n_test, n_labels
            )
            numerators = 2.0 * np.minimum(right, left)
        else:
            numerators = right
        denominators = binning.weight_sums
    else:
        adjusted = binning.weights * selected_scores
        right = _label_binned_sums(
            binning.flat_bins, (adjusted >= thresholds).astype(float), n_test, n_labels
        )
        if tail == "both":
            left = _label_binned_sums(
                binning.flat_bins,
                (adjusted <= thresholds).astype(float),
                n_test,
                n_labels,
            )
            numerators = 2.0 * np.minimum(right, left)
        else:
            numerators = right
        denominators = binning.counts
    return np.minimum(1.0, numerators / (denominators + 1.0))


def pvalues_all_labels_batch(
    layout: LabelGroupedScores,
    subset_batch: CalibrationSubsetBatch,
    test_scores: np.ndarray,
    weight_mode: str = "count",
    tail: str = "right",
) -> np.ndarray:
    """Return the ``(n_test, n_labels)`` p-value matrix for a batch.

    Vectorized equivalent of calling :func:`pvalues_all_labels` per
    test sample.  Convenience wrapper over :func:`bin_subset_by_label`
    + :func:`pvalues_from_binning`; committee evaluation builds the
    binning once and shares it across experts instead.

    ``test_scores`` holds each test sample's nonconformity at every
    candidate label, shape ``(n_test, n_labels)``.
    """
    binning = bin_subset_by_label(subset_batch, layout.labels, layout.n_labels)
    return pvalues_from_binning(
        layout, binning, test_scores, weight_mode=weight_mode, tail=tail
    )


def regression_pvalue(
    calibration_scores: np.ndarray,
    calibration_clusters: np.ndarray,
    subset: CalibrationSubset,
    test_score: float,
    cluster: int,
    weight_mode: str = "count",
) -> float:
    """Regression p-value: identical machinery over cluster pseudo-labels.

    Calibration scores are residual-based nonconformity values; the
    cluster assignment (K-means over calibration features, paper
    Sec. 5.1.2) plays the role of the class label.
    """
    return classification_pvalue(
        calibration_scores,
        calibration_clusters,
        subset,
        test_score,
        cluster,
        weight_mode=weight_mode,
    )
