"""Initialization assessment and hyperparameter search (paper Sec. 5.2).

``coverage_assessment`` cross-validates the calibration set: it is
split R times (default 3) into an internal 80% calibration part and a
20% validation part; the Prom prediction region computed from the
internal calibration part should contain the true label of roughly
``1 - epsilon`` of the validation samples.  A deviation above the
tolerance (default 0.1) signals a poorly initialized framework.

``grid_search`` evaluates candidate parameter settings on a validation
split and returns the configuration maximizing drift-detection F1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from .metrics import coverage_deviation, detection_metrics
from .prom import PromClassifier
from .exceptions import ValidationError


@dataclass(frozen=True)
class CoverageReport:
    """Result of the initialization assessment."""

    coverage: float
    deviation: float
    epsilon: float
    per_round: tuple
    ok: bool

    def __str__(self) -> str:
        status = "ok" if self.ok else "ALERT: large deviation"
        return (
            f"coverage={self.coverage:.3f} target={1 - self.epsilon:.3f} "
            f"deviation={self.deviation:.3f} ({status})"
        )


def coverage_assessment(
    prom_factory,
    features,
    probabilities,
    labels,
    epsilon: float = 0.1,
    n_rounds: int = 3,
    validation_fraction: float = 0.2,
    tolerance: float = 0.1,
    seed: int = 0,
) -> CoverageReport:
    """Cross-validated coverage of the Prom prediction region (Eq. 3).

    Args:
        prom_factory: zero-argument callable returning a fresh,
            uncalibrated :class:`PromClassifier` (so each round gets an
            independent instance).
        features, probabilities, labels: the full calibration dataset.
        epsilon: significance parameter the region is built at.
        n_rounds: R in the paper (default 3).
        validation_fraction: internal validation share (default 20%).
        tolerance: maximum acceptable |coverage - (1 - epsilon)|.
    """
    features = np.asarray(features, dtype=float)
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels, dtype=int)
    n = len(features)
    if n < 5:
        raise ValidationError("need at least 5 calibration samples to assess coverage")
    rng = np.random.default_rng(seed)

    per_round = []
    for _ in range(n_rounds):
        order = rng.permutation(n)
        n_val = max(1, int(round(n * validation_fraction)))
        val_idx = order[:n_val]
        cal_idx = order[n_val:]
        prom = prom_factory()
        prom.epsilon = epsilon
        prom.calibrate(features[cal_idx], probabilities[cal_idx], labels[cal_idx])
        membership = prom.prediction_region_batch(
            features[val_idx], probabilities[val_idx]
        )
        val_labels = labels[val_idx]
        in_range = val_labels < membership.shape[1]
        hits = int(
            np.sum(membership[np.flatnonzero(in_range), val_labels[in_range]])
        )
        per_round.append(hits / n_val)

    coverage = float(np.mean(per_round))
    deviation = coverage_deviation(coverage, epsilon)
    return CoverageReport(
        coverage=coverage,
        deviation=deviation,
        epsilon=epsilon,
        per_round=tuple(per_round),
        ok=deviation <= tolerance,
    )


@dataclass(frozen=True)
class GridSearchResult:
    """Best parameters found by :func:`grid_search` and all trials."""

    best_params: dict
    best_f1: float
    trials: tuple


def grid_search(
    features,
    probabilities,
    labels,
    predictions,
    param_grid: dict | None = None,
    validation_fraction: float = 0.3,
    seed: int = 0,
    prom_factory=None,
) -> GridSearchResult:
    """Search Prom hyperparameters maximizing detection F1.

    The calibration data is split into an internal calibration and
    validation part; on the validation part the underlying model's
    mispredictions are known (``predictions`` vs ``labels``), so each
    candidate configuration can be scored with real detection F1.

    Args:
        param_grid: mapping of PromClassifier constructor argument
            names to candidate value lists.  Defaults to a small grid
            over epsilon and gaussian_scale.
        prom_factory: callable accepting the grid kwargs and returning
            an uncalibrated PromClassifier; defaults to PromClassifier.
    """
    if param_grid is None:
        param_grid = {"epsilon": [0.05, 0.1, 0.2], "gaussian_scale": [1.0, 2.0, 3.0]}
    if prom_factory is None:
        prom_factory = PromClassifier

    features = np.asarray(features, dtype=float)
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels, dtype=int)
    predictions = np.asarray(predictions, dtype=int)

    rng = np.random.default_rng(seed)
    order = rng.permutation(len(features))
    n_val = max(1, int(round(len(features) * validation_fraction)))
    val_idx = order[:n_val]
    cal_idx = order[n_val:]

    mispredicted = predictions[val_idx] != labels[val_idx]
    names = sorted(param_grid)
    trials = []
    best_f1 = -1.0
    best_params: dict = {}
    for combo in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, combo))
        prom = prom_factory(**params)
        prom.calibrate(features[cal_idx], probabilities[cal_idx], labels[cal_idx])
        decisions = prom.evaluate(
            features[val_idx], probabilities[val_idx], predictions[val_idx]
        )
        rejected = np.asarray(decisions.drifting)
        if mispredicted.any():
            f1 = detection_metrics(mispredicted, rejected).f1
        else:
            # No mispredictions to detect: prefer fewer false alarms.
            f1 = 1.0 - float(np.mean(rejected))
        trials.append((params, f1))
        if f1 > best_f1:
            best_f1 = f1
            best_params = params
    return GridSearchResult(best_params=best_params, best_f1=best_f1, trials=tuple(trials))
