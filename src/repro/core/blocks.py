"""Segment-direct GEMM kernels and block-column views (DESIGN.md §9).

The segment compose layer (:mod:`repro.core.segments`) holds detector
state as per-shard blocks and defers the ``O(n)`` flat concatenation
until a consumer asks for it.  Before this module, the *evaluate* path
was always such a consumer: one ``evaluate()`` after a mutation forced
the concat of every state column.  The kernels here remove that last
consumer — the distance GEMM, the row norms and every score/label
gather iterate the per-shard blocks directly, with results **bitwise
identical** to the flat single-array path.

Gathers and row norms are easy: a gather moves bytes without
arithmetic, and a squared row norm reduces each row independently, so
per-block results concatenated equal the flat results bitwise.  The
GEMM is not: BLAS picks different micro-kernels and reduction
associations depending on the operand shapes (measured on the container
OpenBLAS: splitting ``test @ cal.T`` along the calibration axis changes
low bits in shape-dependent, non-monotonic ways — e.g. 256- and
512-row column chunks reproduce the single GEMM while 448-row chunks
do not).  Chasing those heuristics is hopeless, so the kernel pins the
call sequence instead:

* the calibration axis is partitioned into **fixed panels** of
  :data:`PANEL_ROWS` rows by *global row index only* — the partition is
  a function of ``n``, never of the segmentation;
* both backends issue one GEMM per panel: the flat backend on
  contiguous view slices of the flat array, the segmented backend on
  contiguous view slices of a block when the panel lies inside one
  block, and on a gathered copy when it straddles a boundary;
* identical call sequences over value-identical contiguous operands
  produce identical bits — the same determinism the rest of the test
  suite already relies on when it compares detectors holding equal
  arrays in different buffers.

Below :data:`SEGMENT_DIRECT_MIN_ROWS` total rows the partition is a
single panel, i.e. exactly the historical one-GEMM call — small
calibration sets (most tier-1 tests) keep their old arithmetic and
speed bitwise.

Panels that straddle a block boundary are the only copies the
segmented backend ever makes, and :class:`BlockColumn` caches them —
keyed by the identity of the blocks they were gathered from — so a
publish that touches one shard re-gathers only the panels overlapping
that shard (`inherit_cache`), and a bundle whose flat array already
exists seeds every panel as a zero-copy view (`seed_flat`).
"""

from __future__ import annotations

import numpy as np

from .exceptions import ValidationError

#: rows per panel of the canonical calibration-axis GEMM partition.
#: Larger panels cost less per-call GEMM overhead but coarsen the
#: cache-repair granularity after a shard mutation; 1024 measured ~7%
#: over the single GEMM at single-sample batches on the container BLAS.
PANEL_ROWS = 1024

#: below this many total calibration rows the canonical partition is a
#: single panel — the historical one-GEMM call — so small sets keep
#: their exact arithmetic and the segmented backend falls back to flat
#: materialization instead of panel iteration.
SEGMENT_DIRECT_MIN_ROWS = 2048

#: memoized result of the one-time runtime probe (None = not probed).
_PROBE_RESULT: bool | None = None


def panel_bounds(n: int) -> tuple:
    """The canonical ``(start, stop)`` panel partition of ``n`` rows.

    A function of ``n`` alone — both the flat and the segmented GEMM
    backends must issue exactly one GEMM per entry for their results to
    be interchangeable bitwise.
    """
    if n <= 0:
        return ()
    if n < SEGMENT_DIRECT_MIN_ROWS:
        return ((0, n),)
    return tuple(
        (c0, min(c0 + PANEL_ROWS, n)) for c0 in range(0, n, PANEL_ROWS)
    )


def flat_panels(array: np.ndarray) -> list:
    """``(start, panel_view)`` pairs of a flat calibration array."""
    return [(c0, array[c0:c1]) for c0, c1 in panel_bounds(len(array))]


def panel_product(test_rows: np.ndarray, panels, n_columns: int) -> np.ndarray:
    """``test_rows @ concat(panels).T`` as one GEMM per canonical panel.

    ``panels`` is the ``(start, rows)`` list from :func:`flat_panels`
    or :meth:`BlockColumn.panels`; results are bitwise interchangeable
    between the two backends because the call sequence is identical and
    panel values are equal.
    """
    out = np.empty((len(test_rows), n_columns))
    for c0, panel in panels:
        out[:, c0 : c0 + len(panel)] = test_rows @ panel.T
    return out


class BlockColumn:
    """Virtual concatenation of per-shard blocks for one state column.

    The evaluate kernels' view of a segmented calibration column: it
    answers ``len``, ``shape``, integer-array indexing (a gather, which
    is exact — no floating-point arithmetic), canonical GEMM panels and
    cached row norms without ever materializing the flat concatenation.
    Blocks follow the compose layer's copy-on-write contract and are
    never mutated.

    The panel and norm caches only ever hold entries whose blocks are
    segments of this column (``inherit_cache`` filters by block
    identity), so ``id()``-based keys cannot dangle: every keyed block
    is pinned by the ``segments`` tuple for the cache's lifetime.
    """

    __slots__ = (
        "segments",
        "_starts",
        "_bounds",
        "_length",
        "_panel_map",
        "_panels",
        "_norm_map",
        "_norms",
        "_gather_flat",
    )

    def __init__(self, segments):
        self.segments = tuple(segments)
        if not self.segments:
            raise ValidationError("BlockColumn needs at least one segment")
        sizes = np.fromiter(
            (len(segment) for segment in self.segments),
            dtype=np.int64,
            count=len(self.segments),
        )
        self._bounds = np.cumsum(sizes)
        self._starts = self._bounds - sizes
        self._length = int(self._bounds[-1])
        self._panel_map: dict = {}
        self._panels = None
        self._norm_map: dict = {}
        self._norms = None
        self._gather_flat = None

    def __len__(self) -> int:
        return self._length

    @property
    def trailing_shape(self) -> tuple:
        """Per-row shape of the column (``()`` for scalar columns)."""
        return self.segments[0].shape[1:]

    @property
    def shape(self) -> tuple:
        return (self._length,) + self.trailing_shape

    @property
    def ndim(self) -> int:
        return 1 + len(self.trailing_shape)

    @property
    def dtype(self):
        return self.segments[0].dtype

    def restrict(self, positions) -> "BlockColumn":
        """A new column over the block subset at ``positions`` (in order)."""
        return BlockColumn(tuple(self.segments[p] for p in positions))

    def gather_base(self) -> np.ndarray:
        """The cached flat gather base of a *scalar* column.

        Labels, per-expert scores and regression targets are one value
        per row, so their flat concatenation is tiny next to the
        feature matrix (``1/d`` of it) — cheaper to build once than to
        pay the searchsorted-and-scatter gather loop on every evaluate.
        The feature column never takes this path: its ``O(n x d)``
        concat is exactly the deferred cost the segment-direct kernels
        exist to avoid, and it is consumed through :meth:`panels`, not
        through gathers.
        """
        if self._gather_flat is None:
            self._gather_flat = np.concatenate(self.segments)
        return self._gather_flat

    def __getitem__(self, rows) -> np.ndarray:
        """Gather global rows; an integer array of any shape is accepted.

        Bit-identical to indexing the flat concatenation (gathers move
        bytes, they never do arithmetic); negative indices wrap like
        NumPy's.  Scalar columns gather from :meth:`gather_base`, which
        is the same bytes by construction.
        """
        if len(self.segments) == 1:
            return self.segments[0][rows]
        if not self.trailing_shape:
            return self.gather_base()[rows]
        rows = np.asarray(rows)
        flat_rows = rows.reshape(-1).astype(np.int64, copy=False)
        if flat_rows.size:
            flat_rows = np.where(flat_rows < 0, flat_rows + self._length, flat_rows)
            if flat_rows.min() < 0 or flat_rows.max() >= self._length:
                raise IndexError(
                    f"row index out of range for {self._length} segmented rows"
                )
        out = np.empty(
            (flat_rows.size,) + self.trailing_shape, dtype=self.dtype
        )
        owners = np.searchsorted(self._bounds, flat_rows, side="right")
        for index, segment in enumerate(self.segments):
            mask = owners == index
            if mask.any():
                out[mask] = segment[flat_rows[mask] - self._starts[index]]
        return out.reshape(rows.shape + self.trailing_shape)

    def _panel_parts(self, c0: int, c1: int):
        """Yield ``(block_index, local_start, local_stop)`` covering ``[c0, c1)``."""
        first = int(np.searchsorted(self._bounds, c0, side="right"))
        for index in range(first, len(self.segments)):
            start = int(self._starts[index])
            if start >= c1:
                break
            stop = int(self._bounds[index])
            if stop <= c0:
                continue
            yield index, max(c0, start) - start, min(c1, stop) - start

    def _panel_key(self, c0: int, c1: int) -> tuple:
        """Cache key of panel ``[c0, c1)``: the block slices composing it."""
        return tuple(
            (id(self.segments[index]), a, b)
            for index, a, b in self._panel_parts(c0, c1)
        )

    def panels(self) -> list:
        """``(start, rows)`` pairs of the canonical GEMM partition.

        Panels inside one block are zero-copy views; panels straddling
        a boundary are gathered once and cached by block identity, so
        repeated evaluates — and, via :meth:`inherit_cache`, bundles
        that share blocks with a predecessor — never re-gather them.
        """
        if self._panels is None:
            panels = []
            for c0, c1 in panel_bounds(self._length):
                key = self._panel_key(c0, c1)
                panel = self._panel_map.get(key)
                if panel is None:
                    parts = [
                        self.segments[index][a:b]
                        for index, a, b in self._panel_parts(c0, c1)
                    ]
                    panel = parts[0] if len(parts) == 1 else np.concatenate(parts)
                    self._panel_map[key] = panel
                panels.append((c0, panel))
            self._panels = panels
        return self._panels

    def row_norms(self) -> np.ndarray:
        """Concatenated per-block squared row norms, bit-identical to flat.

        ``np.einsum("ij,ij->i", ...)`` reduces each row independently,
        so per-block norms concatenated equal the flat einsum bitwise
        (verified by the runtime probe alongside the GEMM partition).
        Cached per block, inheritable across bundles.
        """
        if self._norms is None:
            parts = []
            for block in self.segments:
                norms = self._norm_map.get(id(block))
                if norms is None:
                    norms = np.einsum("ij,ij->i", block, block)
                    self._norm_map[id(block)] = norms
                parts.append(norms)
            self._norms = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return self._norms

    def seed_flat(self, flat: np.ndarray | None) -> None:
        """Seed the panel cache with zero-copy views of the flat array.

        Used when the column's flat concatenation already exists (a
        fresh full calibration): every canonical panel is then a view
        slice, so the first segment-direct evaluate copies nothing.
        """
        if flat is None or len(flat) != self._length:
            return
        for c0, c1 in panel_bounds(self._length):
            self._panel_map.setdefault(self._panel_key(c0, c1), flat[c0:c1])

    def inherit_cache(self, previous: "BlockColumn | None") -> None:
        """Adopt a predecessor column's caches for blocks still present.

        Entries are filtered by block identity against this column's
        segments, so only panels/norms whose every underlying block
        survived the mutation carry over — exactly the panels a publish
        did not touch.  Stale entries are dropped here, which also
        unpins the predecessor's dead blocks.
        """
        if previous is None:
            return
        live = set(map(id, self.segments))
        # list() snapshots the dicts atomically (CPython): the
        # predecessor's owner may be a decision thread still inserting
        # panels while a maintenance thread prewarms this column
        for key, panel in list(previous._panel_map.items()):
            if all(part[0] in live for part in key):
                self._panel_map.setdefault(key, panel)
        for block_id, norms in list(previous._norm_map.items()):
            if block_id in live:
                self._norm_map.setdefault(block_id, norms)


def export_block(block) -> np.ndarray:
    """A C-contiguous ndarray with ``block``'s bytes, ready for export.

    The shared-memory arena (:mod:`repro.core.shm`) copies a block into
    a mapped buffer with one ``memcpy``; that needs a contiguous source.
    Compose-layer blocks are already contiguous copies, so this is a
    no-copy pass-through on the hot path — the copy only happens for a
    sliced/strided array handed in by a caller outside the compose
    discipline.
    """
    return np.ascontiguousarray(block)


def attach_block(buffer, shape, dtype) -> np.ndarray:
    """A read-only ndarray view over a mapped shared-memory buffer.

    The inverse of :func:`export_block` on the worker side: zero-copy
    (``np.ndarray(buffer=...)`` maps the bytes in place) and marked
    non-writeable so the single-writer contract — only the parent
    process mutates, and it only ever *creates* blocks, never rewrites
    one — cannot be broken by accident in an evaluator process.
    """
    array = np.ndarray(shape, dtype=dtype, buffer=buffer)
    array.flags.writeable = False
    return array


def _probe() -> bool:
    """Validate panel-kernel interchangeability on the local BLAS."""
    rng = np.random.default_rng(1234)
    for n, d, m, n_segments in ((2051, 7, 3, 5), (3072, 48, 17, 4), (2048, 33, 2, 9)):
        calibration = rng.standard_normal((n, d))
        test = rng.standard_normal((m, d))
        cuts = np.sort(
            rng.choice(np.arange(1, n), size=n_segments - 1, replace=False)
        )
        bounds = np.concatenate([[0], cuts, [n]])
        column = BlockColumn(
            [
                calibration[int(a) : int(b)].copy()
                for a, b in zip(bounds[:-1], bounds[1:])
            ]
        )
        flat = panel_product(test, flat_panels(calibration), n)
        if not np.array_equal(flat, panel_product(test, column.panels(), n)):
            return False
        if not np.array_equal(
            np.einsum("ij,ij->i", calibration, calibration), column.row_norms()
        ):
            return False
    return True


def segment_direct_supported() -> bool:
    """Whether the local BLAS keeps the two panel backends bit-identical.

    By construction they issue identical GEMM call sequences on
    value-identical contiguous operands, so this should hold on any
    deterministic BLAS; the probe (a few small GEMMs, run once per
    process and memoized) is the safety net for an exotic one —
    ``False`` makes every segment-direct consumer fall back to flat
    materialization, which is trivially bit-identical.
    """
    global _PROBE_RESULT
    if _PROBE_RESULT is None:
        _PROBE_RESULT = _probe()
    return _PROBE_RESULT
