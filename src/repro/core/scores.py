"""Credibility and confidence evaluation (paper Sec. 5.3).

* **Credibility** of a prediction is the conformal p-value of the
  predicted label — high when the test sample resembles calibration
  samples that carry the same label.
* **Confidence** is a Gaussian function of the prediction-set size,
  ``f(x) = exp(-(x - 1)^2 / (2 c^2))``: exactly one conforming label is
  the ideal; an empty set (no label conforms) or many conforming labels
  (ambiguity) both lower confidence.

Position in the evaluation pipeline (see README architecture map): the
p-value kernels of :mod:`repro.core.pvalue` reduce each test batch to a
``(n_test, n_labels)`` p-value matrix per expert — computed against the
calibration state the streaming runtime maintains (flat arrays, or the
lazily materialized segment composition of :mod:`repro.core.segments`);
:func:`assess_batch` turns each matrix into per-expert verdicts, which
:mod:`repro.core.committee` then votes into decisions.  This module is
deliberately state-free: it only ever sees p-values, so it is identical
across the batch, streaming, sharded and async-serving paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from .exceptions import ConfigurationError


def prediction_set(pvalues: np.ndarray, epsilon: float) -> np.ndarray:
    """Return the label indices whose p-value exceeds ``epsilon``.

    This is the standard CP prediction region at significance level
    ``1 - epsilon``: labels that cannot be rejected at level epsilon.
    """
    pvalues = np.asarray(pvalues, dtype=float)
    return np.flatnonzero(pvalues > epsilon)


def confidence_from_set_size(set_size: int, gaussian_scale: float = 1.0) -> float:
    """Map a prediction-set size to a confidence score in ``(0, 1]``.

    ``gaussian_scale`` is the constant ``c`` of the paper's Gaussian;
    the paper discusses c in 1..4 (Fig. 13(c)).  We default to ``c=1``
    because with small label spaces (binary tasks) larger scales make
    the confidence score insensitive to set size; the paper's own
    sensitivity analysis covers the same trade-off.
    """
    if gaussian_scale <= 0:
        raise ConfigurationError("gaussian_scale must be positive")
    return float(np.exp(-((set_size - 1.0) ** 2) / (2.0 * gaussian_scale**2)))


@dataclass(frozen=True)
class ExpertAssessment:
    """One nonconformity function's verdict on one test sample."""

    function_name: str
    credibility: float
    confidence: float
    prediction_set_size: int
    accept: bool


@dataclass(frozen=True)
class ExpertAssessmentBatch:
    """One nonconformity function's verdicts on a batch of test samples.

    Struct-of-arrays counterpart of :class:`ExpertAssessment`: each
    field holds one ``(n_test,)`` array so the committee can vote with
    array operations instead of per-sample Python objects.
    """

    function_name: str
    credibility: np.ndarray
    confidence: np.ndarray
    prediction_set_size: np.ndarray
    accept: np.ndarray

    def __len__(self) -> int:
        return len(self.credibility)

    def sample(self, i: int) -> ExpertAssessment:
        """Return the ``i``-th test sample's verdict as a scalar object."""
        return ExpertAssessment(
            function_name=self.function_name,
            credibility=float(self.credibility[i]),
            confidence=float(self.confidence[i]),
            prediction_set_size=int(self.prediction_set_size[i]),
            accept=bool(self.accept[i]),
        )


def assess(
    pvalues: np.ndarray,
    predicted_label: int,
    epsilon: float,
    gaussian_scale: float = 1.0,
    credibility_threshold: float | None = None,
    confidence_threshold: float = 0.9,
    require_predicted_in_set: bool = True,
    function_name: str = "",
) -> ExpertAssessment:
    """Produce one expert's accept/reject verdict for one test sample.

    A sample is flagged as drifting when *both* scores fall below their
    thresholds (paper Sec. 5.3): credibility below
    ``credibility_threshold`` (default: epsilon) and confidence below
    ``confidence_threshold``.

    When ``require_predicted_in_set`` is true (default), a prediction
    region that does not contain the predicted label provides no
    endorsement: the effective set size for the confidence score is
    then 0, so a conforming-looking singleton around a *different*
    label cannot vouch for the model's actual output.
    """
    if credibility_threshold is None:
        credibility_threshold = epsilon
    pvalues = np.asarray(pvalues, dtype=float)
    credibility = float(pvalues[predicted_label])
    region = prediction_set(pvalues, epsilon)
    effective_size = len(region)
    if require_predicted_in_set and predicted_label not in region:
        effective_size = 0
    confidence = confidence_from_set_size(effective_size, gaussian_scale)
    reject = credibility < credibility_threshold and confidence < confidence_threshold
    return ExpertAssessment(
        function_name=function_name,
        credibility=credibility,
        confidence=confidence,
        prediction_set_size=len(region),
        accept=not reject,
    )


def assess_batch(
    pvalues: np.ndarray,
    predicted_labels: np.ndarray,
    epsilon: float,
    gaussian_scale: float = 1.0,
    credibility_threshold: float | None = None,
    confidence_threshold: float = 0.9,
    require_predicted_in_set: bool = True,
    function_name: str = "",
) -> ExpertAssessmentBatch:
    """Vectorized :func:`assess` over a ``(n_test, n_labels)`` p-value matrix.

    Applies the same credibility/confidence thresholds as the scalar
    path to every test sample at once and returns one
    :class:`ExpertAssessmentBatch`.
    """
    if gaussian_scale <= 0:
        raise ConfigurationError("gaussian_scale must be positive")
    if credibility_threshold is None:
        credibility_threshold = epsilon
    pvalues = np.asarray(pvalues, dtype=float)
    predicted_labels = np.asarray(predicted_labels, dtype=int)
    rows = np.arange(len(pvalues))
    credibility = pvalues[rows, predicted_labels]
    in_region = pvalues > epsilon
    set_sizes = in_region.sum(axis=1)
    effective_sizes = set_sizes
    if require_predicted_in_set:
        effective_sizes = np.where(in_region[rows, predicted_labels], set_sizes, 0)
    confidence = np.exp(
        -((effective_sizes - 1.0) ** 2) / (2.0 * gaussian_scale**2)
    )
    reject = (credibility < credibility_threshold) & (confidence < confidence_threshold)
    return ExpertAssessmentBatch(
        function_name=function_name,
        credibility=credibility,
        confidence=confidence,
        prediction_set_size=set_sizes,
        accept=~reject,
    )
