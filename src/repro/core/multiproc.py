"""Multi-process serving over shared-memory segments (DESIGN.md §10).

The async serving loop (:mod:`repro.core.serving`) freed decisions from
maintenance stalls, but its evaluator threads still share one GIL — on
a multi-core box, evaluate throughput stops at one core.  This module
adds the process tier: a :class:`ProcessServingPool` whose evaluator
*processes* attach the calibration state exported by
:class:`~repro.core.shm.SharedSegmentArena`, rebuild the segment
bundle over the mapped arrays (zero copy), and serve
``predict``/``evaluate`` requests over per-worker
``multiprocessing.Pipe`` connections.

Ownership is strictly single-writer (the supervisor/worker split of
streaming-ML serving systems): the parent process runs maintenance,
:meth:`~ProcessServingPool.publish`-es name tables and checkpoints;
workers only ever read.  A publish exports the touched blocks, swaps
the name table, and releases the previous table's references — workers
notice the new version before their next request, re-attach only the
blocks that changed, and fall back to their last good table on a torn
read.  Decisions are bit-identical to the in-process path: the mapped
blocks hold the same bytes, the rebuilt bundle routes evaluation
through the same segment-direct (or flat) kernels, and the model
weights travel in the pickled interface spec.

Crash containment: a worker that dies mid-request (detected by a
broken pipe) is respawned by the parent and re-attaches the current
table; the in-flight request is retried on the replacement, and the
crash/respawn is counted on :class:`~repro.core.serving.ServingStats`.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
import threading
import traceback
import zlib
from collections import deque
from multiprocessing.connection import wait as _connection_wait

import numpy as np

from .exceptions import ConfigurationError, ServingError, SharedSegmentError
from .segments import (
    BundleComposeHook,
    bundle_from_manifest,
    bundle_from_state,
    bundle_manifest,
    manifest_refs,
)
from .serving import ServingStats
from .shm import (
    SegmentAttacher,
    SegmentNameTable,
    SharedSegmentArena,
    dumps_manifest,
    loads_manifest,
)

#: per-process counter making arena/table prefixes unique even when a
#: pool object's id() is reused after garbage collection
_POOL_SEQUENCE = 0

#: requests a worker may have in flight during :meth:`map_predict`
#: pipelining — bounded so a slow worker cannot fill its OS pipe
#: buffer with replies the parent is not reading yet (a full buffer
#: wedges the worker mid-send and deadlocks the plane).
_PIPELINE_DEPTH = 2


def _next_pool_prefix() -> str:
    """A collision-free shared-memory name prefix for one pool."""
    global _POOL_SEQUENCE
    _POOL_SEQUENCE += 1
    return f"prom-{os.getpid():x}-{_POOL_SEQUENCE:x}"


class _WorkerRuntime:
    """Worker-process state: the attached table and the rebuilt interface.

    Not a public class — it lives only inside ``_worker_main``.  The
    runtime keeps the *last good* interface: a torn table read (or a
    manifest pointing at segments the parent already unlinked, the
    same race observed one layer up) is counted and skipped, never
    served.
    """

    def __init__(self, table_name: str):
        self.table = SegmentNameTable.attach(table_name)
        self.attacher = SegmentAttacher()
        self.interface = None
        self.version = 0
        self.torn_reads = 0
        self._spec_name = None
        self._spec = None

    def refresh(self) -> None:
        """Adopt the newest consistent name table, if it changed."""
        if (
            self.interface is not None
            and self.table.version_hint() == self.version
        ):
            return
        result = self.table.read()
        if result is None:
            self.torn_reads += 1
            return
        version, payload = result
        if self.interface is not None and version == self.version:
            return
        manifest = loads_manifest(payload)
        try:
            interface = self._build(manifest)
        except SharedSegmentError:
            # the parent swapped tables between our read and our
            # attach; the next request re-reads the newer table
            self.torn_reads += 1
            return
        self.interface = interface
        self.version = version
        live = [ref.name for ref in manifest_refs(manifest["bundle"])]
        live.append(manifest["spec"].name)
        self.attacher.sweep(live)

    def _build(self, manifest: dict):
        spec_ref = manifest["spec"]
        if spec_ref.name != self._spec_name:
            blob = self.attacher.get(spec_ref)
            self._spec = pickle.loads(blob.tobytes())
            self._spec_name = spec_ref.name
        interface = copy.copy(self._spec)
        prom = copy.copy(self._spec.prom)
        interface.prom = prom
        bundle = bundle_from_manifest(manifest["bundle"], self.attacher.get)
        prom._compose_hook = BundleComposeHook(prom, bundle)
        prom._segment_bundle = bundle
        # Calibration marker: `is_calibrated` checks the backing slot
        # hook-free, so seed it with a placeholder.  The placeholder is
        # never observed — the descriptor fires the compose hook (which
        # overwrites every slot from the bundle) before reading it.
        prom._features = None
        return interface

    def close(self) -> None:
        """Detach every mapping before the worker exits."""
        self.interface = None
        self.attacher.close()
        self.table.close()


def _worker_main(conn, table_name: str) -> None:
    """Evaluator-process request loop (module-level: spawn-compatible).

    Messages are ``(kind, ...)`` tuples; every request is answered with
    ``("ok", result)`` or ``("err", message, traceback)`` — except
    ``("crash",)``, the fault hook, which hard-exits without a reply so
    tests can exercise the parent's broken-pipe detection.
    """
    runtime = _WorkerRuntime(table_name)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "stop":
                conn.send(("ok", None))
                break
            if kind == "crash":
                os._exit(17)
            try:
                runtime.refresh()
                if kind == "ping":
                    result = "pong"
                elif kind == "sync":
                    result = (runtime.version, runtime.torn_reads)
                elif runtime.interface is None:
                    raise SharedSegmentError(
                        "worker has no consistent name table yet"
                    )
                elif kind == "predict":
                    result = runtime.interface.predict(message[1])
                elif kind == "evaluate":
                    result = runtime.interface.prom.evaluate(
                        *message[1], **message[2]
                    )
                else:
                    raise SharedSegmentError(f"unknown request {kind!r}")
            except BaseException as error:  # noqa: BLE001 — loop must survive
                reply = (
                    "err",
                    f"{type(error).__name__}: {error}",
                    traceback.format_exc(),
                )
            else:
                reply = ("ok", result)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        runtime.close()
        conn.close()


class ProcessServingPool:
    """N evaluator processes serving from shared-memory segments.

    Args:
        interface: a trained, calibrated
            :class:`~repro.core.interface.ModelInterface` (or the
            regression variant).  The pool immediately publishes its
            current calibration state and spawns the workers.
        n_workers: evaluator processes.
        start_method: ``multiprocessing`` start method; default prefers
            ``"fork"`` (instant spawn, inherited imports) and falls
            back to the platform default where fork is unavailable.
        table_capacity: byte size of the name-table block — an upper
            bound on the pickled manifest, not on calibration data.
        stats: optional :class:`~repro.core.serving.ServingStats` to
            account on; the pool creates a private one when omitted
            (and :meth:`bind_stats` re-homes the counters when an
            :class:`~repro.core.serving.AsyncServingLoop` adopts the
            pool).

    The parent remains the single writer: call
    :meth:`publish` after every batch of maintenance (the async loop
    does this from its publish path when the pool is attached), and
    route decisions through :meth:`predict` / :meth:`map_predict`.
    """

    def __init__(
        self,
        interface,
        n_workers: int = 2,
        start_method: str | None = None,
        table_capacity: int = 1 << 20,
        stats: ServingStats | None = None,
    ):
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.interface = interface
        self.n_workers = int(n_workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        prefix = _next_pool_prefix()
        self._arena = SharedSegmentArena(prefix)
        self._table = SegmentNameTable.create(
            f"{prefix}-tbl", capacity=table_capacity
        )
        self._stats = stats if stats is not None else ServingStats()
        self._stats_lock = threading.Lock()
        self._retained: list = []
        self._spec_token = None
        self._spec_ref = None
        self._workers: list = []
        self._torn_seen: list = []
        self._round_robin = 0
        self._closed = False
        self.publish()
        for _ in range(self.n_workers):
            self._spawn()

    # -- write side (parent only) -------------------------------------------------
    @property
    def stats(self) -> ServingStats:
        """The stats object the pool accounts on."""
        return self._stats

    def bind_stats(self, stats: ServingStats, lock=None) -> None:
        """Re-home the pool's counters onto a shared stats object.

        Called by :class:`~repro.core.serving.AsyncServingLoop` when it
        adopts the pool, so one ``loop.stats`` carries both planes.
        Counter values accumulated so far are migrated.
        """
        with self._stats_lock:
            previous = self._stats
            if previous is not stats:
                for name in _PROCESS_COUNTERS:
                    setattr(
                        stats,
                        name,
                        getattr(stats, name) + getattr(previous, name),
                    )
            self._stats = stats
        if lock is not None:
            self._stats_lock = lock

    def _require_open(self) -> None:
        if self._closed:
            raise SharedSegmentError("process pool is closed")

    def _pickle_spec(self) -> bytes:
        spec = copy.copy(self.interface)
        spec.streaming = None
        spec.__dict__.pop("_X_train", None)
        spec.__dict__.pop("_y_train", None)
        prom = copy.copy(self.interface.prom)
        for key in list(prom.__dict__):
            if key.startswith("_composed") or key in (
                "_compose_hook",
                "_segment_bundle",
            ):
                del prom.__dict__[key]
        spec.prom = prom
        return pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)

    def publish(self) -> int:
        """Export touched blocks, swap the name table; returns the version.

        Must be called from the writer side only, with maintenance
        quiescent (the async loop calls it under its state lock).  Cost
        is ``O(touched blocks)`` plus one interface-spec pickle; blocks
        already exported are reused by identity
        (:func:`~repro.core.durability.same_fingerprint` contract) and
        an unchanged spec is detected by checksum and not re-exported.
        """
        self._require_open()
        streaming = self.interface.streaming
        bundle = getattr(streaming, "_bundle", None)
        if bundle is None:
            bundle = bundle_from_state(self.interface.prom)
        spec_bytes = self._pickle_spec()
        token = (zlib.crc32(spec_bytes), len(spec_bytes))
        if token != self._spec_token or self._spec_ref is None:
            self._spec_ref = self._arena.export(
                np.frombuffer(spec_bytes, dtype=np.uint8)
            )
            self._spec_token = token
        manifest = {
            "spec": self._spec_ref,
            "bundle": bundle_manifest(bundle, self._arena.export),
        }
        refs = manifest_refs(manifest["bundle"])
        refs.append(self._spec_ref)
        self._arena.retain(refs)
        version = self._table.publish(dumps_manifest(manifest))
        self._arena.release(self._retained)
        self._retained = refs
        with self._stats_lock:
            stats = self._stats
            stats.table_publishes += 1
            stats.shm_blocks_exported = self._arena.blocks_exported
            stats.shm_blocks_reused = self._arena.blocks_reused
            stats.shm_bytes_exported = self._arena.bytes_exported
        return version

    # -- worker lifecycle ---------------------------------------------------------
    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._table.name),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._workers.append([process, parent_conn])
        self._torn_seen.append(0)
        with self._stats_lock:
            self._stats.workers_spawned += 1

    def _respawn(self, slot: int) -> None:
        process, conn = self._workers[slot]
        try:
            conn.close()
        except OSError:  # pragma: no cover - already broken
            pass
        if process.is_alive():
            process.terminate()
        process.join(timeout=5)
        with self._stats_lock:
            self._stats.workers_crashed += 1
            self._stats.workers_respawned += 1
        parent_conn, child_conn = self._ctx.Pipe()
        replacement = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._table.name),
            daemon=True,
        )
        replacement.start()
        child_conn.close()
        self._workers[slot] = [replacement, parent_conn]
        self._torn_seen[slot] = 0
        with self._stats_lock:
            self._stats.workers_spawned += 1

    # -- read side ----------------------------------------------------------------
    def _roundtrip(self, slot: int, message):
        conn = self._workers[slot][1]
        conn.send(message)
        reply = conn.recv()
        if reply[0] == "err":
            raise ServingError(
                f"worker {slot} failed: {reply[1]}\n{reply[2]}"
            )
        return reply[1]

    def _request(self, message):
        self._require_open()
        for _ in range(len(self._workers) + 1):
            slot = self._round_robin % len(self._workers)
            self._round_robin += 1
            try:
                return self._roundtrip(slot, message)
            except (EOFError, BrokenPipeError, ConnectionResetError) as error:
                last_error = error
                self._respawn(slot)
        raise SharedSegmentError(
            "every worker died serving the request"
        ) from last_error

    def predict(self, X):
        """``(predictions, decisions)`` from one evaluator process.

        Bit-identical to ``interface.predict(X)`` at the published
        table's state; a worker crash mid-request is absorbed by a
        respawn + retry on the replacement (which attaches the current
        — last-good — table).
        """
        return self._request(("predict", np.asarray(X)))

    def evaluate(self, *args, **kwargs):
        """Batch-evaluate precomputed features/outputs on a worker."""
        return self._request(("evaluate", args, kwargs))

    def map_predict(self, batches) -> list:
        """Predict many batches, pipelined across every worker.

        The throughput API: batches fan out round-robin with a bounded
        per-worker pipeline, replies are collected as they land, and
        results return in input order.  Crashed workers are respawned
        and their in-flight batches requeued.
        """
        self._require_open()
        batches = list(batches)
        results = [None] * len(batches)
        work = deque(range(len(batches)))
        in_flight: list = [deque() for _ in self._workers]

        def slot_of(conn):
            for index, (_, worker_conn) in enumerate(self._workers):
                if worker_conn is conn:
                    return index
            raise SharedSegmentError("reply from unknown worker connection")

        def crash(slot):
            queued = in_flight[slot]
            work.extendleft(reversed(queued))
            queued.clear()
            self._respawn(slot)

        while work or any(in_flight):
            for slot in range(len(self._workers)):
                conn = self._workers[slot][1]
                while work and len(in_flight[slot]) < _PIPELINE_DEPTH:
                    index = work.popleft()
                    try:
                        conn.send(("predict", batches[index]))
                    except (BrokenPipeError, OSError):
                        work.appendleft(index)
                        crash(slot)
                        break
                    in_flight[slot].append(index)
            busy = [
                self._workers[slot][1]
                for slot in range(len(self._workers))
                if in_flight[slot]
            ]
            if not busy:
                continue
            for conn in _connection_wait(busy):
                slot = slot_of(conn)
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    crash(slot)
                    continue
                index = in_flight[slot].popleft()
                if reply[0] == "err":
                    raise ServingError(
                        f"worker {slot} failed: {reply[1]}\n{reply[2]}"
                    )
                results[index] = reply[1]
        return results

    def sync(self) -> list:
        """Make every worker adopt the newest table; returns versions.

        Also drains the per-worker torn-read counters into
        ``stats.torn_table_reads``.  Used by tests and by
        ``drain_each_step`` deployments to assert freshness: after
        ``publish(); sync()`` every worker serves the new version (or
        kept its last good one through a torn read, which the counter
        exposes).
        """
        self._require_open()
        versions = []
        for slot in range(len(self._workers)):
            try:
                version, torn = self._roundtrip(slot, ("sync",))
            except (EOFError, BrokenPipeError, ConnectionResetError):
                self._respawn(slot)
                version, torn = self._roundtrip(slot, ("sync",))
            delta = torn - self._torn_seen[slot]
            if delta > 0:
                with self._stats_lock:
                    self._stats.torn_table_reads += delta
            self._torn_seen[slot] = torn
            versions.append(version)
        return versions

    @property
    def table_version(self) -> int:
        """The version of the most recently published name table."""
        return self._table.version

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for process, conn in self._workers:
            try:
                conn.send(("stop",))
                conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for process, _ in self._workers:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=5)
        self._workers = []
        self._table.close()
        self._arena.close()

    def __enter__(self) -> "ProcessServingPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ProcessServingPool(workers={self.n_workers}, "
            f"start_method={self.start_method!r}, "
            f"table_version={self._table.version})"
        )


#: ServingStats fields owned by the process tier (used by bind_stats)
_PROCESS_COUNTERS = (
    "workers_spawned",
    "workers_crashed",
    "workers_respawned",
    "table_publishes",
    "torn_table_reads",
    "shm_blocks_exported",
    "shm_blocks_reused",
    "shm_bytes_exported",
)
