"""Adaptive calibration-subset selection and distance weighting.

Paper Sec. 5.1.2 / Figure 6: for every test sample, Prom selects the
nearest fraction of calibration samples in the model's feature space
(all of them when the calibration set is small) and multiplies each
selected sample's nonconformity score by an exponential distance
weight ``w_i = exp(-||v_i - v_test||^2 / tau)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CalibrationSubset:
    """The per-test-sample view of the calibration data.

    Attributes:
        indices: positions of the selected calibration samples.
        distances: Euclidean distance of each selected sample to the
            test sample, aligned with ``indices``.
        weights: exponential distance weights, aligned with ``indices``.
    """

    indices: np.ndarray
    distances: np.ndarray
    weights: np.ndarray


class AdaptiveWeighting:
    """Selects and weights calibration samples relative to a test sample.

    Args:
        fraction: share of the calibration set to keep (nearest first);
            the paper default is 0.5.
        min_samples: when the calibration set has fewer samples than
            this, all of it is used (paper default 200).
        tau: temperature of the exponential weight.  The paper default
            is 500; ``None`` (our default) resolves tau automatically
            at calibration time to the median pairwise squared distance
            of the calibration features, so the weights adapt to the
            scale of any feature space (see :meth:`resolve_tau`).
        weight_floor: lower bound on the distance weight.  Keeps a
            sliver of probability-based evidence alive for test samples
            far from every calibration point: a model that is genuinely
            conforming in its output distribution can still be accepted
            even when the input is off-distribution, which bounds the
            false-positive rate under pure covariate shift.
    """

    def __init__(
        self,
        fraction: float = 0.5,
        min_samples: int = 200,
        tau: float | None = None,
        weight_floor: float = 0.05,
    ):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if tau is not None and tau <= 0:
            raise ValueError("tau must be positive when given")
        if not 0.0 <= weight_floor < 1.0:
            raise ValueError(f"weight_floor must be in [0, 1), got {weight_floor}")
        self.fraction = fraction
        self.min_samples = min_samples
        self.tau = tau
        self.weight_floor = weight_floor
        self._resolved_tau = tau

    @property
    def effective_tau(self) -> float | None:
        """The tau actually in use (resolved value when tau was None)."""
        return self._resolved_tau

    def resolve_tau(self, calibration_features, max_pairs: int = 500, seed: int = 0) -> float:
        """Fix an automatic tau from the calibration feature scale.

        Uses the median pairwise squared Euclidean distance over (a
        subsample of) the calibration features: in-distribution samples
        then receive weights around ``exp(-1)`` while samples several
        distance scales away decay to nearly zero.  Called by the Prom
        detectors during ``calibrate`` when ``tau`` was None.
        """
        if self.tau is not None:
            self._resolved_tau = self.tau
            return self._resolved_tau
        features = np.asarray(calibration_features, dtype=float)
        rng = np.random.default_rng(seed)
        n = len(features)
        if n > max_pairs:
            rows = rng.choice(n, size=max_pairs, replace=False)
            features = features[rows]
        diffs = features[:, None, :] - features[None, :, :]
        squared = np.sum(diffs * diffs, axis=2)
        upper = squared[np.triu_indices(len(features), k=1)]
        median = float(np.median(upper)) if len(upper) else 1.0
        self._resolved_tau = max(median, 1e-9)
        return self._resolved_tau

    def select(self, calibration_features: np.ndarray, test_feature: np.ndarray) -> CalibrationSubset:
        """Return the weighted nearest subset for one test feature vector."""
        features = np.asarray(calibration_features, dtype=float)
        test = np.asarray(test_feature, dtype=float).ravel()
        if features.ndim != 2:
            raise ValueError("calibration_features must be 2-D")
        if features.shape[1] != test.shape[0]:
            raise ValueError(
                f"feature dimensionality mismatch: calibration has "
                f"{features.shape[1]}, test has {test.shape[0]}"
            )
        n = len(features)
        squared = np.sum((features - test) ** 2, axis=1)
        distances = np.sqrt(squared)

        if n < self.min_samples:
            indices = np.arange(n)
        else:
            keep = max(1, int(round(n * self.fraction)))
            indices = np.argpartition(distances, keep - 1)[:keep]
        tau = self._resolved_tau
        if tau is None:
            tau = self.resolve_tau(features)
        weights = np.maximum(np.exp(-squared[indices] / tau), self.weight_floor)
        return CalibrationSubset(
            indices=indices,
            distances=distances[indices],
            weights=weights,
        )

    def adjusted_scores(self, scores: np.ndarray, subset: CalibrationSubset) -> np.ndarray:
        """Return the distance-weighted scores of the selected subset.

        ``scores`` is the full per-calibration-sample score array; the
        result is aligned with ``subset.indices``.
        """
        scores = np.asarray(scores, dtype=float)
        return subset.weights * scores[subset.indices]


class UniformWeighting(AdaptiveWeighting):
    """Ablation variant: full calibration set, unit weights.

    This reproduces the behaviour of prior CP-based drift detectors
    (Transcend / RISE / TESSERACT) that Prom improves upon, and backs
    the naive-CP baseline and the adaptive-vs-full ablation bench.
    """

    def __init__(self):
        super().__init__(fraction=1.0, min_samples=1, tau=1.0)

    def select(self, calibration_features, test_feature) -> CalibrationSubset:
        features = np.asarray(calibration_features, dtype=float)
        test = np.asarray(test_feature, dtype=float).ravel()
        n = len(features)
        distances = np.sqrt(np.sum((features - test) ** 2, axis=1))
        return CalibrationSubset(
            indices=np.arange(n),
            distances=distances,
            weights=np.ones(n),
        )
