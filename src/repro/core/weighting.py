"""Adaptive calibration-subset selection and distance weighting.

Paper Sec. 5.1.2 / Figure 6: for every test sample, Prom selects the
nearest fraction of calibration samples in the model's feature space
(all of them when the calibration set is small) and multiplies each
selected sample's nonconformity score by an exponential distance
weight ``w_i = exp(-||v_i - v_test||^2 / tau)``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np
from .blocks import BlockColumn, flat_panels, panel_product
from .exceptions import ConfigurationError, ValidationError

#: soft bound on the number of float64 cells a distance block may hold
#: (~32 MB); chunked helpers size their blocks so temporaries stay flat
#: no matter how large the test stream or calibration set grows.
DISTANCE_CELL_BUDGET = 4_000_000

#: rows :func:`median_pairwise_tau` subsamples, and the seed of the
#: draw.  Shared with the segment-aware tau path
#: (:func:`repro.core.segments.tau_feature_sample`), which must
#: reproduce the exact same draw for the resolved tau to stay
#: bit-identical — change these HERE, never by restating the literals.
TAU_MAX_ROWS = 200
TAU_SEED = 0


def _auto_chunk(n_columns: int, chunk_size: int | None = None) -> int:
    if chunk_size is not None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        return chunk_size
    return max(1, DISTANCE_CELL_BUDGET // max(1, n_columns))


def iter_squared_distance_chunks(test_features, calibration_features, chunk_size=None):
    """Yield ``(start, stop, block)`` of squared Euclidean distances.

    ``block`` is the ``(stop - start, n_calibration)`` squared-distance
    matrix of test rows ``start:stop`` against every calibration row,
    computed with the ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b``
    identity: one GEMM per block instead of an ``(n, m, d)`` broadcast,
    with temporary memory bounded by ``chunk * n_calibration`` cells.

    The GEMM follows the canonical fixed-panel partition of the
    calibration axis (:func:`~repro.core.blocks.panel_bounds`), so
    ``calibration_features`` may equivalently be a flat array or a
    :class:`~repro.core.blocks.BlockColumn` of per-shard segments —
    the segmented backend iterates the blocks directly (no flat
    concatenation) with bit-identical results; see DESIGN.md §9.
    """
    test = np.asarray(test_features, dtype=float)
    segmented = isinstance(calibration_features, BlockColumn)
    calibration = (
        calibration_features
        if segmented
        else np.asarray(calibration_features, dtype=float)
    )
    if test.ndim == 1:
        test = test.reshape(1, -1)
    if calibration.ndim != 2 or test.ndim != 2:
        raise ValidationError("feature arrays must be 2-D")
    if test.shape[1] != calibration.shape[1]:
        raise ValidationError(
            f"feature dimensionality mismatch: calibration has "
            f"{calibration.shape[1]}, test has {test.shape[1]}"
        )
    if segmented:
        calibration_sq = calibration.row_norms()
        panels = calibration.panels()
    else:
        calibration_sq = np.einsum("ij,ij->i", calibration, calibration)
        panels = flat_panels(calibration)
    chunk = _auto_chunk(len(calibration), chunk_size)
    for start in range(0, len(test), chunk):
        stop = min(len(test), start + chunk)
        block_rows = test[start:stop]
        block = panel_product(block_rows, panels, len(calibration))
        block *= -2.0
        block += np.einsum("ij,ij->i", block_rows, block_rows)[:, None]
        block += calibration_sq[None, :]
        np.clip(block, 0.0, None, out=block)
        yield start, stop, block


def squared_distance_matrix(A, B=None, chunk_size=None) -> np.ndarray:
    """Return the full ``(len(A), len(B))`` squared-distance matrix.

    Built block-by-block via :func:`iter_squared_distance_chunks`, so the
    result costs ``n * m`` cells but the temporaries never exceed the
    chunk budget (the naive ``A[:, None, :] - B[None, :, :]`` broadcast
    needs ``n * m * d``).  ``B=None`` computes pairwise distances of
    ``A`` against itself.
    """
    A = np.asarray(A, dtype=float)
    if B is None:
        B = A
    elif not isinstance(B, BlockColumn):
        B = np.asarray(B, dtype=float)
    out = np.empty((len(A), len(B)))
    for start, stop, block in iter_squared_distance_chunks(A, B, chunk_size):
        out[start:stop] = block
    return out


@functools.lru_cache(maxsize=8)
def _upper_triangle_indices(n: int):
    return np.triu_indices(n, k=1)


def median_pairwise_tau(
    features, max_rows: int = TAU_MAX_ROWS, seed: int = TAU_SEED
) -> float:
    """Median pairwise squared distance over (a subsample of) features.

    The automatic tau of :meth:`AdaptiveWeighting.resolve_tau`, exposed
    as a standalone kernel so streaming recalibration can re-resolve it
    against a mutated calibration store with exactly the arithmetic a
    fresh ``calibrate()`` would use.  Cost is bounded by ``max_rows``
    (one ``max_rows x max_rows`` GEMM and a ~20k-element median, a few
    hundred microseconds) regardless of the calibration-set size, so it
    can rerun on every streaming micro-batch.
    """
    features = np.asarray(features, dtype=float)
    n = len(features)
    if n < 2:
        return 1.0
    if n > max_rows:
        rng = np.random.default_rng(seed)
        features = features[rng.choice(n, size=max_rows, replace=False)]
    squared = squared_distance_matrix(features)
    distances = squared[_upper_triangle_indices(len(features))]
    median = float(np.median(distances))
    return max(median, 1e-9)


@dataclass(frozen=True)
class CalibrationSubset:
    """The per-test-sample view of the calibration data.

    Attributes:
        indices: positions of the selected calibration samples.
        distances: Euclidean distance of each selected sample to the
            test sample, aligned with ``indices``.
        weights: exponential distance weights, aligned with ``indices``.
    """

    indices: np.ndarray
    distances: np.ndarray
    weights: np.ndarray


@dataclass(frozen=True)
class CalibrationSubsetBatch:
    """Per-test-sample calibration views for a whole batch at once.

    Struct-of-arrays counterpart of :class:`CalibrationSubset`: every
    test sample selects the same number ``k`` of calibration samples
    (all of them below ``min_samples``, the nearest fraction above), so
    the selection is three rectangular ``(n_test, k)`` arrays instead
    of ``n_test`` ragged objects.

    Attributes:
        indices: selected calibration positions, one row per test sample.
        distances: Euclidean distances aligned with ``indices``.
        weights: exponential distance weights aligned with ``indices``.
    """

    indices: np.ndarray
    distances: np.ndarray
    weights: np.ndarray

    def __len__(self) -> int:
        return len(self.indices)

    def sample(self, i: int) -> CalibrationSubset:
        """Return the ``i``-th test sample's view as a scalar subset."""
        return CalibrationSubset(
            indices=np.asarray(self.indices[i]),
            distances=np.asarray(self.distances[i]),
            weights=np.asarray(self.weights[i]),
        )


class AdaptiveWeighting:
    """Selects and weights calibration samples relative to a test sample.

    Args:
        fraction: share of the calibration set to keep (nearest first);
            the paper default is 0.5.
        min_samples: when the calibration set has fewer samples than
            this, all of it is used (paper default 200).
        tau: temperature of the exponential weight.  The paper default
            is 500; ``None`` (our default) resolves tau automatically
            at calibration time to the median pairwise squared distance
            of the calibration features, so the weights adapt to the
            scale of any feature space (see :meth:`resolve_tau`).
        weight_floor: lower bound on the distance weight.  Keeps a
            sliver of probability-based evidence alive for test samples
            far from every calibration point: a model that is genuinely
            conforming in its output distribution can still be accepted
            even when the input is off-distribution, which bounds the
            false-positive rate under pure covariate shift.
    """

    def __init__(
        self,
        fraction: float = 0.5,
        min_samples: int = 200,
        tau: float | None = None,
        weight_floor: float = 0.05,
    ):
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        if min_samples < 1:
            raise ConfigurationError("min_samples must be >= 1")
        if tau is not None and tau <= 0:
            raise ConfigurationError("tau must be positive when given")
        if not 0.0 <= weight_floor < 1.0:
            raise ConfigurationError(f"weight_floor must be in [0, 1), got {weight_floor}")
        self.fraction = fraction
        self.min_samples = min_samples
        self.tau = tau
        self.weight_floor = weight_floor
        self._resolved_tau = tau

    @property
    def effective_tau(self) -> float | None:
        """The tau actually in use (resolved value when tau was None)."""
        return self._resolved_tau

    def resolve_tau(
        self, calibration_features, max_rows: int = TAU_MAX_ROWS, seed: int = TAU_SEED
    ) -> float:
        """Fix an automatic tau from the calibration feature scale.

        Uses the median pairwise squared Euclidean distance over (a
        sample of) calibration feature pairs: in-distribution samples
        then receive weights around ``exp(-1)`` while samples several
        distance scales away decay to nearly zero.  Called by the Prom
        detectors during ``calibrate`` when ``tau`` was None, and by
        the streaming wrappers after every store mutation (the pair
        sample keeps it micro-batch cheap).
        """
        if self.tau is not None:
            self._resolved_tau = self.tau
            return self._resolved_tau
        self._resolved_tau = median_pairwise_tau(
            calibration_features, max_rows=max_rows, seed=seed
        )
        return self._resolved_tau

    def adopt_tau(self, tau: float) -> float:
        """Install an externally resolved automatic tau.

        Used by the streaming tau sketch
        (:class:`~repro.core.segments.TauSketch`) to carry a cached
        resolution across store mutations whose sampled feature rows
        did not change; a fixed ``tau`` always wins, exactly as in
        :meth:`resolve_tau`.
        """
        self._resolved_tau = self.tau if self.tau is not None else float(tau)
        return self._resolved_tau

    def select(self, calibration_features: np.ndarray, test_feature: np.ndarray) -> CalibrationSubset:
        """Return the weighted nearest subset for one test feature vector."""
        features = np.asarray(calibration_features, dtype=float)
        test = np.asarray(test_feature, dtype=float).ravel()
        if features.ndim != 2:
            raise ValidationError("calibration_features must be 2-D")
        if features.shape[1] != test.shape[0]:
            raise ValidationError(
                f"feature dimensionality mismatch: calibration has "
                f"{features.shape[1]}, test has {test.shape[0]}"
            )
        n = len(features)
        squared = np.sum((features - test) ** 2, axis=1)
        distances = np.sqrt(squared)

        if n < self.min_samples:
            indices = np.arange(n)
        else:
            keep = max(1, int(round(n * self.fraction)))
            indices = np.argpartition(distances, keep - 1)[:keep]
        tau = self._resolved_tau
        if tau is None:
            tau = self.resolve_tau(features)
        weights = np.maximum(np.exp(-squared[indices] / tau), self.weight_floor)
        return CalibrationSubset(
            indices=indices,
            distances=distances[indices],
            weights=weights,
        )

    def select_batch(
        self,
        calibration_features: np.ndarray,
        test_features: np.ndarray,
        chunk_size: int | None = None,
    ) -> CalibrationSubsetBatch:
        """Return the weighted nearest subsets for a batch of test samples.

        The test-vs-calibration distance matrix is computed in
        memory-bounded chunks via the dot-product identity; selection
        and weighting are then a per-row ``argpartition`` plus one
        vectorized ``exp``, so the whole batch costs a handful of NumPy
        kernels instead of ``n_test`` Python iterations of
        :meth:`select`.

        ``calibration_features`` may be a
        :class:`~repro.core.blocks.BlockColumn`; selection then runs
        segment-direct (bit-identical — DESIGN.md §9).
        """
        if isinstance(calibration_features, BlockColumn):
            features = calibration_features
        else:
            features = np.asarray(calibration_features, dtype=float)
        test = np.asarray(test_features, dtype=float)
        if test.ndim == 1:
            test = test.reshape(1, -1)
        if features.ndim != 2:
            raise ValidationError("calibration_features must be 2-D")
        if features.shape[1] != test.shape[1]:
            raise ValidationError(
                f"feature dimensionality mismatch: calibration has "
                f"{features.shape[1]}, test has {test.shape[1]}"
            )
        n = len(features)
        n_test = len(test)
        keep = n if n < self.min_samples else max(1, int(round(n * self.fraction)))
        tau = self._resolved_tau
        if tau is None:
            tau = self.resolve_tau(features)

        indices = np.empty((n_test, keep), dtype=int)
        squared = np.empty((n_test, keep))
        for start, stop, block in iter_squared_distance_chunks(
            test, features, chunk_size
        ):
            rows = np.arange(stop - start)[:, None]
            if keep == n:
                block_indices = np.broadcast_to(np.arange(n), block.shape)
                block_squared = block
            else:
                block_indices = np.argpartition(block, keep - 1, axis=1)[:, :keep]
                block_squared = block[rows, block_indices]
            indices[start:stop] = block_indices
            squared[start:stop] = block_squared
        weights = squared / -tau
        np.exp(weights, out=weights)
        np.maximum(weights, self.weight_floor, out=weights)
        np.sqrt(squared, out=squared)
        return CalibrationSubsetBatch(
            indices=indices,
            distances=squared,
            weights=weights,
        )

    def adjusted_scores(self, scores: np.ndarray, subset: CalibrationSubset) -> np.ndarray:
        """Return the distance-weighted scores of the selected subset.

        ``scores`` is the full per-calibration-sample score array; the
        result is aligned with ``subset.indices``.
        """
        scores = np.asarray(scores, dtype=float)
        return subset.weights * scores[subset.indices]


class UniformWeighting(AdaptiveWeighting):
    """Ablation variant: full calibration set, unit weights.

    This reproduces the behaviour of prior CP-based drift detectors
    (Transcend / RISE / TESSERACT) that Prom improves upon, and backs
    the naive-CP baseline and the adaptive-vs-full ablation bench.
    """

    def __init__(self):
        super().__init__(fraction=1.0, min_samples=1, tau=1.0)

    def select(self, calibration_features, test_feature) -> CalibrationSubset:
        features = np.asarray(calibration_features, dtype=float)
        test = np.asarray(test_feature, dtype=float).ravel()
        n = len(features)
        distances = np.sqrt(np.sum((features - test) ** 2, axis=1))
        return CalibrationSubset(
            indices=np.arange(n),
            distances=distances,
            weights=np.ones(n),
        )

    def select_batch(
        self, calibration_features, test_features, chunk_size=None
    ) -> CalibrationSubsetBatch:
        if isinstance(calibration_features, BlockColumn):
            features = calibration_features
        else:
            features = np.asarray(calibration_features, dtype=float)
        test = np.asarray(test_features, dtype=float)
        if test.ndim == 1:
            test = test.reshape(1, -1)
        n = len(features)
        squared = squared_distance_matrix(test, features, chunk_size)
        return CalibrationSubsetBatch(
            indices=np.broadcast_to(np.arange(n), (len(test), n)),
            distances=np.sqrt(squared),
            weights=np.ones((len(test), n)),
        )
