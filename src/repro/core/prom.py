"""PromClassifier and PromRegressor — the top-level drift detectors.

Workflow (paper Figures 3 and 5):

1. **Design time** — ``calibrate()`` with the held-out calibration set:
   feature vectors, the underlying model's outputs, and ground truth.
   Per-sample nonconformity scores are precomputed offline for every
   expert (nonconformity function).
2. **Deployment** — ``evaluate()`` a batch of test samples: the
   vectorized engine selects and weights the nearest calibration
   subsets (chunked distance matrix), computes per-expert credibility
   (p-value of the predicted label) and confidence (Gaussian of the
   prediction-set size) for the whole batch with a handful of NumPy
   kernels, and majority-votes the accept/reject decisions into a
   :class:`~repro.core.committee.DecisionBatch`.  ``evaluate_one`` is a
   thin wrapper evaluating a batch of one; ``evaluate_serial`` keeps
   the original per-sample loop as a reference implementation.
3. **Streaming deployment** — when the calibration set itself churns
   (relabelled samples arrive, old ones are evicted), wrap the
   detector in :class:`~repro.core.streaming.StreamingPromClassifier`
   or :class:`~repro.core.streaming.StreamingPromRegressor`: their
   ``update()`` folds a micro-batch into the calibration state in time
   proportional to the batch, not the calibration-set size, and is
   decision-identical to a fresh ``calibrate()`` on the surviving
   samples (DESIGN.md §3).
"""

from __future__ import annotations

import numpy as np

from .clustering import CalibrationClusterer
from .committee import Decision, DecisionBatch, ExpertCommittee
from .exceptions import (
    CalibrationError,
    ConfigurationError,
    NotCalibratedError,
    ValidationError,
)
from .nonconformity import (
    default_classification_functions,
    default_regression_scores,
)
from .pvalue import (
    bin_subset_by_label,
    group_scores_by_label,
    pvalues_all_labels,
    pvalues_from_binning,
)
from .scores import assess, assess_batch
from .segments import ComposedStateAttr, EvaluationView, state_is_set
from .weighting import AdaptiveWeighting, iter_squared_distance_chunks, squared_distance_matrix

#: soft bound on the number of float64 cells one evaluation chunk's
#: largest temporary may hold (~16 MB).
_EVALUATE_CELL_BUDGET = 2_000_000


def _evaluation_chunk(n_calibration: int, chunk_size: int | None, n_labels: int = 1) -> int:
    """Test rows per chunk so per-chunk temporaries stay bounded.

    The widest temporaries are the ``(chunk, k)`` selection/binning
    matrices (``k <= n_calibration``) and the ``(chunk, n_labels,
    n_labels)`` broadcast inside the closed-form ``score_all_labels``
    kernels, so both dimensions cap the chunk.
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        return chunk_size
    widest = max(1, n_calibration, n_labels * n_labels)
    return max(1, _EVALUATE_CELL_BUDGET // widest)


def _pending_bundle(prom):
    """The un-materialized compose bundle behind ``prom``, or ``None``.

    Hook-free: inspects the installed ``_compose_hook`` without firing
    it, so asking never triggers the deferred flat concatenation.
    """
    hook = prom.__dict__.get("_compose_hook")
    pending = getattr(hook, "pending_bundle", None)
    return pending() if pending is not None else None


def _segment_view(prom):
    """The segment-direct :class:`EvaluationView`, or ``None`` (flat path)."""
    bundle = _pending_bundle(prom)
    return bundle.evaluation_view() if bundle is not None else None


def _check_calibration_inputs(features, outputs, targets):
    features = np.asarray(features, dtype=float)
    outputs = np.asarray(outputs, dtype=float)
    targets = np.asarray(targets)
    if features.ndim != 2:
        raise CalibrationError("calibration features must be 2-D")
    if len(features) == 0:
        raise CalibrationError("calibration set is empty")
    if len(features) != len(outputs) or len(features) != len(targets):
        raise CalibrationError(
            "calibration features, model outputs and targets must align"
        )
    return features, outputs, targets


class PromClassifier:
    """Drift detector for probabilistic classifiers.

    Args:
        functions: nonconformity functions forming the expert
            committee; defaults to the paper's LAC/TopK/APS/RAPS.
        epsilon: significance parameter (paper default 0.1); the CP
            prediction region keeps labels with p-value > epsilon.
        fraction, min_calibration, tau: adaptive-weighting parameters
            (paper defaults 0.5, 200, 500).
        gaussian_scale: the ``c`` of the confidence Gaussian.
        credibility_threshold: reject-side threshold on the p-value
            (default: epsilon).
        confidence_threshold: reject-side threshold on confidence.
        vote_threshold: committee acceptance fraction (0.5 = majority,
            ties reject).
    """

    # Calibration state attributes behind compose-aware descriptors: a
    # streaming wrapper may hold this state as per-shard segments
    # (core/segments.py) and install a ``_compose_hook`` that
    # materializes the flat arrays on first read.  Plain (non-streaming)
    # use assigns and reads them exactly like ordinary attributes.
    _features = ComposedStateAttr()
    _labels = ComposedStateAttr()
    _scores = ComposedStateAttr()
    _layouts = ComposedStateAttr()

    def __init__(
        self,
        functions=None,
        epsilon: float = 0.1,
        fraction: float = 0.5,
        min_calibration: int = 200,
        tau: float | None = None,
        gaussian_scale: float = 1.0,
        credibility_threshold: float | None = None,
        confidence_threshold: float = 0.9,
        vote_threshold: float = 0.5,
        weight_mode: str = "count",
        weighting: AdaptiveWeighting | None = None,
    ):
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        self.functions = (
            list(functions)
            if functions is not None
            else default_classification_functions()
        )
        if not self.functions:
            raise ConfigurationError("need at least one nonconformity function")
        self.epsilon = epsilon
        self.gaussian_scale = gaussian_scale
        self.credibility_threshold = credibility_threshold
        self.confidence_threshold = confidence_threshold
        self.weight_mode = weight_mode
        self.weighting = weighting or AdaptiveWeighting(
            fraction=fraction, min_samples=min_calibration, tau=tau
        )
        self.committee = ExpertCommittee(vote_threshold=vote_threshold)

    # -- design time -----------------------------------------------------------
    def calibrate(self, features, probabilities, labels) -> "PromClassifier":
        """Precompute per-expert nonconformity scores on the calibration set.

        Args:
            features: ``(n, d)`` feature vectors from the model's
                feature-extraction function.
            probabilities: ``(n, n_classes)`` model probability vectors.
            labels: true label indices (column indices of
                ``probabilities``).
        """
        features, probabilities, labels = _check_calibration_inputs(
            features, probabilities, labels
        )
        labels = labels.astype(int)
        if probabilities.ndim != 2:
            raise CalibrationError("probabilities must be (n, n_classes)")
        if labels.max(initial=0) >= probabilities.shape[1]:
            raise CalibrationError("label index exceeds probability columns")
        self._features = features
        self._labels = labels
        self._n_classes = probabilities.shape[1]
        self.weighting.resolve_tau(features)
        self._scores = [
            function.score(probabilities, labels) for function in self.functions
        ]
        # Batch-engine layout: per expert, validated scores with label
        # bookkeeping so deployment p-values reduce to label-binned
        # scatter-adds (see DESIGN.md).
        self._layouts = [
            group_scores_by_label(scores, labels, self._n_classes)
            for scores in self._scores
        ]
        return self

    @property
    def is_calibrated(self) -> bool:
        # hook-free check: must not trigger lazy compose materialization
        return state_is_set(self, "_features")

    @property
    def calibration_size(self) -> int:
        """Number of calibration samples backing the detector (0 before
        ``calibrate()``).  Counted from the pending compose bundle when
        one exists, so asking never forces the flat materialization."""
        if not self.is_calibrated:
            return 0
        bundle = _pending_bundle(self)
        if bundle is not None:
            return len(bundle.fields["_features"])
        return len(self._features)

    def _require_calibrated(self):
        if not self.is_calibrated:
            raise NotCalibratedError("call calibrate() before evaluating samples")

    def _evaluation_state(self) -> EvaluationView:
        """The flat-state evaluation view (materializes composed state)."""
        return EvaluationView(
            features=self._features,
            labels=self._labels,
            layouts=tuple(self._layouts),
            n_labels=self._n_classes,
        )

    def _check_evaluate_inputs(self, features, probabilities, predicted_labels):
        features = np.asarray(features, dtype=float)
        probabilities = np.asarray(probabilities, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if probabilities.ndim == 1:
            probabilities = probabilities.reshape(1, -1)
        if probabilities.shape[1] != self._n_classes:
            raise ValidationError(
                f"probability vector has {probabilities.shape[1]} entries, "
                f"calibration used {self._n_classes} classes"
            )
        if predicted_labels is None:
            predicted_labels = np.argmax(probabilities, axis=1)
        predicted_labels = np.asarray(predicted_labels, dtype=int).ravel()
        return features, probabilities, predicted_labels

    # -- deployment --------------------------------------------------------------
    def evaluate_one(self, feature, probability_row, predicted_label=None) -> Decision:
        """Assess one test sample; returns the committee :class:`Decision`.

        Thin compatibility wrapper over the batch engine: the sample is
        evaluated as a batch of one and the verdict materialized as a
        scalar :class:`Decision`.
        """
        predicted = None if predicted_label is None else [int(predicted_label)]
        batch = self.evaluate(
            np.asarray(feature, dtype=float).ravel().reshape(1, -1),
            np.asarray(probability_row, dtype=float).ravel().reshape(1, -1),
            predicted,
        )
        return batch[0]

    def evaluate(
        self, features, probabilities, predicted_labels=None, chunk_size=None
    ) -> DecisionBatch:
        """Assess a batch of test samples with the vectorized engine.

        Returns a :class:`DecisionBatch` — a sequence of per-sample
        :class:`Decision` objects backed by flat arrays.  The batch is
        processed in memory-bounded chunks: each chunk costs one chunked
        distance matrix, one p-value kernel per expert, and one
        committee vote, independent of the number of samples.

        When the detector's state sits behind an un-materialized
        compose bundle (a streaming snapshot), the kernels iterate the
        per-shard blocks directly — bit-identical to the flat path, and
        the ``O(n)`` flat concatenation never happens (DESIGN.md §9).
        A :class:`~repro.core.pruning.CandidatePruner` installed as
        ``_pruner`` additionally restricts each test sample to its
        router-affine candidate shards.  ``chunk_size=None`` falls back
        to the instance default ``_chunk_size`` (when set) before the
        automatic memory-bounded choice.
        """
        self._require_calibrated()
        features, probabilities, predicted_labels = self._check_evaluate_inputs(
            features, probabilities, predicted_labels
        )
        if chunk_size is None:
            chunk_size = getattr(self, "_chunk_size", None)
        view = _segment_view(self)
        pruner = self.__dict__.get("_pruner")
        if view is not None and pruner is not None:
            pruned = pruner.evaluate(
                self,
                view,
                features,
                (probabilities, predicted_labels),
                chunk_size,
                route_labels=predicted_labels,
            )
            if pruned is not None:
                return pruned
        state = view if view is not None else self._evaluation_state()
        return self._evaluate_rows(
            state, features, (probabilities, predicted_labels), chunk_size
        )

    def _evaluate_rows(self, state, features, payload, chunk_size) -> DecisionBatch:
        """Chunked committee evaluation against one evaluation state."""
        probabilities, predicted_labels = payload
        chunk = _evaluation_chunk(
            len(state.features), chunk_size, self._n_classes
        )
        chunks = [
            self._evaluate_chunk(
                features[start : start + chunk],
                probabilities[start : start + chunk],
                predicted_labels[start : start + chunk],
                state,
            )
            for start in range(0, len(features), chunk)
        ]
        return DecisionBatch.concatenate(
            chunks, expert_names=tuple(f.name for f in self.functions)
        )

    def _evaluate_chunk(
        self, features, probabilities, predicted_labels, state
    ) -> DecisionBatch:
        subset = self.weighting.select_batch(state.features, features)
        # Selection, weights and labels are expert-independent: bin them
        # once and share across the committee.
        binning = bin_subset_by_label(subset, state.labels, self._n_classes)
        assessments = []
        for function, layout in zip(self.functions, state.layouts):
            test_scores = function.score_all_labels(probabilities)
            pvalues = pvalues_from_binning(
                layout,
                binning,
                test_scores,
                weight_mode=self.weight_mode,
                tail=function.tail,
            )
            assessments.append(
                assess_batch(
                    pvalues,
                    predicted_labels,
                    epsilon=self.epsilon,
                    gaussian_scale=self.gaussian_scale,
                    credibility_threshold=self.credibility_threshold,
                    confidence_threshold=self.confidence_threshold,
                    function_name=function.name,
                )
            )
        return self.committee.decide_batch(assessments)

    def evaluate_serial(self, features, probabilities, predicted_labels=None) -> list:
        """Per-sample reference implementation (pre-batch engine).

        Kept for the batch-vs-serial equivalence tests and throughput
        benchmarks; production callers should use :meth:`evaluate`.
        """
        self._require_calibrated()
        features, probabilities, predicted_labels = self._check_evaluate_inputs(
            features, probabilities, predicted_labels
        )
        return [
            self._evaluate_one_serial(
                features[i], probabilities[i], int(predicted_labels[i])
            )
            for i in range(len(features))
        ]

    def _evaluate_one_serial(self, feature, probability_row, predicted_label) -> Decision:
        subset = self.weighting.select(self._features, np.asarray(feature, dtype=float))
        assessments = []
        for function, calibration_scores in zip(self.functions, self._scores):
            test_scores = function.score_all_labels(probability_row.reshape(1, -1))[0]
            pvalues = pvalues_all_labels(
                calibration_scores,
                self._labels,
                subset,
                test_scores,
                self._n_classes,
                weight_mode=self.weight_mode,
                tail=function.tail,
            )
            assessments.append(
                assess(
                    pvalues,
                    predicted_label,
                    epsilon=self.epsilon,
                    gaussian_scale=self.gaussian_scale,
                    credibility_threshold=self.credibility_threshold,
                    confidence_threshold=self.confidence_threshold,
                    function_name=function.name,
                )
            )
        return self.committee.decide(assessments)

    def prediction_region(self, feature, probability_row) -> np.ndarray:
        """Return the committee prediction region for one sample.

        A label is in the region when a majority of experts include it
        in their CP prediction set at level epsilon.  Used by the
        initialization assessment's coverage computation.
        """
        membership = self.prediction_region_batch(
            np.asarray(feature, dtype=float).ravel().reshape(1, -1),
            np.asarray(probability_row, dtype=float).ravel().reshape(1, -1),
        )
        return np.flatnonzero(membership[0])

    def prediction_region_batch(
        self, features, probabilities, chunk_size=None
    ) -> np.ndarray:
        """Return ``(n_test, n_classes)`` region-membership for a batch.

        ``membership[i, y]`` is True when a majority of experts include
        label ``y`` in their CP prediction set for sample ``i``.
        """
        self._require_calibrated()
        features, probabilities, _ = self._check_evaluate_inputs(
            features, probabilities, None
        )
        view = _segment_view(self)
        state = view if view is not None else self._evaluation_state()
        chunk = _evaluation_chunk(
            len(state.features), chunk_size, self._n_classes
        )
        membership = np.empty((len(features), self._n_classes), dtype=bool)
        for start in range(0, len(features), chunk):
            stop = min(len(features), start + chunk)
            subset = self.weighting.select_batch(
                state.features, features[start:stop]
            )
            binning = bin_subset_by_label(subset, state.labels, self._n_classes)
            inclusion_votes = np.zeros((stop - start, self._n_classes))
            for function, layout in zip(self.functions, state.layouts):
                test_scores = function.score_all_labels(probabilities[start:stop])
                pvalues = pvalues_from_binning(
                    layout,
                    binning,
                    test_scores,
                    weight_mode=self.weight_mode,
                    tail=function.tail,
                )
                inclusion_votes += (pvalues > self.epsilon).astype(float)
            membership[start:stop] = inclusion_votes > 0.5 * len(self.functions)
        return membership


class PromRegressor:
    """Drift detector for regression models (paper Sec. 5.1.1/5.1.2).

    Ground truth is unavailable at deployment, so the test residual is
    approximated against the k-NN average of calibration targets
    (k=3 by default).  Classification-style p-values operate over
    K-means cluster pseudo-labels of the calibration features, with K
    chosen by the Gap statistic unless fixed.

    ``calibration_residuals`` controls how the *calibration* scores are
    computed: ``"loo"`` (default) approximates each calibration
    sample's target with leave-one-out k-NN, exactly mirroring how the
    test score is built, which keeps calibration and test scores
    exchangeable even when the underlying model is very accurate;
    ``"true"`` uses the known calibration ground truth (the paper's
    literal formulation).
    """

    # compose-aware state descriptors — see PromClassifier
    _features = ComposedStateAttr()
    _targets = ComposedStateAttr()
    _clusters = ComposedStateAttr()
    _scores = ComposedStateAttr()
    _layouts = ComposedStateAttr()

    def __init__(
        self,
        score_functions=None,
        epsilon: float = 0.1,
        k_neighbors: int = 3,
        n_clusters: int | None = None,
        fraction: float = 0.5,
        min_calibration: int = 200,
        tau: float | None = None,
        gaussian_scale: float = 1.0,
        credibility_threshold: float | None = None,
        confidence_threshold: float = 0.9,
        vote_threshold: float = 0.5,
        weight_mode: str = "count",
        calibration_residuals: str = "loo",
        seed: int = 0,
        weighting: AdaptiveWeighting | None = None,
    ):
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if k_neighbors < 1:
            raise ConfigurationError("k_neighbors must be >= 1")
        if calibration_residuals not in ("loo", "true"):
            raise ConfigurationError(
                f"calibration_residuals must be 'loo' or 'true', "
                f"got {calibration_residuals!r}"
            )
        self.score_functions = (
            list(score_functions)
            if score_functions is not None
            else default_regression_scores()
        )
        if not self.score_functions:
            raise ConfigurationError("need at least one regression score function")
        self.epsilon = epsilon
        self.k_neighbors = k_neighbors
        self.n_clusters = n_clusters
        self.gaussian_scale = gaussian_scale
        self.credibility_threshold = credibility_threshold
        self.confidence_threshold = confidence_threshold
        self.weight_mode = weight_mode
        self.calibration_residuals = calibration_residuals
        self.seed = seed
        self.weighting = weighting or AdaptiveWeighting(
            fraction=fraction, min_samples=min_calibration, tau=tau
        )
        self.committee = ExpertCommittee(vote_threshold=vote_threshold)

    # -- design time -----------------------------------------------------------
    def calibrate(self, features, predictions, targets) -> "PromRegressor":
        """Precompute residual scores and cluster pseudo-labels offline."""
        features, predictions, targets = _check_calibration_inputs(
            features, predictions, targets
        )
        predictions = predictions.astype(float).ravel()
        targets = np.asarray(targets, dtype=float).ravel()
        self._features = features
        self._targets = targets
        self.weighting.resolve_tau(features)
        if self.calibration_residuals == "loo":
            reference = self._loo_targets(features, targets)
        else:
            reference = targets
        self._scores = [
            function.score(predictions, reference) for function in self.score_functions
        ]
        self.clusterer_ = CalibrationClusterer(
            n_clusters=self.n_clusters, seed=self.seed
        ).fit(features)
        self._clusters = self.clusterer_.labels_
        self._layouts = [
            group_scores_by_label(scores, self._clusters, self.clusterer_.k_)
            for scores in self._scores
        ]
        return self

    @property
    def is_calibrated(self) -> bool:
        # hook-free check: must not trigger lazy compose materialization
        return state_is_set(self, "_features")

    @property
    def calibration_size(self) -> int:
        """Number of calibration samples backing the detector (0 before
        ``calibrate()``).  Counted from the pending compose bundle when
        one exists, so asking never forces the flat materialization."""
        if not self.is_calibrated:
            return 0
        bundle = _pending_bundle(self)
        if bundle is not None:
            return len(bundle.fields["_features"])
        return len(self._features)

    def _require_calibrated(self):
        if not self.is_calibrated:
            raise NotCalibratedError("call calibrate() before evaluating samples")

    def _evaluation_state(self) -> EvaluationView:
        """The flat-state evaluation view (materializes composed state)."""
        return EvaluationView(
            features=self._features,
            labels=self._clusters,
            layouts=tuple(self._layouts),
            n_labels=self.clusterer_.k_,
            targets=self._targets,
        )

    def _loo_targets(self, features: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Leave-one-out k-NN approximation of each calibration target."""
        n = len(features)
        k = min(self.k_neighbors, max(1, n - 1))
        squared = squared_distance_matrix(features)
        np.fill_diagonal(squared, np.inf)
        nearest = np.argpartition(squared, k - 1, axis=1)[:, :k]
        return targets[nearest].mean(axis=1)

    def approximate_target(self, feature) -> float:
        """k-NN estimate of the unseen ground truth for one test sample."""
        self._require_calibrated()
        feature = np.asarray(feature, dtype=float).ravel()
        distances = np.sqrt(np.sum((self._features - feature) ** 2, axis=1))
        k = min(self.k_neighbors, len(distances))
        nearest = np.argpartition(distances, k - 1)[:k]
        return float(self._targets[nearest].mean())

    def approximate_target_batch(self, features, chunk_size=None) -> np.ndarray:
        """k-NN ground-truth estimates for a batch of test samples.

        The test-vs-calibration distance matrix is built in
        memory-bounded chunks; each chunk needs one ``argpartition``
        and one gather-mean.  Runs segment-direct (bit-identical, no
        flat concat) when the state sits behind a pending compose
        bundle.
        """
        self._require_calibrated()
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        view = _segment_view(self)
        state = view if view is not None else self._evaluation_state()
        return self._approximate_targets(features, state, chunk_size)

    def _approximate_targets(self, features, state, chunk_size=None) -> np.ndarray:
        """k-NN target estimates against one evaluation state."""
        k = min(self.k_neighbors, len(state.features))
        approximations = np.empty(len(features))
        for start, stop, block in iter_squared_distance_chunks(
            features, state.features, chunk_size
        ):
            nearest = np.argpartition(block, k - 1, axis=1)[:, :k]
            approximations[start:stop] = state.targets[nearest].mean(axis=1)
        return approximations

    # -- deployment --------------------------------------------------------------
    def evaluate_one(self, feature, prediction: float) -> Decision:
        """Assess one regression prediction; returns the committee Decision.

        Thin compatibility wrapper over the batch engine (a batch of
        one), mirroring :meth:`PromClassifier.evaluate_one`.
        """
        batch = self.evaluate(
            np.asarray(feature, dtype=float).ravel().reshape(1, -1),
            np.asarray([prediction], dtype=float),
        )
        return batch[0]

    def evaluate(self, features, predictions, chunk_size=None) -> DecisionBatch:
        """Assess a batch of regression predictions with the batch engine.

        Mirrors :meth:`PromClassifier.evaluate`, including the
        segment-direct path over a pending compose bundle, the optional
        ``_pruner`` shard restriction, and the ``_chunk_size`` default.
        """
        self._require_calibrated()
        features = np.asarray(features, dtype=float)
        predictions = np.asarray(predictions, dtype=float).ravel()
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if chunk_size is None:
            chunk_size = getattr(self, "_chunk_size", None)
        view = _segment_view(self)
        pruner = self.__dict__.get("_pruner")
        if view is not None and pruner is not None:
            pruned = pruner.evaluate(
                self, view, features, (predictions,), chunk_size
            )
            if pruned is not None:
                return pruned
        state = view if view is not None else self._evaluation_state()
        return self._evaluate_rows(state, features, (predictions,), chunk_size)

    def _evaluate_rows(self, state, features, payload, chunk_size) -> DecisionBatch:
        """Chunked committee evaluation against one evaluation state."""
        (predictions,) = payload
        chunk = _evaluation_chunk(
            len(state.features), chunk_size, self.clusterer_.k_
        )
        chunks = [
            self._evaluate_chunk(
                features[start : start + chunk],
                predictions[start : start + chunk],
                state,
            )
            for start in range(0, len(features), chunk)
        ]
        return DecisionBatch.concatenate(
            chunks, expert_names=tuple(f.name for f in self.score_functions)
        )

    def _evaluate_chunk(self, features, predictions, state) -> DecisionBatch:
        approx_targets = self._approximate_targets(features, state)
        subset = self.weighting.select_batch(state.features, features)
        binning = bin_subset_by_label(subset, state.labels, self.clusterer_.k_)
        assigned_clusters = np.asarray(
            self.clusterer_.assign(features), dtype=int
        )
        n_clusters = self.clusterer_.k_
        assessments = []
        for function, layout in zip(self.score_functions, state.layouts):
            test_scores = function.score(predictions, approx_targets)
            # The same residual score stands in for every candidate
            # cluster (the scalar path's np.full, batched).
            test_matrix = np.repeat(
                np.asarray(test_scores, dtype=float)[:, None], n_clusters, axis=1
            )
            pvalues = pvalues_from_binning(
                layout,
                binning,
                test_matrix,
                weight_mode=self.weight_mode,
            )
            assessments.append(
                assess_batch(
                    pvalues,
                    assigned_clusters,
                    epsilon=self.epsilon,
                    gaussian_scale=self.gaussian_scale,
                    credibility_threshold=self.credibility_threshold,
                    confidence_threshold=self.confidence_threshold,
                    function_name=function.name,
                )
            )
        return self.committee.decide_batch(assessments)

    def evaluate_serial(self, features, predictions) -> list:
        """Per-sample reference implementation (pre-batch engine).

        Kept for the batch-vs-serial equivalence tests and throughput
        benchmarks; production callers should use :meth:`evaluate`.
        """
        self._require_calibrated()
        features = np.asarray(features, dtype=float)
        predictions = np.asarray(predictions, dtype=float).ravel()
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return [
            self._evaluate_one_serial(features[i], float(predictions[i]))
            for i in range(len(features))
        ]

    def _evaluate_one_serial(self, feature, prediction: float) -> Decision:
        feature = np.asarray(feature, dtype=float).ravel()
        approx_target = self.approximate_target(feature)
        subset = self.weighting.select(self._features, feature)
        assigned_cluster = int(self.clusterer_.assign(feature.reshape(1, -1))[0])
        n_clusters = self.clusterer_.k_

        assessments = []
        for function, calibration_scores in zip(self.score_functions, self._scores):
            test_score = float(
                function.score(
                    np.asarray([prediction], dtype=float),
                    np.asarray([approx_target], dtype=float),
                )[0]
            )
            pvalues = pvalues_all_labels(
                calibration_scores,
                self._clusters,
                subset,
                np.full(n_clusters, test_score),
                n_clusters,
                weight_mode=self.weight_mode,
            )
            assessments.append(
                assess(
                    pvalues,
                    assigned_cluster,
                    epsilon=self.epsilon,
                    gaussian_scale=self.gaussian_scale,
                    credibility_threshold=self.credibility_threshold,
                    confidence_threshold=self.confidence_threshold,
                    function_name=function.name,
                )
            )
        return self.committee.decide(assessments)


def drifting_indices(decisions) -> np.ndarray:
    """Return the positions of decisions flagged as drifting."""
    if isinstance(decisions, DecisionBatch):
        return np.flatnonzero(decisions.drifting)
    return np.flatnonzero([decision.drifting for decision in decisions])


def accepted_indices(decisions) -> np.ndarray:
    """Return the positions of decisions the committee accepted."""
    if isinstance(decisions, DecisionBatch):
        return np.flatnonzero(np.asarray(decisions.accepted, dtype=bool))
    return np.flatnonzero([decision.accepted for decision in decisions])
