"""PromClassifier and PromRegressor — the top-level drift detectors.

Workflow (paper Figures 3 and 5):

1. **Design time** — ``calibrate()`` with the held-out calibration set:
   feature vectors, the underlying model's outputs, and ground truth.
   Per-sample nonconformity scores are precomputed offline for every
   expert (nonconformity function).
2. **Deployment** — ``evaluate()`` each test sample: select and weight
   the nearest calibration subset, compute per-expert credibility
   (p-value of the predicted label) and confidence (Gaussian of the
   prediction-set size), and majority-vote the accept/reject decision.
"""

from __future__ import annotations

import numpy as np

from .clustering import CalibrationClusterer
from .committee import Decision, ExpertCommittee
from .exceptions import CalibrationError, NotCalibratedError
from .nonconformity import (
    default_classification_functions,
    default_regression_scores,
)
from .pvalue import pvalues_all_labels
from .scores import assess
from .weighting import AdaptiveWeighting


def _check_calibration_inputs(features, outputs, targets):
    features = np.asarray(features, dtype=float)
    outputs = np.asarray(outputs, dtype=float)
    targets = np.asarray(targets)
    if features.ndim != 2:
        raise CalibrationError("calibration features must be 2-D")
    if len(features) == 0:
        raise CalibrationError("calibration set is empty")
    if len(features) != len(outputs) or len(features) != len(targets):
        raise CalibrationError(
            "calibration features, model outputs and targets must align"
        )
    return features, outputs, targets


class PromClassifier:
    """Drift detector for probabilistic classifiers.

    Args:
        functions: nonconformity functions forming the expert
            committee; defaults to the paper's LAC/TopK/APS/RAPS.
        epsilon: significance parameter (paper default 0.1); the CP
            prediction region keeps labels with p-value > epsilon.
        fraction, min_calibration, tau: adaptive-weighting parameters
            (paper defaults 0.5, 200, 500).
        gaussian_scale: the ``c`` of the confidence Gaussian.
        credibility_threshold: reject-side threshold on the p-value
            (default: epsilon).
        confidence_threshold: reject-side threshold on confidence.
        vote_threshold: committee acceptance fraction (0.5 = majority,
            ties reject).
    """

    def __init__(
        self,
        functions=None,
        epsilon: float = 0.1,
        fraction: float = 0.5,
        min_calibration: int = 200,
        tau: float | None = None,
        gaussian_scale: float = 1.0,
        credibility_threshold: float | None = None,
        confidence_threshold: float = 0.9,
        vote_threshold: float = 0.5,
        weight_mode: str = "count",
        weighting: AdaptiveWeighting | None = None,
    ):
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.functions = (
            list(functions)
            if functions is not None
            else default_classification_functions()
        )
        if not self.functions:
            raise ValueError("need at least one nonconformity function")
        self.epsilon = epsilon
        self.gaussian_scale = gaussian_scale
        self.credibility_threshold = credibility_threshold
        self.confidence_threshold = confidence_threshold
        self.weight_mode = weight_mode
        self.weighting = weighting or AdaptiveWeighting(
            fraction=fraction, min_samples=min_calibration, tau=tau
        )
        self.committee = ExpertCommittee(vote_threshold=vote_threshold)

    # -- design time -----------------------------------------------------------
    def calibrate(self, features, probabilities, labels) -> "PromClassifier":
        """Precompute per-expert nonconformity scores on the calibration set.

        Args:
            features: ``(n, d)`` feature vectors from the model's
                feature-extraction function.
            probabilities: ``(n, n_classes)`` model probability vectors.
            labels: true label indices (column indices of
                ``probabilities``).
        """
        features, probabilities, labels = _check_calibration_inputs(
            features, probabilities, labels
        )
        labels = labels.astype(int)
        if probabilities.ndim != 2:
            raise CalibrationError("probabilities must be (n, n_classes)")
        if labels.max(initial=0) >= probabilities.shape[1]:
            raise CalibrationError("label index exceeds probability columns")
        self._features = features
        self._labels = labels
        self._n_classes = probabilities.shape[1]
        self.weighting.resolve_tau(features)
        self._scores = [
            function.score(probabilities, labels) for function in self.functions
        ]
        return self

    @property
    def is_calibrated(self) -> bool:
        return hasattr(self, "_features")

    def _require_calibrated(self):
        if not self.is_calibrated:
            raise NotCalibratedError("call calibrate() before evaluating samples")

    # -- deployment --------------------------------------------------------------
    def evaluate_one(self, feature, probability_row, predicted_label=None) -> Decision:
        """Assess one test sample; returns the committee :class:`Decision`."""
        self._require_calibrated()
        probability_row = np.asarray(probability_row, dtype=float).ravel()
        if probability_row.shape[0] != self._n_classes:
            raise ValueError(
                f"probability vector has {probability_row.shape[0]} entries, "
                f"calibration used {self._n_classes} classes"
            )
        if predicted_label is None:
            predicted_label = int(np.argmax(probability_row))
        subset = self.weighting.select(self._features, np.asarray(feature, dtype=float))

        assessments = []
        for function, calibration_scores in zip(self.functions, self._scores):
            test_scores = function.score_all_labels(probability_row.reshape(1, -1))[0]
            pvalues = pvalues_all_labels(
                calibration_scores,
                self._labels,
                subset,
                test_scores,
                self._n_classes,
                weight_mode=self.weight_mode,
                tail=function.tail,
            )
            assessments.append(
                assess(
                    pvalues,
                    predicted_label,
                    epsilon=self.epsilon,
                    gaussian_scale=self.gaussian_scale,
                    credibility_threshold=self.credibility_threshold,
                    confidence_threshold=self.confidence_threshold,
                    function_name=function.name,
                )
            )
        return self.committee.decide(assessments)

    def evaluate(self, features, probabilities, predicted_labels=None) -> list:
        """Assess a batch of test samples; returns one Decision each."""
        features = np.asarray(features, dtype=float)
        probabilities = np.asarray(probabilities, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if probabilities.ndim == 1:
            probabilities = probabilities.reshape(1, -1)
        if predicted_labels is None:
            predicted_labels = np.argmax(probabilities, axis=1)
        return [
            self.evaluate_one(features[i], probabilities[i], int(predicted_labels[i]))
            for i in range(len(features))
        ]

    def prediction_region(self, feature, probability_row) -> np.ndarray:
        """Return the committee prediction region for one sample.

        A label is in the region when a majority of experts include it
        in their CP prediction set at level epsilon.  Used by the
        initialization assessment's coverage computation.
        """
        self._require_calibrated()
        probability_row = np.asarray(probability_row, dtype=float).ravel()
        subset = self.weighting.select(self._features, np.asarray(feature, dtype=float))
        inclusion_votes = np.zeros(self._n_classes)
        for function, calibration_scores in zip(self.functions, self._scores):
            test_scores = function.score_all_labels(probability_row.reshape(1, -1))[0]
            pvalues = pvalues_all_labels(
                calibration_scores,
                self._labels,
                subset,
                test_scores,
                self._n_classes,
                weight_mode=self.weight_mode,
                tail=function.tail,
            )
            inclusion_votes += (pvalues > self.epsilon).astype(float)
        return np.flatnonzero(inclusion_votes > 0.5 * len(self.functions))


class PromRegressor:
    """Drift detector for regression models (paper Sec. 5.1.1/5.1.2).

    Ground truth is unavailable at deployment, so the test residual is
    approximated against the k-NN average of calibration targets
    (k=3 by default).  Classification-style p-values operate over
    K-means cluster pseudo-labels of the calibration features, with K
    chosen by the Gap statistic unless fixed.

    ``calibration_residuals`` controls how the *calibration* scores are
    computed: ``"loo"`` (default) approximates each calibration
    sample's target with leave-one-out k-NN, exactly mirroring how the
    test score is built, which keeps calibration and test scores
    exchangeable even when the underlying model is very accurate;
    ``"true"`` uses the known calibration ground truth (the paper's
    literal formulation).
    """

    def __init__(
        self,
        score_functions=None,
        epsilon: float = 0.1,
        k_neighbors: int = 3,
        n_clusters: int | None = None,
        fraction: float = 0.5,
        min_calibration: int = 200,
        tau: float | None = None,
        gaussian_scale: float = 1.0,
        credibility_threshold: float | None = None,
        confidence_threshold: float = 0.9,
        vote_threshold: float = 0.5,
        weight_mode: str = "count",
        calibration_residuals: str = "loo",
        seed: int = 0,
        weighting: AdaptiveWeighting | None = None,
    ):
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be >= 1")
        if calibration_residuals not in ("loo", "true"):
            raise ValueError(
                f"calibration_residuals must be 'loo' or 'true', "
                f"got {calibration_residuals!r}"
            )
        self.score_functions = (
            list(score_functions)
            if score_functions is not None
            else default_regression_scores()
        )
        if not self.score_functions:
            raise ValueError("need at least one regression score function")
        self.epsilon = epsilon
        self.k_neighbors = k_neighbors
        self.n_clusters = n_clusters
        self.gaussian_scale = gaussian_scale
        self.credibility_threshold = credibility_threshold
        self.confidence_threshold = confidence_threshold
        self.weight_mode = weight_mode
        self.calibration_residuals = calibration_residuals
        self.seed = seed
        self.weighting = weighting or AdaptiveWeighting(
            fraction=fraction, min_samples=min_calibration, tau=tau
        )
        self.committee = ExpertCommittee(vote_threshold=vote_threshold)

    # -- design time -----------------------------------------------------------
    def calibrate(self, features, predictions, targets) -> "PromRegressor":
        """Precompute residual scores and cluster pseudo-labels offline."""
        features, predictions, targets = _check_calibration_inputs(
            features, predictions, targets
        )
        predictions = predictions.astype(float).ravel()
        targets = np.asarray(targets, dtype=float).ravel()
        self._features = features
        self._targets = targets
        self.weighting.resolve_tau(features)
        if self.calibration_residuals == "loo":
            reference = self._loo_targets(features, targets)
        else:
            reference = targets
        self._scores = [
            function.score(predictions, reference) for function in self.score_functions
        ]
        self.clusterer_ = CalibrationClusterer(
            n_clusters=self.n_clusters, seed=self.seed
        ).fit(features)
        self._clusters = self.clusterer_.labels_
        return self

    @property
    def is_calibrated(self) -> bool:
        return hasattr(self, "_features")

    def _require_calibrated(self):
        if not self.is_calibrated:
            raise NotCalibratedError("call calibrate() before evaluating samples")

    def _loo_targets(self, features: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Leave-one-out k-NN approximation of each calibration target."""
        n = len(features)
        k = min(self.k_neighbors, max(1, n - 1))
        squared = (
            np.sum(features * features, axis=1)[:, None]
            + np.sum(features * features, axis=1)[None, :]
            - 2.0 * features @ features.T
        )
        np.fill_diagonal(squared, np.inf)
        nearest = np.argpartition(squared, k - 1, axis=1)[:, :k]
        return targets[nearest].mean(axis=1)

    def approximate_target(self, feature) -> float:
        """k-NN estimate of the unseen ground truth for one test sample."""
        self._require_calibrated()
        feature = np.asarray(feature, dtype=float).ravel()
        distances = np.sqrt(np.sum((self._features - feature) ** 2, axis=1))
        k = min(self.k_neighbors, len(distances))
        nearest = np.argpartition(distances, k - 1)[:k]
        return float(self._targets[nearest].mean())

    # -- deployment --------------------------------------------------------------
    def evaluate_one(self, feature, prediction: float) -> Decision:
        """Assess one regression prediction; returns the committee Decision."""
        self._require_calibrated()
        feature = np.asarray(feature, dtype=float).ravel()
        approx_target = self.approximate_target(feature)
        subset = self.weighting.select(self._features, feature)
        assigned_cluster = int(self.clusterer_.assign(feature.reshape(1, -1))[0])
        n_clusters = self.clusterer_.k_

        assessments = []
        for function, calibration_scores in zip(self.score_functions, self._scores):
            test_score = float(
                function.score(
                    np.asarray([prediction], dtype=float),
                    np.asarray([approx_target], dtype=float),
                )[0]
            )
            pvalues = pvalues_all_labels(
                calibration_scores,
                self._clusters,
                subset,
                np.full(n_clusters, test_score),
                n_clusters,
                weight_mode=self.weight_mode,
            )
            assessments.append(
                assess(
                    pvalues,
                    assigned_cluster,
                    epsilon=self.epsilon,
                    gaussian_scale=self.gaussian_scale,
                    credibility_threshold=self.credibility_threshold,
                    confidence_threshold=self.confidence_threshold,
                    function_name=function.name,
                )
            )
        return self.committee.decide(assessments)

    def evaluate(self, features, predictions) -> list:
        """Assess a batch of regression predictions."""
        features = np.asarray(features, dtype=float)
        predictions = np.asarray(predictions, dtype=float).ravel()
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return [
            self.evaluate_one(features[i], float(predictions[i]))
            for i in range(len(features))
        ]


def drifting_indices(decisions) -> np.ndarray:
    """Return the positions of decisions flagged as drifting."""
    return np.flatnonzero([decision.drifting for decision in decisions])


def accepted_indices(decisions) -> np.ndarray:
    """Return the positions of decisions the committee accepted."""
    return np.flatnonzero([decision.accepted for decision in decisions])
