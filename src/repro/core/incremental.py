"""Incremental learning from Prom-flagged drifting samples (Sec. 5.4).

The loop: run the deployed model over a test stream, collect the
samples the committee rejects, relabel a small budget of them (the
paper uses at most 5%, sometimes a single sample), fold the relabelled
data back into the model, and recalibrate Prom.  Relabelling priority
is lowest-credibility first — the strangest samples carry the most
information about the drifted distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .committee import DecisionBatch
from .prom import drifting_indices
from .exceptions import ConfigurationError


@dataclass(frozen=True)
class IncrementalResult:
    """Outcome of one incremental-learning round.

    ``calibration_size`` records the detector's calibration-set size
    after the round — with the capped store it must never exceed the
    interface's ``max_calibration``.
    """

    n_flagged: int
    n_relabelled: int
    relabelled_indices: np.ndarray
    budget_fraction: float
    calibration_size: int = 0


def select_relabel_budget(
    decisions,
    budget_fraction: float = 0.05,
    minimum: int = 1,
) -> np.ndarray:
    """Pick which flagged samples to relabel, lowest credibility first.

    Args:
        decisions: per-sample committee decisions from ``evaluate``.
        budget_fraction: share of *flagged* samples to relabel (paper:
            up to 5%).
        minimum: always relabel at least this many flagged samples when
            any exist (case study 1 recovers with one).

    Returns:
        indices (into the decision list) of the samples to relabel;
        empty when nothing was flagged.
    """
    if not 0.0 < budget_fraction <= 1.0:
        raise ConfigurationError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
    flagged = drifting_indices(decisions)
    if len(flagged) == 0:
        return flagged
    budget = max(minimum, int(round(budget_fraction * len(flagged))))
    budget = min(budget, len(flagged))
    if isinstance(decisions, DecisionBatch):
        credibilities = np.asarray(decisions.credibility, dtype=float)[flagged]
    else:
        credibilities = np.asarray([decisions[i].credibility for i in flagged])
    order = np.argsort(credibilities, kind="stable")
    return flagged[order[:budget]]


def incremental_learning_round(
    interface,
    X_test,
    oracle_labels,
    budget_fraction: float = 0.05,
    epochs: int = 20,
) -> IncrementalResult:
    """One full detect-relabel-retrain round against a test stream.

    Args:
        interface: a trained :class:`~repro.core.interface.ModelInterface`
            (or regression variant).
        X_test: deployment-time inputs.
        oracle_labels: ground truth used *only* for the relabelled
            budget — this models the user/profiler supplying labels for
            flagged samples.
        budget_fraction: share of flagged samples to relabel.
        epochs: partial-fit epochs for the model update.
    """
    X_test = np.asarray(X_test)
    oracle_labels = np.asarray(oracle_labels)
    _, decisions = interface.predict(X_test)
    chosen = select_relabel_budget(decisions, budget_fraction)
    if len(chosen) > 0:
        interface.incremental_update(X_test[chosen], oracle_labels[chosen], epochs=epochs)
    return IncrementalResult(
        n_flagged=len(drifting_indices(decisions)),
        n_relabelled=len(chosen),
        relabelled_indices=chosen,
        budget_fraction=budget_fraction,
        calibration_size=interface.prom.calibration_size,
    )
