"""Router-aware candidate-shard pruning for segment-direct evaluate.

Segment-direct evaluation (DESIGN.md §9) scores every test sample
against the *whole* composed calibration set.  But a sharded store
already encodes locality: a router keeps samples that share a feature
region (or a label) on the same shard, and the adaptive weighting's
nearest-fraction selection mostly picks calibration rows from shards
near the test sample anyway.  The :class:`CandidatePruner` exploits
that — each test sample is scored only against its *primary* shard
plus a configurable spill fraction of the nearest sibling shards:

* primary shard: the store router's own assignment when it can route
  test samples (cluster routing by fitted center; label routing by the
  model's *predicted* label), otherwise the nearest shard centroid;
* spill shards: ``ceil(spill * (n_active - 1))`` siblings nearest by
  shard centroid (fitted router centers when available, per-block
  feature means otherwise), taken in ascending shard order so the
  restricted block view preserves the global layout order.

``spill=1.0`` keeps every shard for every sample, which short-circuits
to the unpruned segment-direct path — **bit-identical** to the flat
GEMM by the §9 contract.  ``spill < 1.0`` trades decision fidelity for
a ``~1/spill`` smaller GEMM and gather per sample; the coverage delta
is measured per router in ``benchmarks/bench_segment_eval.py``.

Pruned evaluation is the *unpruned machinery over a restricted block
view*: selection (the nearest-fraction rule applies to the candidate
pool), binning, p-values and committee vote are byte-for-byte the same
kernels.  Whole-batch observability rides on the returned
:class:`~repro.core.committee.DecisionBatch` (``n_candidates_scored``,
``n_shards_pruned``) and is surfaced per stream step and in the
serving-plane stats.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from .committee import DecisionBatch
from .exceptions import CalibrationError, ConfigurationError
from .weighting import squared_distance_matrix


class CandidatePruner:
    """Restricts each test sample's evaluation to candidate shards.

    Args:
        router: the store's :class:`~repro.core.sharding.ShardRouter`
            (or ``None``); used to assign test samples their primary
            shard and, when it exposes fitted ``centers``, to order
            sibling shards by affinity.
        spill: fraction of the remaining (non-primary) active shards
            each sample additionally scores, in ``[0, 1]``.  ``1.0``
            (the default) scores every shard — exactly the unpruned
            segment-direct evaluation, bit-identical to the flat path.

    The pruner is installed on a detector as ``prom._pruner``; it holds
    per-bundle caches (centroids, candidate lists) keyed on the current
    evaluation view, re-derived whenever a mutation publishes a new
    bundle.  Detector snapshots share the pruner object — its caches
    are read-mostly and the evaluation view they key on is immutable.
    """

    def __init__(self, router=None, spill: float = 1.0):
        if not 0.0 <= spill <= 1.0:
            raise ConfigurationError(f"spill must be in [0, 1], got {spill}")
        self.router = router
        self.spill = float(spill)
        self._cached_view = None
        self._centroids = None
        self._candidate_cache: dict = {}

    def candidate_shard_count(self, n_active: int) -> int:
        """Candidate shards per sample given ``n_active`` non-empty shards."""
        if n_active <= 1:
            return n_active
        return min(n_active, 1 + math.ceil(self.spill * (n_active - 1)))

    # -- per-bundle geometry -----------------------------------------------------
    def _view_centroids(self, view) -> np.ndarray:
        """Per-block centroids (NaN rows for empty blocks), cached per view."""
        if self._cached_view is view and self._centroids is not None:
            return self._centroids
        segments = view.features.segments
        centers = getattr(self.router, "centers", None)
        if centers is not None and len(centers) == len(segments):
            centroids = np.asarray(centers, dtype=float)
        else:
            d = segments[0].shape[1]
            centroids = np.full((len(segments), d), np.nan)
            for position, block in enumerate(segments):
                if len(block):
                    centroids[position] = block.mean(axis=0)
        self._cached_view = view
        self._centroids = centroids
        self._candidate_cache = {}
        return centroids

    def _active_positions(self, view) -> list:
        """Block positions with at least one calibration row."""
        return [
            position
            for position, block in enumerate(view.features.segments)
            if len(block)
        ]

    def _primary_positions(self, view, features, route_labels, active) -> np.ndarray:
        """Each test row's primary block position (always an active one)."""
        centroids = self._view_centroids(view)
        primary = None
        if self.router is not None and getattr(self.router, "is_fitted", False):
            try:
                routed = np.asarray(
                    self.router.route(features, labels=route_labels), dtype=int
                )
            except CalibrationError:
                routed = None
            if routed is not None:
                # router shard ids are block positions in bundle order
                position_of = {view.shard_ids[p]: p for p in range(len(view.shard_ids))}
                primary = np.asarray(
                    [position_of.get(int(shard), -1) for shard in routed], dtype=int
                )
        active_centroids = centroids[active]
        if primary is None:
            nearest = np.argmin(
                squared_distance_matrix(features, active_centroids), axis=1
            )
            return np.asarray(active, dtype=int)[nearest]
        is_active = np.zeros(len(view.features.segments) + 1, dtype=bool)
        is_active[active] = True
        misrouted = ~is_active[primary]
        if misrouted.any():
            nearest = np.argmin(
                squared_distance_matrix(features[misrouted], active_centroids),
                axis=1,
            )
            primary[misrouted] = np.asarray(active, dtype=int)[nearest]
        return primary

    def _candidates(self, primary: int, active, centroids, count: int) -> tuple:
        """Candidate block positions for one primary shard, ascending."""
        cached = self._candidate_cache.get((primary, count))
        if cached is not None:
            return cached
        others = [p for p in active if p != primary]
        if count <= 1 or not others:
            positions = (primary,)
        else:
            distances = np.einsum(
                "ij,ij->i", centroids[others] - centroids[primary],
                centroids[others] - centroids[primary],
            )
            order = np.argsort(distances, kind="stable")[: count - 1]
            positions = tuple(sorted([primary] + [others[i] for i in order]))
        self._candidate_cache[(primary, count)] = positions
        return positions

    # -- evaluation --------------------------------------------------------------
    def evaluate(
        self, prom, view, features, payload, chunk_size, route_labels=None
    ) -> DecisionBatch | None:
        """Shard-pruned evaluation of a test batch against ``view``.

        Groups the batch by primary shard, evaluates each group with
        the detector's unpruned machinery over the candidate-restricted
        block view, and reassembles the caller's row order.  Returns
        ``None`` when pruning does not apply (empty view or batch) —
        the caller then runs the plain path.
        """
        n_test = len(features)
        active = self._active_positions(view)
        if not active or n_test == 0:
            return None
        total_rows = len(view.features)
        count = self.candidate_shard_count(len(active))
        if count >= len(active):
            # every shard is a candidate: the unpruned segment-direct
            # path, bit-identical to the flat GEMM
            batch = prom._evaluate_rows(view, features, payload, chunk_size)
            return replace(
                batch,
                n_candidates_scored=n_test * total_rows,
                n_shards_pruned=0,
            )
        centroids = self._view_centroids(view)
        primary = self._primary_positions(view, features, route_labels, active)
        batches = []
        row_groups = []
        scored = 0
        pruned = 0
        for shard in np.unique(primary):
            rows = np.flatnonzero(primary == shard)
            positions = self._candidates(int(shard), active, centroids, count)
            restricted = view.restrict(positions)
            batches.append(
                prom._evaluate_rows(
                    restricted,
                    features[rows],
                    tuple(array[rows] for array in payload),
                    chunk_size,
                )
            )
            row_groups.append(rows)
            scored += len(rows) * len(restricted.features)
            pruned += len(rows) * (len(active) - len(positions))
        order = np.concatenate(row_groups)
        inverse = np.empty(n_test, dtype=int)
        inverse[order] = np.arange(n_test)
        combined = DecisionBatch.concatenate(
            batches, expert_names=batches[0].expert_names
        ).take(inverse)
        return replace(
            combined, n_candidates_scored=scored, n_shards_pruned=pruned
        )
