"""Prom core: conformal-prediction drift detection (the paper's contribution)."""

from .assessment import (
    CoverageReport,
    GridSearchResult,
    coverage_assessment,
    grid_search,
)
from .clustering import CalibrationClusterer
from .committee import Decision, ExpertCommittee, unanimous_assessment
from .exceptions import (
    CalibrationError,
    InitializationWarningError,
    NotCalibratedError,
    PromError,
)
from .incremental import (
    IncrementalResult,
    incremental_learning_round,
    select_relabel_budget,
)
from .interface import ModelInterface, RegressionModelInterface
from .metrics import (
    DetectionMetrics,
    coverage_deviation,
    detection_metrics,
    f1_score,
    geometric_mean,
    misprediction_mask_classification,
    misprediction_mask_performance,
    misprediction_mask_regression,
    performance_to_oracle,
)
from .nonconformity import (
    APS,
    LAC,
    RAPS,
    AbsoluteErrorScore,
    NonconformityFunction,
    NormalizedErrorScore,
    RegressionScore,
    SquaredErrorScore,
    TopK,
    default_classification_functions,
    default_regression_scores,
)
from .prom import PromClassifier, PromRegressor, accepted_indices, drifting_indices
from .report import DriftMonitor, DriftReport, summarize_decisions
from .pvalue import classification_pvalue, pvalues_all_labels, regression_pvalue
from .scores import (
    ExpertAssessment,
    assess,
    confidence_from_set_size,
    prediction_set,
)
from .weighting import AdaptiveWeighting, CalibrationSubset, UniformWeighting

__all__ = [
    "APS",
    "AbsoluteErrorScore",
    "AdaptiveWeighting",
    "CalibrationClusterer",
    "CalibrationError",
    "CalibrationSubset",
    "CoverageReport",
    "Decision",
    "DetectionMetrics",
    "DriftMonitor",
    "DriftReport",
    "ExpertAssessment",
    "ExpertCommittee",
    "GridSearchResult",
    "IncrementalResult",
    "InitializationWarningError",
    "LAC",
    "ModelInterface",
    "NonconformityFunction",
    "NormalizedErrorScore",
    "NotCalibratedError",
    "PromClassifier",
    "PromError",
    "PromRegressor",
    "RAPS",
    "RegressionModelInterface",
    "RegressionScore",
    "SquaredErrorScore",
    "TopK",
    "UniformWeighting",
    "accepted_indices",
    "assess",
    "classification_pvalue",
    "confidence_from_set_size",
    "coverage_assessment",
    "coverage_deviation",
    "default_classification_functions",
    "default_regression_scores",
    "detection_metrics",
    "drifting_indices",
    "f1_score",
    "geometric_mean",
    "grid_search",
    "incremental_learning_round",
    "misprediction_mask_classification",
    "misprediction_mask_performance",
    "misprediction_mask_regression",
    "performance_to_oracle",
    "prediction_set",
    "pvalues_all_labels",
    "regression_pvalue",
    "select_relabel_budget",
    "summarize_decisions",
    "unanimous_assessment",
]
