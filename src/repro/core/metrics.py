"""Evaluation metrics (paper Sec. 6.6).

Drift-detection metrics treat a *misprediction by the underlying
model* as the positive class and *Prom rejecting the prediction* as a
positive detection.  Code-optimization metrics express achieved
performance relative to an exhaustive oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from .exceptions import ValidationError


@dataclass(frozen=True)
class DetectionMetrics:
    """Confusion-style summary of drift detection quality."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    false_positive_rate: float
    false_negative_rate: float
    n_samples: int
    n_mispredictions: int

    def as_dict(self) -> dict:
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "false_positive_rate": self.false_positive_rate,
            "false_negative_rate": self.false_negative_rate,
            "n_samples": self.n_samples,
            "n_mispredictions": self.n_mispredictions,
        }


def detection_metrics(mispredicted, rejected) -> DetectionMetrics:
    """Score drift detection: mispredictions are positives.

    Args:
        mispredicted: boolean array — True where the underlying model
            got the sample wrong (ground truth).
        rejected: boolean array — True where Prom rejected the sample.
    """
    mispredicted = np.asarray(mispredicted, dtype=bool)
    rejected = np.asarray(rejected, dtype=bool)
    if mispredicted.shape != rejected.shape:
        raise ValidationError("mispredicted and rejected must align")
    n = len(mispredicted)
    if n == 0:
        raise ValidationError("cannot compute metrics on zero samples")

    tp = int(np.sum(mispredicted & rejected))
    fp = int(np.sum(~mispredicted & rejected))
    fn = int(np.sum(mispredicted & ~rejected))
    tn = int(np.sum(~mispredicted & ~rejected))

    accuracy = (tp + tn) / n
    precision = tp / (tp + fp) if (tp + fp) > 0 else 1.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 1.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    fpr = fp / (fp + tn) if (fp + tn) > 0 else 0.0
    fnr = fn / (fn + tp) if (fn + tp) > 0 else 0.0
    return DetectionMetrics(
        accuracy=accuracy,
        precision=precision,
        recall=recall,
        f1=f1,
        false_positive_rate=fpr,
        false_negative_rate=fnr,
        n_samples=n,
        n_mispredictions=int(mispredicted.sum()),
    )


def performance_to_oracle(achieved, oracle) -> np.ndarray:
    """Per-sample ratio of achieved performance to the oracle's best.

    Performance is "higher is better" (e.g. speedup); ratios are capped
    at 1.0 since the oracle is an exhaustive best.
    """
    achieved = np.asarray(achieved, dtype=float)
    oracle = np.asarray(oracle, dtype=float)
    if achieved.shape != oracle.shape:
        raise ValidationError("achieved and oracle must align")
    if np.any(oracle <= 0):
        raise ValidationError("oracle performance must be positive")
    return np.clip(achieved / oracle, 0.0, 1.0)


def misprediction_mask_classification(predictions, labels) -> np.ndarray:
    """Classification misprediction: predicted label differs from truth."""
    return np.asarray(predictions) != np.asarray(labels)


def misprediction_mask_performance(
    achieved, oracle, threshold: float = 0.2
) -> np.ndarray:
    """Code-optimization misprediction (case studies 1-3).

    A prediction counts as wrong when runtime performance is
    ``threshold`` (default 20%) or more below the oracle.
    """
    ratios = performance_to_oracle(achieved, oracle)
    return ratios < (1.0 - threshold)


def misprediction_mask_regression(
    predictions, targets, threshold: float = 0.2
) -> np.ndarray:
    """Regression misprediction (case study 5).

    A prediction counts as wrong when it deviates from the profiled
    value by ``threshold`` (default 20%) or more, relative to the
    target magnitude.
    """
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    scale = np.maximum(np.abs(targets), 1e-12)
    return np.abs(predictions - targets) / scale >= threshold


def geometric_mean(values) -> float:
    """Geometric mean of positive values (used for F1 summaries)."""
    values = np.asarray(values, dtype=float)
    if np.any(values <= 0):
        raise ValidationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


def f1_score(y_true, y_pred) -> float:
    """Binary F1 with True as the positive class."""
    y_true = np.asarray(y_true, dtype=bool)
    y_pred = np.asarray(y_pred, dtype=bool)
    tp = int(np.sum(y_true & y_pred))
    fp = int(np.sum(~y_true & y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2.0 * precision * recall / (precision + recall)


def coverage_deviation(coverage: float, epsilon: float) -> float:
    """Smaller-is-better gap between observed coverage and ``1 - epsilon``."""
    return abs(coverage - (1.0 - epsilon))
