"""Exception types raised by the Prom core.

One taxonomy, one root: every error the library raises on purpose
derives from :class:`PromError`, so callers can catch the whole family
with a single ``except PromError`` while still discriminating the
planes — calibration data (:class:`CalibrationError`), the async
serving plane (:class:`ServingError` and its retry/dead-letter
specialization :class:`RetryExhaustedError`), the durability layer
(:class:`CheckpointError`), and construction-time misconfiguration
(:class:`ConfigurationError`, which also IS-A :class:`ValueError` so
pre-taxonomy callers catching ``ValueError`` keep working).
"""


class PromError(Exception):
    """Base class for all Prom-specific errors."""


class NotCalibratedError(PromError):
    """An operation requiring calibration was invoked before calibrate()."""


class CalibrationError(PromError):
    """The supplied calibration data is unusable (empty, mismatched, ...)."""


class InitializationWarningError(PromError):
    """Raised by strict initialization assessment when coverage deviates
    from the configured significance level by more than the tolerance."""


class ConfigurationError(PromError, ValueError):
    """A constructor or configuration argument is invalid.

    Subclasses :class:`ValueError` too: code written before the unified
    taxonomy (``except ValueError`` around a constructor) keeps
    catching these.
    """


class ServingError(PromError):
    """The async serving plane rejected an operation (closed loop,
    structural mutation under live shard locks, drain timeout, ...)."""


class RetryExhaustedError(ServingError):
    """A maintenance job failed every retry attempt and was dead-lettered.

    Surfaced through :class:`~repro.core.serving.JobError` records (the
    worker loop never propagates) and through
    :attr:`~repro.core.serving.AsyncServingLoop.dead_letters`.
    """


class CheckpointError(PromError):
    """A checkpoint could not be written, or no generation could be
    restored (bad CRC, missing block, torn manifest with no valid
    predecessor, configuration mismatch with the target runtime)."""
