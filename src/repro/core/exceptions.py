"""Exception types raised by the Prom core."""


class PromError(Exception):
    """Base class for all Prom-specific errors."""


class NotCalibratedError(PromError):
    """An operation requiring calibration was invoked before calibrate()."""


class CalibrationError(PromError):
    """The supplied calibration data is unusable (empty, mismatched, ...)."""


class InitializationWarningError(PromError):
    """Raised by strict initialization assessment when coverage deviates
    from the configured significance level by more than the tolerance."""


class ServingError(PromError):
    """The async serving plane rejected an operation (closed loop,
    structural mutation under live shard locks, drain timeout, ...)."""
