"""Exception types raised by the Prom core.

One taxonomy, one root: every error the library raises on purpose
derives from :class:`PromError`, so callers can catch the whole family
with a single ``except PromError`` while still discriminating the
planes — calibration data (:class:`CalibrationError`), the async
serving plane (:class:`ServingError` and its retry/dead-letter
specialization :class:`RetryExhaustedError`, plus the sanitizer's
:class:`LockOrderError`), the durability layer
(:class:`CheckpointError`), construction-time misconfiguration
(:class:`ConfigurationError`), and call-time data problems
(:class:`ValidationError`).  The configuration/validation classes also
IS-A :class:`ValueError` — and :class:`NotFittedError` /
:class:`InternalError` IS-A :class:`RuntimeError` — so pre-taxonomy
callers catching the builtins keep working.  The promlint gate
(``python -m repro.analysis``, rule PL003) enforces that ``core/``
raises this taxonomy instead of bare builtins.
"""


class PromError(Exception):
    """Base class for all Prom-specific errors."""


class NotCalibratedError(PromError):
    """An operation requiring calibration was invoked before calibrate()."""


class CalibrationError(PromError):
    """The supplied calibration data is unusable (empty, mismatched, ...)."""


class InitializationWarningError(PromError):
    """Raised by strict initialization assessment when coverage deviates
    from the configured significance level by more than the tolerance."""


class ConfigurationError(PromError, ValueError):
    """A constructor or configuration argument is invalid.

    Subclasses :class:`ValueError` too: code written before the unified
    taxonomy (``except ValueError`` around a constructor) keeps
    catching these.
    """


class ValidationError(PromError, ValueError):
    """Runtime data handed to the library is unusable (misaligned
    arrays, wrong dimensionality, empty batches, out-of-range indices).

    Like :class:`ConfigurationError` it also IS-A :class:`ValueError`,
    so every pre-taxonomy ``except ValueError`` around an evaluate or
    update call keeps working.  The distinction from
    :class:`ConfigurationError` is *when* the mistake was made:
    construction time (configuration) versus call time (data).
    """


class NotFittedError(PromError, RuntimeError):
    """An estimator was used before ``fit()``.

    IS-A :class:`RuntimeError` for back-compat with pre-taxonomy
    callers (and with the ``ml/`` convention of raising
    ``RuntimeError('... not fitted')``).
    """


class InternalError(PromError, RuntimeError):
    """A library-internal invariant was violated (a plugin returned an
    out-of-contract result, an impossible state was reached).  These are
    bugs — in the library or in a user-supplied policy/router — not bad
    inputs; IS-A :class:`RuntimeError` keeps pre-taxonomy callers
    working."""


class ServingError(PromError):
    """The async serving plane rejected an operation (closed loop,
    structural mutation under live shard locks, drain timeout, ...)."""


class RetryExhaustedError(ServingError):
    """A maintenance job failed every retry attempt and was dead-lettered.

    Surfaced through :class:`~repro.core.serving.JobError` records (the
    worker loop never propagates) and through
    :attr:`~repro.core.serving.AsyncServingLoop.dead_letters`.
    """


class LockOrderError(ServingError):
    """The runtime lock-order sanitizer observed an out-of-order shard
    lock acquisition (a thread holding shard *i* tried to take shard
    *j* <= *i* in a separate ``acquire_shards`` call).  Such a pattern
    can deadlock against a concurrent worker; the sanitizer
    (:func:`~repro.core.sharding.enable_lock_order_sanitizer`, armed by
    the ``concurrency`` test fixture) turns the latent deadlock into an
    immediate failure."""


class SharedSegmentError(ServingError):
    """The shared-memory serving tier hit an unusable state: an arena
    export failed, a name-table block could not be created or attached,
    a worker found no publishable table, or the process pool was used
    after :meth:`~repro.core.multiproc.ProcessServingPool.close`.

    Torn name-table reads are *not* errors — readers fall back to the
    last good table and count the event — so this class marks the
    conditions with no such fallback."""


class CheckpointError(PromError):
    """A checkpoint could not be written, or no generation could be
    restored (bad CRC, missing block, torn manifest with no valid
    predecessor, configuration mismatch with the target runtime)."""
