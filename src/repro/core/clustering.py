"""Pseudo-labelling for regression tasks (paper Sec. 5.1.2).

Prom extends classification p-values to regression by clustering the
calibration feature vectors with K-means, choosing K via the Gap
statistic (2..20), and assigning a test sample the cluster of its
nearest calibration neighbour.
"""

from __future__ import annotations

import numpy as np

from ..ml.cluster import KMeans, gap_statistic
from ..ml.knn import pairwise_euclidean
from .exceptions import ConfigurationError, NotFittedError, ValidationError


class CalibrationClusterer:
    """Clusters calibration features into regression pseudo-labels.

    Args:
        n_clusters: fixed cluster count; ``None`` (default) chooses K by
            the Gap statistic over ``k_min..k_max``.
        k_min, k_max: Gap statistic search range (paper: 2..20).
        seed: RNG seed for K-means and the Gap references.
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        k_min: int = 2,
        k_max: int = 20,
        seed: int = 0,
    ):
        if n_clusters is not None and n_clusters < 1:
            raise ConfigurationError("n_clusters must be >= 1 when given")
        if k_min < 1 or k_max < k_min:
            raise ConfigurationError("need 1 <= k_min <= k_max")
        self.n_clusters = n_clusters
        self.k_min = k_min
        self.k_max = k_max
        self.seed = seed

    def fit(self, calibration_features) -> "CalibrationClusterer":
        """Cluster the calibration features; stores labels and centers."""
        features = np.asarray(calibration_features, dtype=float)
        if features.ndim != 2 or len(features) == 0:
            raise ValidationError("calibration_features must be a non-empty 2-D array")
        if self.n_clusters is not None:
            k = min(self.n_clusters, len(features))
        else:
            k, gaps = gap_statistic(
                features, k_min=self.k_min, k_max=self.k_max, seed=self.seed
            )
            self.gap_values_ = gaps
        self.k_ = max(1, k)
        model = KMeans(n_clusters=self.k_, seed=self.seed).fit(features)
        self.labels_ = model.labels_
        self.centers_ = model.cluster_centers_
        self._features = features
        return self

    def assign(self, test_features) -> np.ndarray:
        """Assign each test sample the cluster of its nearest calibration sample."""
        if not hasattr(self, "labels_"):
            raise NotFittedError("CalibrationClusterer is not fitted; call fit() first")
        test = np.asarray(test_features, dtype=float)
        if test.ndim == 1:
            test = test.reshape(1, -1)
        distances = pairwise_euclidean(test, self._features)
        nearest = np.argmin(distances, axis=1)
        return self.labels_[nearest]
