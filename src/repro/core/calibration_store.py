"""Capped calibration sample store with pluggable eviction policies.

Prom's deployment story is a stream: flagged samples get relabelled and
folded back into the calibration set continuously.  Left unchecked that
set grows without bound (and every recalibration gets slower), so the
store enforces ``capacity`` on every :meth:`CalibrationStore.add` by
delegating the *which samples go* decision to an
:class:`EvictionPolicy`:

* :class:`FIFOEviction` (default) — evict the oldest samples first,
  keeping the newest, most drift-informative ones.
* :class:`ReservoirEviction` — Vitter's Algorithm R: at steady state
  every sample ever streamed has equal probability ``capacity / seen``
  of residing in the store, preserving an unbiased long-run view.
* :class:`LowestWeightEviction` — evict the lowest-priority samples
  first (ties broken oldest-first); callers attach a per-sample
  ``priority`` at :meth:`~CalibrationStore.add` time (e.g. ``1 -
  credibility`` so the strangest samples survive longest).

The store keeps an arbitrary set of *aligned columns* (features, model
outputs, labels, raw inputs, ...) as flat NumPy arrays in one exposed
order.  FIFO mutations keep that order equal to arrival order; the
other policies use a slot-stable layout where evicted rows free their
slots in place and incoming survivors fill them (``O(batch)`` writes
instead of one compacting copy per mutation), so the exposed order is
then a deterministic permutation of arrival order —
:meth:`CalibrationStore.arrival_order` normalizes it back when a test
needs the canonical arrival-ordered view.  Every mutation returns a
:class:`StoreUpdate` whose ``order`` gather lets incremental consumers
(the streaming detectors in :mod:`repro.core.streaming`) update any
aligned auxiliary array with a single ``concatenate + take`` instead of
recomputing it — see DESIGN.md §3-§4.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from .exceptions import (
    CalibrationError,
    ConfigurationError,
    InternalError,
    ValidationError,
)


@dataclass(frozen=True)
class StoreUpdate:
    """Outcome of one store mutation, in *combined-layout* coordinates.

    The combined layout is the ``n_before`` pre-existing rows followed
    by the ``n_added`` rows of the triggering ``add`` call.  An
    auxiliary array aligned with the store is carried across the
    mutation with::

        aux = np.concatenate([aux_old, aux_new])[update.order]

    ``order`` lists the surviving combined-layout positions *in the
    store's new exposed order*.  For arrival-ordered mutations (FIFO
    appends, explicit ``evict``) it is monotone and equals
    ``np.flatnonzero(keep_mask)`` — the historical ``keep_mask`` gather
    stays valid there — but slot-reuse evictions (reservoir,
    lowest-weight) permute survivors, so order-sensitive consumers must
    gather with ``order``.

    Attributes:
        n_before: store size before the mutation.
        n_added: rows the triggering ``add`` supplied (0 for ``evict``).
        keep_mask: ``(n_before + n_added,)`` boolean mask of survivors.
        evicted: combined-layout positions that were dropped, sorted.
        order: surviving combined-layout positions in new exposed
            order (defaults to ``flatnonzero(keep_mask)`` when omitted).
    """

    n_before: int
    n_added: int
    keep_mask: np.ndarray
    evicted: np.ndarray
    order: np.ndarray = None

    def __post_init__(self):
        if self.order is None:
            object.__setattr__(self, "order", np.flatnonzero(self.keep_mask))

    @property
    def n_after(self) -> int:
        """Store size after the mutation."""
        return len(self.order)

    @property
    def evicted_existing(self) -> np.ndarray:
        """Evicted positions that were store members before the add."""
        return self.evicted[self.evicted < self.n_before]

    @property
    def evicted_added(self) -> np.ndarray:
        """Evicted positions belonging to the just-added batch."""
        return self.evicted[self.evicted >= self.n_before]


def check_batch_columns(columns: dict, schema: dict | None = None):
    """Validate one ``add()`` batch against an optional fixed schema.

    The shared validation behind :class:`CalibrationStore` and the
    sharded facade, so both accept exactly the same batches.
    ``schema`` maps the fixed column names to their trailing row shapes
    (``None`` = schema not yet established).  Returns the columns as
    ndarrays plus the batch length.
    """
    if not columns:
        raise ValidationError("add() needs at least one column")
    arrays = {name: np.asarray(values) for name, values in columns.items()}
    lengths = {name: len(values) for name, values in arrays.items()}
    if len(set(lengths.values())) != 1:
        raise CalibrationError(f"store columns must align, got lengths {lengths}")
    if schema is not None:
        if set(arrays) != set(schema):
            raise CalibrationError(
                f"store columns are fixed to {sorted(schema)}, "
                f"got {sorted(arrays)}"
            )
        for name, values in arrays.items():
            if values.shape[1:] != schema[name]:
                raise CalibrationError(
                    f"column {name!r} rows have shape {values.shape[1:]}, "
                    f"store holds {schema[name]}"
                )
    return arrays, next(iter(lengths.values()))


class EvictionPolicy(abc.ABC):
    """Decides which samples leave a full :class:`CalibrationStore`."""

    #: registry name accepted by :func:`resolve_eviction_policy`
    name: str = "base"

    @abc.abstractmethod
    def select_victims(
        self,
        n_over: int,
        arrival: np.ndarray,
        priority: np.ndarray,
        n_before: int,
        capacity: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return exactly ``n_over`` distinct combined-layout positions.

        Args:
            n_over: how many samples must go.
            arrival: per-sample monotone arrival counter (combined
                layout: existing members then the incoming batch).
            priority: per-sample retention priority, aligned with
                ``arrival``.
            n_before: how many leading rows are pre-existing members.
            capacity: the store's capacity.
            rng: the store's generator (policies must not own RNG state
                so that a store replay is reproducible from its seed).
        """

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


class FIFOEviction(EvictionPolicy):
    """Evict the oldest samples first (keep the newest)."""

    name = "fifo"

    def select_victims(self, n_over, arrival, priority, n_before, capacity, rng):
        # CalibrationStore layouts are always arrival-ordered, making
        # the oldest a prefix; the argsort is only for foreign callers.
        if n_over == len(arrival) or arrival[:n_over].max() <= arrival[n_over:].min():
            return np.arange(n_over)
        return np.argsort(arrival, kind="stable")[:n_over]


class LowestWeightEviction(EvictionPolicy):
    """Evict the lowest-priority samples first, ties oldest-first."""

    name = "lowest_weight"

    def select_victims(self, n_over, arrival, priority, n_before, capacity, rng):
        # lexsort sorts by the *last* key first: priority ascending,
        # then arrival ascending among equal priorities.
        return np.lexsort((arrival, priority))[:n_over]


class ReservoirEviction(EvictionPolicy):
    """Vitter's Algorithm R over the sample stream.

    Each streamed sample ``t`` (1-indexed arrival order) enters a full
    reservoir with probability ``capacity / t``, replacing a uniformly
    random member; otherwise the sample itself is the victim.  The
    invariant: after any prefix of the stream, every sample seen so far
    is in the store with equal probability.
    """

    name = "reservoir"

    def select_victims(self, n_over, arrival, priority, n_before, capacity, rng):
        members = list(range(n_before))
        victims = []
        for position in range(n_before, len(arrival)):
            if len(members) < capacity:
                members.append(position)
                continue
            # arrival counters are 0-indexed; sample t = arrival + 1.
            j = int(rng.integers(0, arrival[position] + 1))
            if j < capacity:
                slot = int(rng.integers(0, len(members)))
                victims.append(members[slot])
                members[slot] = position
            else:
                victims.append(position)
        # Defensive remainder (never reached while n_before <= capacity,
        # which CalibrationStore guarantees): evict oldest-first.
        if len(victims) < n_over:
            victim_set = set(victims)
            for position in np.argsort(arrival, kind="stable"):
                if len(victims) >= n_over:
                    break
                if int(position) not in victim_set:
                    victims.append(int(position))
        return np.asarray(victims[:n_over], dtype=int)


# write-once registry: populated at import time, read-only afterwards
_POLICIES = {  # promlint: disable=PL005
    policy.name: policy
    for policy in (FIFOEviction, LowestWeightEviction, ReservoirEviction)
}


def resolve_eviction_policy(policy) -> EvictionPolicy:
    """Return an :class:`EvictionPolicy` from an instance or registry name."""
    if isinstance(policy, EvictionPolicy):
        return policy
    if isinstance(policy, str):
        try:
            return _POLICIES[policy]()
        except KeyError:
            raise ConfigurationError(
                f"unknown eviction policy {policy!r}; "
                f"choose from {sorted(_POLICIES)}"
            ) from None
    raise TypeError(
        f"policy must be an EvictionPolicy or one of {sorted(_POLICIES)}, "
        f"got {type(policy).__name__}"
    )


class CalibrationStore:
    """Bounded, eviction-managed container of aligned sample columns.

    Args:
        capacity: hard upper bound on the number of stored samples.
        policy: an :class:`EvictionPolicy` instance or registry name
            (``"fifo"``, ``"reservoir"``, ``"lowest_weight"``).
        seed: seed of the store's generator (used by randomized
            policies), making any add/evict sequence reproducible.

    The column schema is fixed by the first :meth:`add`; later adds
    must supply the same column names with matching trailing shapes.

    Storage is a set of over-allocated buffers with a shared
    ``[head, tail)`` live window.  Appends write ``batch`` rows at the
    tail, and evicting the *oldest* samples — what the default FIFO
    policy always does — just advances the head: the steady-state
    streaming mutation costs ``O(batch)``, not an ``O(n)`` recopy of
    every column.  (A FIFO store stays arrival-ordered: appends arrive
    in order, prefix eviction and explicit-``evict`` compaction
    preserve relative order, so FIFO victims are always a prefix.)
    Non-prefix evictions use the slot-reuse fast path: victims free
    their slots in place and surviving incoming rows overwrite them, so
    reservoir / lowest-weight mutations are also ``O(batch)`` writes —
    at the cost of an exposed order that is a (deterministic,
    ``StoreUpdate.order``-tracked) permutation of arrival order; use
    :meth:`arrival_order` to normalize when comparing stores.

    Because slot reuse rewrites rows in place, ``column()`` views are
    only guaranteed valid until the next mutation; consumers that hold
    state across mutations must either re-fetch (what the streaming
    wrappers do) or copy.
    """

    def __init__(self, capacity: int, policy="fifo", seed: int = 0):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.policy = resolve_eviction_policy(policy)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._buffers: dict[str, np.ndarray] = {}
        self._arrival_buffer = np.zeros(0, dtype=np.int64)
        self._priority_buffer = np.zeros(0, dtype=float)
        self._head = 0
        self._tail = 0
        self._seen = 0

    def __len__(self) -> int:
        return self._tail - self._head

    @property
    def n_seen(self) -> int:
        """Total samples ever streamed through the store."""
        return self._seen

    @property
    def column_names(self) -> tuple:
        return tuple(self._buffers)

    @property
    def arrival(self) -> np.ndarray:
        """Monotone arrival counter of each stored sample."""
        return self._arrival_buffer[self._head : self._tail]

    @property
    def priority(self) -> np.ndarray:
        """Retention priority of each stored sample."""
        return self._priority_buffer[self._head : self._tail]

    def column(self, name: str) -> np.ndarray:
        """Return one stored column (exposed store order).

        The returned array is a view of the store's buffer — treat it
        as read-only, and as valid only until the next mutation:
        slot-reuse evictions overwrite freed rows in place.
        """
        try:
            return self._buffers[name][self._head : self._tail]
        except KeyError:
            raise KeyError(
                f"store has no column {name!r}; columns: {self.column_names}"
            ) from None

    def arrival_order(self) -> np.ndarray:
        """Exposed-order positions sorted by arrival (oldest first).

        The order-normalization helper: ``column(name)[arrival_order()]``
        is the canonical arrival-ordered view regardless of how slot
        reuse permuted the exposed layout, so content comparisons across
        stores with different mutation histories stay meaningful.
        """
        return np.argsort(self.arrival, kind="stable")

    def clear(self, lifetime: bool = False) -> None:
        """Drop all samples and the column schema; keep the RNG state.

        The stream-position counter (:attr:`n_seen`) survives by
        default, so arrival counters keep increasing and randomized
        eviction statistics — reservoir admission probability
        ``capacity / t`` — stay calibrated to the true stream position
        across a clear.  Pass ``lifetime=True`` to zero it too (a
        brand-new deployment), mirroring ``DriftMonitor.reset(lifetime=)``.
        """
        self._buffers = {}
        self._arrival_buffer = np.zeros(0, dtype=np.int64)
        self._priority_buffer = np.zeros(0, dtype=float)
        self._head = 0
        self._tail = 0
        if lifetime:
            self._seen = 0

    def clone_empty(self) -> "CalibrationStore":
        """A fresh, empty store with the same capacity/policy/seed."""
        return CalibrationStore(self.capacity, self.policy, seed=self.seed)

    # -- internal storage ---------------------------------------------------------
    def _set_from_arrays(self, columns: dict, arrival, priority) -> None:
        """Adopt exact arrays as the new live window (head 0)."""
        self._buffers = dict(columns)
        self._arrival_buffer = arrival
        self._priority_buffer = priority
        self._head = 0
        self._tail = len(arrival)

    def _reserve(self, columns: dict, n_extra: int) -> None:
        """Promote dtypes / grow buffers so ``n_extra`` tail rows fit.

        Buffer dtypes are promoted when an incoming batch needs it
        (e.g. int column receiving floats, or longer unicode class
        names) — a plain slice assignment would silently cast or
        truncate instead.  ``columns`` is the *whole* incoming batch so
        hole-fill writes see promoted buffers too.
        """
        n = len(self)
        promoted = {
            name: np.result_type(self._buffers[name], values)
            for name, values in columns.items()
        }
        needs_promotion = any(
            promoted[name] != self._buffers[name].dtype for name in columns
        )
        if needs_promotion or self._tail + n_extra > len(self._arrival_buffer):
            grown = max(2 * (n + n_extra), 16)

            def regrow(buffer, dtype=None):
                fresh = np.empty(
                    (grown,) + buffer.shape[1:], dtype=dtype or buffer.dtype
                )
                fresh[:n] = buffer[self._head : self._tail]
                return fresh

            self._buffers = {
                name: regrow(b, promoted.get(name))
                for name, b in self._buffers.items()
            }
            self._arrival_buffer = regrow(self._arrival_buffer)
            self._priority_buffer = regrow(self._priority_buffer)
            self._head, self._tail = 0, n

    def _append(self, columns: dict, arrival, priority) -> None:
        """Write a batch at the tail, growing-and-compacting if needed."""
        self._reserve(columns, len(arrival))
        stop = self._tail + len(arrival)
        for name, values in columns.items():
            self._buffers[name][self._tail : stop] = values
        self._arrival_buffer[self._tail : stop] = arrival
        self._priority_buffer[self._tail : stop] = priority
        self._tail = stop

    def _check_batch(self, columns: dict):
        schema = (
            {name: b.shape[1:] for name, b in self._buffers.items()}
            if self._buffers
            else None
        )
        return check_batch_columns(columns, schema)

    def add(self, priority=None, **columns) -> StoreUpdate:
        """Append a batch of samples, evicting down to capacity.

        Args:
            priority: optional ``(n_new,)`` retention priorities
                (default 1.0 each); consumed by priority-aware policies.
            **columns: aligned arrays, one keyword per schema column.

        Returns:
            the :class:`StoreUpdate` describing survivors and victims.
        """
        arrays, n_new = self._check_batch(columns)
        n_before = len(self)
        if priority is None:
            new_priority = np.ones(n_new, dtype=float)
        else:
            new_priority = np.asarray(priority, dtype=float).ravel()
            if len(new_priority) != n_new:
                raise CalibrationError("priority must align with the added batch")

        new_arrival = self._seen + np.arange(n_new, dtype=np.int64)
        combined_arrival = np.concatenate([self.arrival, new_arrival])
        combined_priority = np.concatenate([self.priority, new_priority])
        self._seen += n_new

        n_total = n_before + n_new
        keep_mask = np.ones(n_total, dtype=bool)
        n_over = n_total - self.capacity
        if n_over > 0:
            victims = np.asarray(
                self.policy.select_victims(
                    n_over,
                    combined_arrival,
                    combined_priority,
                    n_before,
                    self.capacity,
                    self._rng,
                ),
                dtype=int,
            )
            if len(victims) != n_over or len(np.unique(victims)) != n_over:
                raise InternalError(
                    f"{self.policy!r} returned {len(victims)} victims, "
                    f"needed {n_over} distinct"
                )
            keep_mask[victims] = False

        order = None
        if n_over <= 0 or not keep_mask[:n_over].any():
            # Prefix eviction (FIFO's only shape): advance the head and
            # append — O(batch), no column recopy.  Exposed order stays
            # arrival order, so the default monotone `order` applies.
            dropped_new = max(0, n_over - n_before)
            if dropped_new:
                arrays = {name: values[dropped_new:] for name, values in arrays.items()}
                new_arrival = new_arrival[dropped_new:]
                new_priority = new_priority[dropped_new:]
            self._head += min(max(n_over, 0), n_before)
            if self._buffers:
                self._append(arrays, new_arrival, new_priority)
            else:
                # Copy on adoption: the store must own its buffers so a
                # caller mutating the input arrays afterwards cannot
                # corrupt the views column() hands out.
                self._set_from_arrays(
                    {name: np.array(values) for name, values in arrays.items()},
                    new_arrival,
                    np.array(new_priority),
                )
        else:
            # Slot-reuse (free-list) eviction: existing victims free
            # their slots in place and surviving new rows overwrite
            # them, the remainder appending at the tail — O(batch)
            # writes for reservoir / lowest-weight instead of one
            # compacting copy per mutation.  Survivors never move, but
            # the exposed order is no longer arrival order; the
            # StoreUpdate.order permutation records where every
            # survivor landed.
            surviving_new = np.flatnonzero(keep_mask[n_before:])
            freed = np.flatnonzero(~keep_mask[:n_before])
            # Capacity arithmetic guarantees enough surviving new rows
            # to fill every freed slot (n_after == capacity >= n_before).
            fill = surviving_new[: len(freed)]
            tail = surviving_new[len(freed) :]
            if self._buffers:
                self._reserve(arrays, len(tail))
                slots = self._head + freed
                for name, values in arrays.items():
                    self._buffers[name][slots] = values[fill]
                self._arrival_buffer[slots] = new_arrival[fill]
                self._priority_buffer[slots] = new_priority[fill]
                if len(tail):
                    self._append(
                        {name: values[tail] for name, values in arrays.items()},
                        new_arrival[tail],
                        new_priority[tail],
                    )
            else:
                # First-ever add already overflowing: no existing slots
                # to reuse, adopt the surviving new rows directly.
                self._set_from_arrays(
                    {name: np.array(values[tail]) for name, values in arrays.items()},
                    new_arrival[tail],
                    np.array(new_priority[tail]),
                )
            slot_map = np.arange(n_before, dtype=np.int64)
            slot_map[freed] = n_before + fill
            order = np.concatenate([slot_map, n_before + tail])
        return StoreUpdate(
            n_before=n_before,
            n_added=n_new,
            keep_mask=keep_mask,
            evicted=np.flatnonzero(~keep_mask),
            order=order,
        )

    def evict(self, positions) -> StoreUpdate:
        """Explicitly remove samples at ``positions`` (store order)."""
        n = len(self)
        positions = np.unique(np.asarray(positions, dtype=int))
        if len(positions) and (positions.min() < -n or positions.max() >= n):
            raise IndexError(f"eviction position out of range for store of {n}")
        positions = positions % n if len(positions) else positions
        keep_mask = np.ones(n, dtype=bool)
        keep_mask[positions] = False
        merged = {name: self.column(name)[keep_mask] for name in self._buffers}
        self._set_from_arrays(
            merged, self.arrival[keep_mask], self.priority[keep_mask]
        )
        return StoreUpdate(
            n_before=n,
            n_added=0,
            keep_mask=keep_mask,
            evicted=np.flatnonzero(~keep_mask),
        )

    def replace_column(self, name: str, values) -> None:
        """Overwrite one column in place (same length, same order).

        Used after a model update: membership is unchanged but derived
        columns (features, probabilities) must be recomputed — possibly
        with a different trailing shape (e.g. a grown class head).
        """
        # np.array (not asarray): the store must own the buffer — see
        # the copy-on-adoption note in add().
        values = np.array(values)
        if name not in self._buffers:
            raise KeyError(f"store has no column {name!r}")
        if len(values) != len(self):
            raise CalibrationError(
                f"replacement column {name!r} has {len(values)} rows, "
                f"store holds {len(self)}"
            )
        # Re-anchor every buffer to the live window so the replaced
        # column (whose trailing shape may differ) stays aligned.
        self._set_from_arrays(
            {n: self.column(n) for n in self._buffers},
            self.arrival,
            self.priority,
        )
        self._buffers[name] = values

    def __repr__(self) -> str:
        return (
            f"CalibrationStore(n={len(self)}/{self.capacity}, "
            f"policy={self.policy.name!r}, seen={self._seen})"
        )
