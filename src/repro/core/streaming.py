"""Streaming Prom detectors: incremental recalibration over a live store.

``PromClassifier.calibrate()`` is a batch operation: every call
recomputes per-expert nonconformity scores, label groupings and the
adaptive tau from scratch.  In deployment (paper Secs. 5.3-5.4) the
calibration set is a *stream* — relabelled drifting samples arrive in
micro-batches and stale samples are evicted — so full recalibration per
round costs ``O(rounds * n_calibration)`` where ``O(rounds * batch)``
suffices.

The wrappers here own a bounded calibration store and maintain the
detector's calibration state *incrementally*:

* per-expert nonconformity scores are computed only for the new batch
  (every score function is row-wise pure, so per-batch scores are
  bit-identical to batch recomputation);
* per-label score groupings (:class:`~repro.core.pvalue.LabelGroupedScores`)
  are carried across the store mutation with one survivor gather
  (``StoreUpdate.order``) and ``O(batch + n_labels)`` count arithmetic;
* the automatic tau is re-resolved against the surviving features via
  the same bounded kernel (``median_pairwise_tau``) a fresh
  ``calibrate()`` would use.

With ``n_shards > 1`` the store becomes a
:class:`~repro.core.sharding.ShardedCalibrationStore` and the wrapper
additionally keeps **per-shard** scores, label groupings and tau.  An
update then folds only into the shards its batch touched — untouched
shards' state is not even copied — and the global detector state is
re-composed *segment-aware* (:mod:`repro.core.segments`): per-shard
score/feature/label blocks stay immutable segments in a
:class:`~repro.core.segments.SegmentBundle`, group counts are summed
integer-exactly per segment, tau is re-resolved from a per-segment row
gather, and the flat arrays the p-value scatter-adds consume are
materialized lazily on the next detector read — so a fold costs
``O(touched shards)``, never ``O(store)``.  The equivalence guarantee
is unchanged: the materialized state is bit-identical to the old eager
concatenation.  :meth:`detector_snapshot` builds structural-sharing
snapshots from the same bundle — untouched shards' blocks are shared
(not copied) between consecutive publishes, which is what makes the
async serving plane's snapshot publish ``O(touched shards)`` too
(DESIGN.md §6).  Full shard recalibrations
(:meth:`recalibrate_shards`) run in a ``ThreadPoolExecutor`` when
``parallel`` workers are configured (the NumPy kernels release the
GIL); micro-batch folds stay serial — their per-shard work is far
below the pool-spawn cost.  See DESIGN.md §4.

The invariant, property-tested in ``tests/core/test_streaming.py`` and
``tests/core/test_sharding.py``: after ANY sequence of
``update()``/``evict()`` calls — under every eviction policy and every
shard router — the wrapped detector is **decision-identical**
(bit-for-bit, including credibility and confidence) to a fresh detector
calibrated on the store's surviving samples (in store order).  For the
regressor the cluster pseudo-labeller is fixed at ``calibrate()`` time
(new samples are assigned, never re-clustered), so the equivalence
reference is :meth:`StreamingPromRegressor.refresh` with
``refit_clusters=False``; call ``refresh()`` to re-fit clusters after
heavy drift.
"""

from __future__ import annotations

import copy
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .calibration_store import CalibrationStore, StoreUpdate
from .exceptions import CalibrationError
from .prom import PromClassifier, PromRegressor, _check_calibration_inputs
from .pvalue import (
    LabelGroupedScores,
    group_scores_by_label,
    merge_group_counts,
    update_label_groups,
)
from .segments import (
    BundleComposeHook,
    SegmentBundle,
    SegmentedField,
    TauSketch,
    make_field,
)
from .sharding import ShardedCalibrationStore
from .weighting import median_pairwise_tau


def _as_columns(extra) -> dict:
    if extra is None:
        return {}
    return dict(extra)


def _check_leaves_survivors(store, positions) -> None:
    """Reject evictions that would empty the calibration store."""
    positions = np.asarray(positions, dtype=int)
    if len(store) - len(np.unique(positions % max(1, len(store)))) < 1:
        raise CalibrationError("eviction would empty the calibration store")


def _shard_tau(weighting, features) -> float:
    """One shard's tau: the fixed tau when set, else the bounded kernel."""
    if weighting.tau is not None:
        return float(weighting.tau)
    if features is None or len(features) == 0:
        return 1.0
    return median_pairwise_tau(features)


def _make_store(capacity, eviction, seed, n_shards, router, label_column):
    if n_shards == 1:
        return CalibrationStore(capacity, eviction, seed=seed)
    return ShardedCalibrationStore(
        capacity,
        n_shards,
        router=router,
        policy=eviction,
        seed=seed,
        label_column=label_column,
    )


@dataclass
class _ShardState:
    """One shard's slice of the streaming calibration state.

    ``scores``/``layouts`` hold one entry per expert, aligned with the
    shard store's exposed row order; ``tau`` is the shard-local feature
    scale (diagnostic — the detector's global tau is always re-resolved
    on the union), kept lazily: folds mark it stale (``None``) and
    :attr:`_ShardMixin.shard_taus` recomputes on read, so the bounded
    tau kernel never rides the per-update hot path once per shard;
    ``clusters`` carries the regressor's pseudo-labels.
    """

    scores: list
    layouts: list
    tau: float | None = field(default=None)
    clusters: np.ndarray | None = field(default=None)


class _LiveComposeHook:
    """The live detector's compose hook, with a pending-bundle probe.

    Calling it materializes the current bundle's flat arrays (the
    descriptor protocol of
    :class:`~repro.core.segments.ComposedStateAttr`); the extra
    :meth:`pending_bundle` accessor lets the evaluate kernels see the
    un-materialized bundle and run segment-direct *without* triggering
    the flat concatenation — the same protocol
    :class:`~repro.core.segments.BundleComposeHook` gives frozen
    snapshots.
    """

    __slots__ = ("_wrapper",)

    def __init__(self, wrapper):
        self._wrapper = wrapper

    def __call__(self) -> None:
        self._wrapper._materialize_composed()

    def pending_bundle(self):
        """The bundle whose flat arrays are not materialized yet, or ``None``."""
        wrapper = self._wrapper
        bundle = wrapper._bundle
        if bundle is None or wrapper._bundle_fresh:
            return None
        return bundle


class _ShardMixin:
    """Shard, segment-compose and snapshot bookkeeping shared by both
    streaming wrappers.

    Sharded wrappers hold the detector's global state as a
    :class:`~repro.core.segments.SegmentBundle` of immutable per-shard
    blocks (``self._bundle``); the detector's flat arrays are
    materialized from it lazily on first read (``self._bundle_fresh``
    tracks whether they currently match).  Single-store wrappers keep
    ``_bundle`` as ``None`` and behave exactly as before.
    """

    #: detector attributes that may alias store buffers (rewritten in
    #: place by slot-reuse eviction) and must be materialized when a
    #: frozen snapshot is published without a segment bundle
    #: (single-store mode); set per wrapper class.
    _snapshot_array_fields: tuple = ()

    #: compose spec, set per wrapper class: detector attribute ->
    #: store column for store-backed fields; detector attributes whose
    #: blocks live on ``_ShardState`` (attribute name minus the
    #: underscore); and which field plays the p-value grouping label.
    _compose_store_fields: dict = {}
    _compose_state_fields: tuple = ()
    _compose_label_key: str = "_labels"

    def _init_compose(self) -> None:
        """Wire the detector to the lazy segment compose layer."""
        self._bundle = None
        self._bundle_fresh = True
        self._tau_sketch = TauSketch()
        # Installed as the detector's compose hook: any state read
        # (evaluate, or a direct prom._features access) materializes
        # the current bundle first, so laziness is never observable.
        # The hook object additionally exposes the pending bundle, so
        # evaluate can run segment-direct without firing it.
        self.prom._compose_hook = _LiveComposeHook(self)

    def _materialize_composed(self) -> None:
        """Install the current bundle's flat arrays on the detector.

        The lazy half of the segment compose: no-op in single-store
        mode or when the detector already reflects the bundle;
        otherwise one ``O(store)`` concatenation per mutated epoch,
        paid by the first consumer that actually needs flat state
        (and shared with snapshots built from the same bundle).

        Full-rebuild paths (``calibrate``/``refresh``) call this
        *before* overwriting the detector: a pending bundle must be
        applied (or rendered moot) first, or the rebuild's own state
        reads would trigger the hook and clobber the fresh arrays with
        the stale composition.
        """
        bundle = self._bundle
        if bundle is None or self._bundle_fresh:
            return
        bundle.apply(self.prom)
        self._bundle_fresh = True

    def _retune_composed_tau(self, retune_tau: bool, feature_field) -> None:
        """Re-resolve the detector's tau from the feature segments.

        Delegates to the wrapper's incremental
        :class:`~repro.core.segments.TauSketch`: the sketch gathers
        exactly the rows the flat ``resolve_tau`` would subsample
        (bit-identical, ``O(max_rows * d)``, no flat concat) and skips
        the median kernel entirely when no sampled row changed across
        the mutation.
        """
        if not retune_tau:
            return
        self._tau_sketch.resolve(self.prom.weighting, feature_field)

    @property
    def _feature_dim(self) -> int:
        """Calibrated feature dimensionality, without materializing."""
        if self._bundle is not None:
            return int(self._bundle.fields["_features"].trailing_shape[0])
        return int(self.prom._features.shape[1])

    def _build_bundle(self, fresh: bool) -> dict:
        """Assemble the :class:`SegmentBundle` from the current shard
        states, per the class compose spec; returns the field dict.

        ``fresh=True`` is the seed mode used right after a full
        rebuild: the detector's flat arrays were just computed, so
        every field's flat cache is pre-populated from them (score and
        state blocks are zero-copy slices of those arrays) and the
        detector is marked as already reflecting the bundle.
        ``fresh=False`` is the incremental mode used after a fold or
        rescore: fields whose every block is identical to the previous
        bundle's are reused outright (flat caches carried along), and
        the flat arrays are left to lazy materialization.
        """
        prom = self.prom
        states = self._shard_states
        previous = None if fresh else self._bundle
        experts = self._compose_experts()
        n_labels = self._compose_n_labels()

        def build_field(name, blocks):
            if fresh:
                return SegmentedField(blocks, flat=getattr(prom, name))
            return make_field(
                blocks, previous.fields.get(name) if previous else None
            )

        fields = {
            name: build_field(name, self.store.column_segments(column))
            for name, column in self._compose_store_fields.items()
        }
        for name in self._compose_state_fields:
            attr = name.lstrip("_")
            fields[name] = build_field(
                name, tuple(getattr(state, attr) for state in states)
            )
        score_fields = []
        for e in range(len(experts)):
            blocks = tuple(state.scores[e] for state in states)
            if fresh:
                score_fields.append(SegmentedField(blocks, flat=prom._scores[e]))
            else:
                score_fields.append(
                    make_field(
                        blocks,
                        previous.score_fields[e] if previous else None,
                    )
                )
        self._bundle = SegmentBundle(
            fields=fields,
            score_fields=tuple(score_fields),
            group_counts=tuple(
                merge_group_counts(
                    [state.layouts[e] for state in states], n_labels
                )
                for e in range(len(experts))
            ),
            label_key=self._compose_label_key,
            n_labels=n_labels,
        )
        if previous is not None:
            # Carry the newest built evaluation view across the
            # mutation (at most one generation is kept alive): panels
            # over untouched shards are inherited instead of
            # re-gathered when the new bundle's view is built.
            self._bundle._inherit_view = (
                previous._view
                if previous._view is not None
                else previous._inherit_view
            )
        self._bundle_fresh = fresh
        return fields

    def _compose_global(self, retune_tau: bool) -> None:
        """Recompose the detector's global state from per-shard segments.

        Builds a fresh immutable :class:`~repro.core.segments.SegmentBundle`
        in ``O(touched shards)``: untouched shards contribute the same
        block objects as the previous bundle (segment order is the
        store's global exposed order, and group counts add
        integer-exactly), tau is re-resolved from a per-segment row
        gather, and the flat arrays are *not* rebuilt here — the next
        detector state read materializes them, bit-identical to the
        eager concatenation a fresh ``calibrate()`` would produce.
        """
        fields = self._build_bundle(fresh=False)
        self._retune_composed_tau(retune_tau, fields["_features"])

    @property
    def is_sharded(self) -> bool:
        return isinstance(self.store, ShardedCalibrationStore)

    @property
    def epoch(self) -> int:
        """Monotone counter bumped on every calibration-state mutation.

        The serving plane (:mod:`repro.core.serving`) tags published
        snapshots with the epoch they were built at, so snapshot
        staleness is ``wrapper.epoch - snapshot.epoch`` mutations.
        """
        return self._epoch

    def _bump_epoch(self) -> None:
        self._epoch += 1

    def detector_snapshot(self):
        """A frozen, immutable clone of the wrapped detector.

        The clone shares the detector's configuration (functions,
        committee, thresholds) plus a frozen weighting (tau state), and
        its calibration state is private to the snapshot — evaluating
        it is safe from any thread while the live wrapper keeps folding
        updates.  This is the double-buffered read side of the async
        serving loop (DESIGN.md §5).

        How the state is frozen depends on the compose mode:

        * **sharded** — a structural-sharing snapshot (DESIGN.md §6):
          the clone references the live
          :class:`~repro.core.segments.SegmentBundle` of immutable
          per-shard blocks, so freezing is ``O(n_shards)`` pointer
          work, not an ``O(store)`` deep copy.  Untouched shards'
          blocks are therefore *shared* (``np.shares_memory``) between
          consecutive snapshots; folds replace touched shards' blocks
          instead of mutating them, so shared blocks can never change
          under a published snapshot.  Flat arrays are materialized on
          the snapshot's first evaluate (or reused from the live
          detector when it already materialized the same bundle).
        * **single-store** — the store rewrites its buffers in place
          (slot-reuse eviction), so the clone deep-copies every
          store-aliased array, as before.
        """
        self.prom._require_calibrated()
        prom = copy.copy(self.prom)
        prom.weighting = copy.copy(self.prom.weighting)
        bundle = self._bundle
        if bundle is not None:
            # Structural sharing: the one-shot hook materializes the
            # bundle on first read.  When the live detector's flat
            # state already reflects the bundle, the copied attributes
            # are current and the hook starts done — zero copies.
            prom._compose_hook = BundleComposeHook(
                prom, bundle, done=self._bundle_fresh
            )
            prom._segment_bundle = bundle
            return prom
        prom._compose_hook = None
        for name in self._snapshot_array_fields:
            setattr(prom, name, np.array(getattr(self.prom, name)))
        layouts = [
            LabelGroupedScores(
                scores=np.array(layout.scores),
                labels=np.array(layout.labels),
                group_counts=np.array(layout.group_counts),
                n_labels=layout.n_labels,
            )
            for layout in self.prom._layouts
        ]
        prom._layouts = layouts
        prom._scores = [layout.scores for layout in layouts]
        return prom

    @property
    def n_shards(self) -> int:
        return getattr(self.store, "n_shards", 1)

    @property
    def shard_sizes(self) -> tuple:
        return getattr(self.store, "shard_sizes", (len(self.store),))

    @property
    def shard_taus(self) -> tuple:
        """Per-shard feature-scale taus (empty for single-store mode).

        Computed lazily: a fold marks its shard's tau stale, and this
        accessor re-resolves stale entries with the same bounded kernel
        a shard-local recalibration would use.
        """
        if self._shard_states is None:
            return ()
        taus = []
        for shard_id, state in enumerate(self._shard_states):
            if state.tau is None:
                shard = self.store.shards[shard_id]
                features = shard.column("features") if len(shard) else None
                state.tau = _shard_tau(self.prom.weighting, features)
            taus.append(state.tau)
        return tuple(taus)

    def _map_shards(self, shard_ids, fn, parallel: bool = True) -> None:
        """Run ``fn(shard_id)`` serially or on the thread pool.

        Shard work mutates disjoint per-shard states, and the NumPy
        scoring kernels release the GIL, so a ThreadPoolExecutor gives
        real parallel eviction/recalibration across shards.  Callers
        pass ``parallel=False`` for micro-batch folds, whose per-shard
        work (an ``O(batch + shard)`` gather) is far below the
        pool-spawn cost; whole-shard rescoring is where threads pay.
        """
        shard_ids = list(shard_ids)
        workers = (self.parallel or 0) if parallel else 0
        if workers > 1 and len(shard_ids) > 1:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(shard_ids))
            ) as pool:
                # list() propagates the first worker exception
                list(pool.map(fn, shard_ids))
        else:
            for shard_id in shard_ids:
                fn(shard_id)

    def _shard_blocks(self):
        """Yield ``(shard_id, start, stop)`` global row blocks."""
        start = 0
        for shard_id, size in enumerate(self.store.shard_sizes):
            yield shard_id, start, start + size
            start += size


class StreamingPromClassifier(_ShardMixin):
    """Online wrapper around a :class:`~repro.core.prom.PromClassifier`.

    Args:
        prom: the detector to manage; a default one is created when
            omitted.  Evaluation methods (``evaluate``,
            ``evaluate_one``, ``prediction_region_batch``) delegate to
            it unchanged.
        capacity: calibration-store cap (paper: 1000) — total across
            shards when sharded.
        eviction: eviction policy instance or name (``"fifo"``,
            ``"reservoir"``, ``"lowest_weight"``); with ``n_shards > 1``
            a sequence gives each shard its own policy.
        seed: RNG seed of the store (randomized policies).
        n_shards: number of calibration shards (1 = the classic single
            store).
        router: shard router name or instance (``"hash"``, ``"label"``,
            ``"cluster"``) — only meaningful with ``n_shards > 1``.
        parallel: thread-pool width for whole-shard rescoring in
            :meth:`recalibrate_shards` (``None``/``1`` = serial);
            micro-batch folds stay serial either way.

    ``calibrate()`` resets the store and performs one full calibration;
    ``update()`` folds a micro-batch in incrementally.  Extra aligned
    columns (e.g. raw model inputs) may ride along in the store via
    ``extra=`` — the schema is fixed by the first call.
    """

    _snapshot_array_fields = ("_features", "_labels")
    _compose_store_fields = {"_features": "features", "_labels": "label"}
    _compose_state_fields = ()
    _compose_label_key = "_labels"

    def _compose_experts(self):
        """The expert list whose scores the compose layer carries."""
        return self.prom.functions

    def _compose_n_labels(self) -> int:
        """The p-value grouping-label space size (class count)."""
        return self.prom._n_classes

    def __init__(
        self,
        prom=None,
        capacity: int = 1000,
        eviction="fifo",
        seed: int = 0,
        n_shards: int = 1,
        router="hash",
        parallel: int | None = None,
    ):
        self.prom = prom or PromClassifier()
        self.store = _make_store(
            capacity, eviction, seed, n_shards, router, label_column="label"
        )
        self.parallel = parallel
        self._shard_states = None
        self._epoch = 0
        self._init_compose()

    # -- state --------------------------------------------------------------------
    @property
    def is_calibrated(self) -> bool:
        """Whether the wrapped detector has been calibrated (hook-free)."""
        return self.prom.is_calibrated

    @property
    def calibration_size(self) -> int:
        """Number of calibration samples backing the detector.

        Reading this on a lazily composed wrapper materializes the
        flat state first (the value is always the store size).
        """
        return self.prom.calibration_size

    def _check_update_inputs(self, features, probabilities, labels):
        features, probabilities, labels = _check_calibration_inputs(
            features, probabilities, labels
        )
        labels = labels.astype(int)
        n_classes = self.prom._n_classes
        if probabilities.ndim != 2 or probabilities.shape[1] != n_classes:
            raise CalibrationError(
                f"probabilities must be (n, {n_classes}) to match the "
                f"calibrated detector"
            )
        if labels.min(initial=0) < 0 or labels.max(initial=0) >= n_classes:
            raise CalibrationError("label index out of calibrated range")
        return features, probabilities, labels

    # -- lifecycle ----------------------------------------------------------------
    def calibrate(
        self, features, probabilities, labels, priority=None, extra=None
    ) -> "StreamingPromClassifier":
        """Reset the store to this batch and fully calibrate the detector.

        When the batch exceeds ``capacity`` the eviction policy trims it
        first, so the cap holds from the very first calibration.
        """
        features, probabilities, labels = _check_calibration_inputs(
            features, probabilities, labels
        )
        # Apply any pending lazy composition before the rebuild
        # overwrites the detector (see _materialize_composed).
        self._materialize_composed()
        # Build the new store aside and swap it in only once the
        # detector accepted the batch — a validation failure inside
        # prom.calibrate must not leave store and detector desynced.
        staged = self.store.clone_empty()
        staged.add(
            priority=priority,
            features=features,
            probabilities=probabilities,
            label=np.asarray(labels).astype(int),
            **_as_columns(extra),
        )
        self.prom.calibrate(
            staged.column("features"),
            staged.column("probabilities"),
            staged.column("label"),
        )
        self.store = staged
        if self.is_sharded:
            self._rebuild_shard_states()
        self._bump_epoch()
        return self

    def _rebuild_shard_states(self) -> None:
        """Slice the detector's freshly calibrated state into per-shard
        states and seed the compose bundle.

        Runs right after a full ``calibrate()``/``refresh()``: the flat
        arrays exist and match the store, so the bundle is built with
        its flat caches pre-populated (score blocks are zero-copy
        slices of the flat arrays; feature/label blocks come from the
        store's segment cache so later folds can reuse them by
        identity).
        """
        prom = self.prom
        states = []
        for _, start, stop in self._shard_blocks():
            labels = prom._labels[start:stop]
            scores = [expert[start:stop] for expert in prom._scores]
            states.append(
                _ShardState(
                    scores=scores,
                    layouts=[
                        group_scores_by_label(s, labels, prom._n_classes)
                        for s in scores
                    ],
                )
            )
        self._shard_states = states
        self._build_bundle(fresh=True)

    def update(
        self,
        features,
        probabilities,
        labels,
        priority=None,
        extra=None,
        retune_tau: bool = True,
    ) -> StoreUpdate:
        """Fold a micro-batch into the calibration state incrementally.

        Scores are computed for the new batch only; groupings and
        counts are carried across the store mutation (touched shards
        only, when sharded); tau is re-resolved against the surviving
        features (pass ``retune_tau=False`` to freeze it — faster, but
        the detector then diverges from a fresh ``calibrate()`` until
        the next ``refresh``).  Returns the :class:`StoreUpdate`
        describing who survived.
        """
        self.prom._require_calibrated()
        features, probabilities, labels = self._check_update_inputs(
            features, probabilities, labels
        )
        prom = self.prom
        new_scores = [
            function.score(probabilities, labels) for function in prom.functions
        ]
        update = self.store.add(
            priority=priority,
            features=features,
            probabilities=probabilities,
            label=labels,
            **_as_columns(extra),
        )
        if self._shard_states is None:
            self._apply(update, new_scores, labels, retune_tau)
        else:
            self._apply_sharded(update, new_scores, labels, retune_tau)
        self._bump_epoch()
        return update

    def evict(self, positions, retune_tau: bool = True) -> StoreUpdate:
        """Remove calibration samples by (global) store position."""
        self.prom._require_calibrated()
        _check_leaves_survivors(self.store, positions)
        update = self.store.evict(positions)
        empty = [np.zeros(0)] * len(self.prom.functions)
        no_labels = np.zeros(0, dtype=int)
        if self._shard_states is None:
            self._apply(update, empty, no_labels, retune_tau)
        else:
            self._apply_sharded(update, empty, no_labels, retune_tau)
        self._bump_epoch()
        return update

    def _apply(self, update: StoreUpdate, new_scores, new_labels, retune_tau: bool):
        prom = self.prom
        prom._layouts = [
            update_label_groups(
                layout, update.keep_mask, scores, new_labels, order=update.order
            )
            for layout, scores in zip(prom._layouts, new_scores)
        ]
        prom._scores = [layout.scores for layout in prom._layouts]
        prom._features = self.store.column("features")
        prom._labels = self.store.column("label")
        if retune_tau:
            prom.weighting.resolve_tau(prom._features)

    def _apply_sharded(self, update, new_scores, new_labels, retune_tau: bool):
        """Fold the batch into the touched shards, then recompose."""

        def fold(shard_id):
            state = self._shard_states[shard_id]
            sub = update.shard_updates[shard_id]
            routed = update.shard_batches[shard_id]
            state.layouts = [
                update_label_groups(
                    layout,
                    sub.keep_mask,
                    scores[routed],
                    new_labels[routed],
                    order=sub.order,
                )
                for layout, scores in zip(state.layouts, new_scores)
            ]
            state.scores = [layout.scores for layout in state.layouts]
            state.tau = None  # stale; shard_taus recomputes on read

        self._map_shards(update.touched, fold, parallel=False)
        self._compose_global(retune_tau)

    def recalibrate_shards(
        self, shard_ids=None, retune_tau: bool = True
    ) -> "StreamingPromClassifier":
        """Fully rescore the given shards from their store contents.

        The shard-local counterpart of :meth:`refresh`: scoring cost is
        proportional to the touched shards' rows, not the whole
        calibration set, and shards rescore in parallel when
        ``parallel`` workers are configured.  ``shard_ids=None``
        rescores every shard.
        """
        if self._shard_states is None:
            raise CalibrationError(
                "recalibrate_shards needs a sharded store (n_shards > 1)"
            )
        self.prom._require_calibrated()
        prom = self.prom
        if shard_ids is None:
            shard_ids = range(self.store.n_shards)

        def rescore(shard_id):
            shard = self.store.shards[shard_id]
            state = self._shard_states[shard_id]
            if len(shard) == 0:
                state.scores = [np.zeros(0) for _ in prom.functions]
                state.layouts = [
                    group_scores_by_label(
                        np.zeros(0), np.zeros(0, dtype=int), prom._n_classes
                    )
                    for _ in prom.functions
                ]
                state.tau = None
                return
            probabilities = shard.column("probabilities")
            labels = shard.column("label")
            state.scores = [
                function.score(probabilities, labels)
                for function in prom.functions
            ]
            state.layouts = [
                group_scores_by_label(s, labels, prom._n_classes)
                for s in state.scores
            ]
            state.tau = None

        self._map_shards(shard_ids, rescore)
        self._compose_global(retune_tau)
        self._bump_epoch()
        return self

    def refresh(self) -> "StreamingPromClassifier":
        """Full recalibration from the current store contents.

        The batch-path reference the incremental path must match; also
        the escape hatch after ``retune_tau=False`` updates.
        """
        self._materialize_composed()
        self.prom.calibrate(
            self.store.column("features"),
            self.store.column("probabilities"),
            self.store.column("label"),
        )
        if self.is_sharded:
            self._rebuild_shard_states()
        self._bump_epoch()
        return self

    def replace_outputs(self, features, probabilities, labels) -> None:
        """Swap the derived columns after a model update, then recalibrate.

        Membership is unchanged — same samples, same store order — but
        the deployed model changed, so every stored feature vector and
        probability row is stale.  Incremental maintenance cannot help
        here (all scores change); this is the designed full-rebuild
        path.  A sharded store additionally re-fits its router and
        re-routes every sample (the feature space the router keyed on
        moved too), which may trigger per-shard evictions when the new
        routing overloads a shard.
        """
        features, probabilities, labels = _check_calibration_inputs(
            features, probabilities, labels
        )
        self.store.replace_column("features", features)
        self.store.replace_column("probabilities", probabilities)
        self.store.replace_column("label", np.asarray(labels))
        if self.is_sharded:
            self.store.rebalance(refit_router=True)
        self.refresh()

    # -- deployment (delegation) --------------------------------------------------
    def evaluate(self, features, probabilities, predicted_labels=None, chunk_size=None):
        """Batch-evaluate via the wrapped detector (see
        :meth:`~repro.core.prom.PromClassifier.evaluate`); materializes
        any pending lazy composition first."""
        return self.prom.evaluate(features, probabilities, predicted_labels, chunk_size)

    def evaluate_one(self, feature, probability_row, predicted_label=None):
        """Evaluate one sample (see
        :meth:`~repro.core.prom.PromClassifier.evaluate_one`)."""
        return self.prom.evaluate_one(feature, probability_row, predicted_label)

    def prediction_region_batch(self, features, probabilities, chunk_size=None):
        """Committee prediction-region membership for a batch (see
        :meth:`~repro.core.prom.PromClassifier.prediction_region_batch`)."""
        return self.prom.prediction_region_batch(features, probabilities, chunk_size)

    def __repr__(self) -> str:
        return f"StreamingPromClassifier(store={self.store!r})"


class StreamingPromRegressor(_ShardMixin):
    """Online wrapper around a :class:`~repro.core.prom.PromRegressor`.

    The regression detector has two batch-coupled stages the classifier
    lacks: K-means pseudo-labels and (optionally) leave-one-out
    residual references.  Streaming handles them as follows:

    * the clusterer is **fixed** at ``calibrate()`` time; new samples
      are assigned to their nearest cluster (``clusterer_.assign``),
      never re-clustered.  Call :meth:`refresh` with
      ``refit_clusters=True`` after heavy drift.
    * ``calibration_residuals="true"`` (the default prom built here)
      keeps scores per-sample pure, enabling the incremental fast path
      (per touched shard, when sharded).  A ``"loo"`` detector couples
      every score to its neighbours, so ``update()`` transparently
      falls back to a full recompute of the LOO residuals — with the
      *fitted* clusterer, like every other update path — correct and
      still capacity-capped, just not amortized.

    Sharding routes on features (``"hash"`` or ``"cluster"``; there is
    no integer label column to key ``"label"`` routing on).
    """

    _snapshot_array_fields = ("_features", "_targets", "_clusters")
    _compose_store_fields = {"_features": "features", "_targets": "target"}
    _compose_state_fields = ("_clusters",)
    _compose_label_key = "_clusters"

    def _compose_experts(self):
        """The expert list whose scores the compose layer carries."""
        return self.prom.score_functions

    def _compose_n_labels(self) -> int:
        """The grouping-label space size (fitted cluster count)."""
        return self.prom.clusterer_.k_

    def __init__(
        self,
        prom=None,
        capacity: int = 1000,
        eviction="fifo",
        seed: int = 0,
        n_shards: int = 1,
        router="hash",
        parallel: int | None = None,
    ):
        self.prom = prom or PromRegressor(calibration_residuals="true")
        self.store = _make_store(
            capacity, eviction, seed, n_shards, router, label_column=None
        )
        self.parallel = parallel
        self._shard_states = None
        self._epoch = 0
        self._init_compose()

    @property
    def is_calibrated(self) -> bool:
        """Whether the wrapped detector has been calibrated (hook-free)."""
        return self.prom.is_calibrated

    @property
    def calibration_size(self) -> int:
        """Number of calibration samples backing the detector.

        Reading this on a lazily composed wrapper materializes the
        flat state first (the value is always the store size).
        """
        return self.prom.calibration_size

    # -- lifecycle ----------------------------------------------------------------
    def calibrate(
        self, features, predictions, targets, priority=None, extra=None
    ) -> "StreamingPromRegressor":
        """Reset the store to this batch and fully calibrate (fits clusters)."""
        features, predictions, targets = _check_calibration_inputs(
            features, predictions, targets
        )
        # Apply any pending lazy composition before the rebuild
        # overwrites the detector (see _materialize_composed).
        self._materialize_composed()
        # Staged swap, as in the classifier: a calibration failure must
        # not leave store and detector desynced.
        staged = self.store.clone_empty()
        staged.add(
            priority=priority,
            features=features,
            prediction=predictions.astype(float).ravel(),
            target=np.asarray(targets, dtype=float).ravel(),
            **_as_columns(extra),
        )
        self.prom.calibrate(
            staged.column("features"),
            staged.column("prediction"),
            staged.column("target"),
        )
        self.store = staged
        if self.is_sharded:
            self._rebuild_shard_states()
        self._bump_epoch()
        return self

    def _full_calibrate(self):
        """Recalibrate from the store (fits clusters) and rebuild state."""
        self._materialize_composed()
        self.prom.calibrate(
            self.store.column("features"),
            self.store.column("prediction"),
            self.store.column("target"),
        )
        if self.is_sharded:
            self._rebuild_shard_states()
        self._bump_epoch()

    def _rebuild_shard_states(self) -> None:
        """Slice the detector's freshly calibrated state into per-shard
        states and seed the compose bundle (see the classifier's
        :meth:`StreamingPromClassifier._rebuild_shard_states`)."""
        prom = self.prom
        states = []
        for _, start, stop in self._shard_blocks():
            clusters = prom._clusters[start:stop]
            scores = [expert[start:stop] for expert in prom._scores]
            states.append(
                _ShardState(
                    scores=scores,
                    layouts=[
                        group_scores_by_label(s, clusters, prom.clusterer_.k_)
                        for s in scores
                    ],
                    clusters=clusters,
                )
            )
        self._shard_states = states
        self._build_bundle(fresh=True)

    def update(
        self,
        features,
        predictions,
        targets,
        priority=None,
        extra=None,
        retune_tau: bool = True,
    ) -> StoreUpdate:
        """Fold a micro-batch into the calibration state.

        Incremental when the detector uses per-sample (``"true"``)
        residuals — touching only the shards the batch routed to when
        sharded; ``"loo"`` falls back to recomputing all residuals
        (fitted clusterer kept — only :meth:`refresh` re-clusters).
        """
        self.prom._require_calibrated()
        features, predictions, targets = _check_calibration_inputs(
            features, predictions, targets
        )
        predictions = predictions.astype(float).ravel()
        targets = np.asarray(targets, dtype=float).ravel()
        if features.shape[1] != self._feature_dim:
            raise CalibrationError(
                f"feature dimensionality mismatch: calibrated with "
                f"{self._feature_dim}, got {features.shape[1]}"
            )
        columns = dict(
            features=features,
            prediction=predictions,
            target=targets,
            **_as_columns(extra),
        )
        if self.prom.calibration_residuals != "true":
            update = self.store.add(priority=priority, **columns)
            self.refresh(refit_clusters=False, retune_tau=retune_tau)
            return update

        prom = self.prom
        new_clusters = np.asarray(prom.clusterer_.assign(features), dtype=int)
        new_scores = [
            function.score(predictions, targets) for function in prom.score_functions
        ]
        update = self.store.add(priority=priority, **columns)
        if self._shard_states is None:
            self._apply(update, new_scores, new_clusters, retune_tau)
        else:
            self._apply_sharded(update, new_scores, new_clusters, retune_tau)
        self._bump_epoch()
        return update

    def evict(self, positions, retune_tau: bool = True) -> StoreUpdate:
        """Remove calibration samples by (global) store position."""
        self.prom._require_calibrated()
        _check_leaves_survivors(self.store, positions)
        update = self.store.evict(positions)
        if self.prom.calibration_residuals != "true":
            self.refresh(refit_clusters=False, retune_tau=retune_tau)
            return update
        empty = [np.zeros(0)] * len(self.prom.score_functions)
        no_clusters = np.zeros(0, dtype=int)
        if self._shard_states is None:
            self._apply(update, empty, no_clusters, retune_tau)
        else:
            self._apply_sharded(update, empty, no_clusters, retune_tau)
        self._bump_epoch()
        return update

    def _apply(self, update: StoreUpdate, new_scores, new_clusters, retune_tau: bool):
        prom = self.prom
        prom._layouts = [
            update_label_groups(
                layout, update.keep_mask, scores, new_clusters, order=update.order
            )
            for layout, scores in zip(prom._layouts, new_scores)
        ]
        prom._scores = [layout.scores for layout in prom._layouts]
        prom._clusters = np.concatenate([prom._clusters, new_clusters])[update.order]
        prom._features = self.store.column("features")
        prom._targets = self.store.column("target")
        if retune_tau:
            prom.weighting.resolve_tau(prom._features)

    def _apply_sharded(self, update, new_scores, new_clusters, retune_tau: bool):
        """Fold the batch into the touched shards, then recompose."""

        def fold(shard_id):
            state = self._shard_states[shard_id]
            sub = update.shard_updates[shard_id]
            routed = update.shard_batches[shard_id]
            state.layouts = [
                update_label_groups(
                    layout,
                    sub.keep_mask,
                    scores[routed],
                    new_clusters[routed],
                    order=sub.order,
                )
                for layout, scores in zip(state.layouts, new_scores)
            ]
            state.scores = [layout.scores for layout in state.layouts]
            state.clusters = np.concatenate(
                [state.clusters, new_clusters[routed]]
            )[sub.order]
            state.tau = None  # stale; shard_taus recomputes on read

        self._map_shards(update.touched, fold, parallel=False)
        self._compose_global(retune_tau)

    def recalibrate_shards(
        self, shard_ids=None, retune_tau: bool = True
    ) -> "StreamingPromRegressor":
        """Fully rescore the given shards from their store contents.

        Shard-local scoring needs per-sample residuals; a ``"loo"``
        detector couples scores across shards, so it falls back to the
        global ``refresh(refit_clusters=False)``.
        """
        if self._shard_states is None:
            raise CalibrationError(
                "recalibrate_shards needs a sharded store (n_shards > 1)"
            )
        self.prom._require_calibrated()
        if self.prom.calibration_residuals != "true":
            return self.refresh(refit_clusters=False, retune_tau=retune_tau)
        prom = self.prom
        if shard_ids is None:
            shard_ids = range(self.store.n_shards)

        def rescore(shard_id):
            shard = self.store.shards[shard_id]
            state = self._shard_states[shard_id]
            if len(shard) == 0:
                state.scores = [np.zeros(0) for _ in prom.score_functions]
                state.layouts = [
                    group_scores_by_label(
                        np.zeros(0), np.zeros(0, dtype=int), prom.clusterer_.k_
                    )
                    for _ in prom.score_functions
                ]
                state.clusters = np.zeros(0, dtype=int)
                state.tau = None
                return
            features = shard.column("features")
            predictions = shard.column("prediction")
            targets = shard.column("target")
            state.clusters = np.asarray(
                prom.clusterer_.assign(features), dtype=int
            )
            state.scores = [
                function.score(predictions, targets)
                for function in prom.score_functions
            ]
            state.layouts = [
                group_scores_by_label(s, state.clusters, prom.clusterer_.k_)
                for s in state.scores
            ]
            state.tau = None

        self._map_shards(shard_ids, rescore)
        self._compose_global(retune_tau)
        self._bump_epoch()
        return self

    def refresh(
        self, refit_clusters: bool = True, retune_tau: bool = True
    ) -> "StreamingPromRegressor":
        """Full recalibration from the current store contents.

        ``refit_clusters=False`` keeps the fitted pseudo-labeller and
        recomputes everything else (scores, assignments, tau, layouts)
        from scratch — the batch-path reference that the incremental
        ``update()`` is property-tested against.  ``retune_tau=False``
        keeps the current tau (only honored with
        ``refit_clusters=False``; a full ``calibrate()`` always
        re-resolves it).
        """
        if refit_clusters:
            self._full_calibrate()
            return self
        prom = self.prom
        prom._require_calibrated()
        self._materialize_composed()
        features = self.store.column("features")
        predictions = self.store.column("prediction")
        targets = self.store.column("target")
        if prom.calibration_residuals == "loo":
            reference = prom._loo_targets(features, targets)
        else:
            reference = targets
        prom._features = features
        prom._targets = targets
        if retune_tau:
            prom.weighting.resolve_tau(features)
        prom._scores = [
            function.score(predictions, reference)
            for function in prom.score_functions
        ]
        prom._clusters = np.asarray(prom.clusterer_.assign(features), dtype=int)
        prom._layouts = [
            group_scores_by_label(scores, prom._clusters, prom.clusterer_.k_)
            for scores in prom._scores
        ]
        if self.is_sharded:
            self._rebuild_shard_states()
        self._bump_epoch()
        return self

    def replace_outputs(self, features, predictions, targets) -> None:
        """Swap derived columns after a model update, then recalibrate.

        Keeps membership and the fitted clusterer is re-fit as part of
        the full recalibration (the model's feature space moved, so the
        old pseudo-labels are stale too).  A sharded store re-routes on
        the new features first (see the classifier's
        :meth:`~StreamingPromClassifier.replace_outputs`).
        """
        features, predictions, targets = _check_calibration_inputs(
            features, predictions, targets
        )
        self.store.replace_column("features", features)
        self.store.replace_column("prediction", predictions.astype(float).ravel())
        self.store.replace_column(
            "target", np.asarray(targets, dtype=float).ravel()
        )
        if self.is_sharded:
            self.store.rebalance(refit_router=True)
        self._full_calibrate()

    # -- deployment (delegation) --------------------------------------------------
    def evaluate(self, features, predictions, chunk_size=None):
        """Batch-evaluate via the wrapped detector (see
        :meth:`~repro.core.prom.PromRegressor.evaluate`); materializes
        any pending lazy composition first."""
        return self.prom.evaluate(features, predictions, chunk_size)

    def evaluate_one(self, feature, prediction):
        """Evaluate one prediction (see
        :meth:`~repro.core.prom.PromRegressor.evaluate_one`)."""
        return self.prom.evaluate_one(feature, prediction)

    def __repr__(self) -> str:
        return f"StreamingPromRegressor(store={self.store!r})"
