"""Streaming Prom detectors: incremental recalibration over a live store.

``PromClassifier.calibrate()`` is a batch operation: every call
recomputes per-expert nonconformity scores, label groupings and the
adaptive tau from scratch.  In deployment (paper Secs. 5.3-5.4) the
calibration set is a *stream* — relabelled drifting samples arrive in
micro-batches and stale samples are evicted — so full recalibration per
round costs ``O(rounds * n_calibration)`` where ``O(rounds * batch)``
suffices.

The wrappers here own a bounded
:class:`~repro.core.calibration_store.CalibrationStore` and maintain
the detector's calibration state *incrementally*:

* per-expert nonconformity scores are computed only for the new batch
  (every score function is row-wise pure, so per-batch scores are
  bit-identical to batch recomputation);
* per-label score groupings (:class:`~repro.core.pvalue.LabelGroupedScores`)
  are carried across the store mutation with one survivor copy and
  ``O(batch + n_labels)`` count arithmetic;
* the automatic tau is re-resolved against the surviving features via
  the same bounded kernel (``median_pairwise_tau``) a fresh
  ``calibrate()`` would use.

The invariant, property-tested in ``tests/core/test_streaming.py``:
after ANY sequence of ``update()``/``evict()`` calls, the wrapped
detector is **decision-identical** (bit-for-bit, including credibility
and confidence) to a fresh detector calibrated on the store's surviving
samples.  For the regressor the cluster pseudo-labeller is fixed at
``calibrate()`` time (new samples are assigned, never re-clustered), so
the equivalence reference is :meth:`StreamingPromRegressor.refresh`
with ``refit_clusters=False``; call ``refresh()`` to re-fit clusters
after heavy drift.
"""

from __future__ import annotations

import numpy as np

from .calibration_store import CalibrationStore, StoreUpdate
from .exceptions import CalibrationError
from .prom import PromClassifier, PromRegressor, _check_calibration_inputs
from .pvalue import group_scores_by_label, update_label_groups


def _as_columns(extra) -> dict:
    if extra is None:
        return {}
    return dict(extra)


def _check_leaves_survivors(store: CalibrationStore, positions) -> None:
    """Reject evictions that would empty the calibration store."""
    positions = np.asarray(positions, dtype=int)
    if len(store) - len(np.unique(positions % max(1, len(store)))) < 1:
        raise CalibrationError("eviction would empty the calibration store")


class StreamingPromClassifier:
    """Online wrapper around a :class:`~repro.core.prom.PromClassifier`.

    Args:
        prom: the detector to manage; a default one is created when
            omitted.  Evaluation methods (``evaluate``,
            ``evaluate_one``, ``prediction_region_batch``) delegate to
            it unchanged.
        capacity: calibration-store cap (paper: 1000).
        eviction: eviction policy instance or name (``"fifo"``,
            ``"reservoir"``, ``"lowest_weight"``).
        seed: RNG seed of the store (randomized policies).

    ``calibrate()`` resets the store and performs one full calibration;
    ``update()`` folds a micro-batch in incrementally.  Extra aligned
    columns (e.g. raw model inputs) may ride along in the store via
    ``extra=`` — the schema is fixed by the first call.
    """

    def __init__(self, prom=None, capacity: int = 1000, eviction="fifo", seed: int = 0):
        self.prom = prom or PromClassifier()
        self.store = CalibrationStore(capacity, eviction, seed=seed)

    # -- state --------------------------------------------------------------------
    @property
    def is_calibrated(self) -> bool:
        return self.prom.is_calibrated

    @property
    def calibration_size(self) -> int:
        return self.prom.calibration_size

    def _check_update_inputs(self, features, probabilities, labels):
        features, probabilities, labels = _check_calibration_inputs(
            features, probabilities, labels
        )
        labels = labels.astype(int)
        n_classes = self.prom._n_classes
        if probabilities.ndim != 2 or probabilities.shape[1] != n_classes:
            raise CalibrationError(
                f"probabilities must be (n, {n_classes}) to match the "
                f"calibrated detector"
            )
        if labels.min(initial=0) < 0 or labels.max(initial=0) >= n_classes:
            raise CalibrationError("label index out of calibrated range")
        return features, probabilities, labels

    # -- lifecycle ----------------------------------------------------------------
    def calibrate(
        self, features, probabilities, labels, priority=None, extra=None
    ) -> "StreamingPromClassifier":
        """Reset the store to this batch and fully calibrate the detector.

        When the batch exceeds ``capacity`` the eviction policy trims it
        first, so the cap holds from the very first calibration.
        """
        features, probabilities, labels = _check_calibration_inputs(
            features, probabilities, labels
        )
        # Build the new store aside and swap it in only once the
        # detector accepted the batch — a validation failure inside
        # prom.calibrate must not leave store and detector desynced.
        staged = CalibrationStore(
            self.store.capacity, self.store.policy, seed=self.store.seed
        )
        staged.add(
            priority=priority,
            features=features,
            probabilities=probabilities,
            label=np.asarray(labels).astype(int),
            **_as_columns(extra),
        )
        self.prom.calibrate(
            staged.column("features"),
            staged.column("probabilities"),
            staged.column("label"),
        )
        self.store = staged
        return self

    def update(
        self,
        features,
        probabilities,
        labels,
        priority=None,
        extra=None,
        retune_tau: bool = True,
    ) -> StoreUpdate:
        """Fold a micro-batch into the calibration state incrementally.

        Scores are computed for the new batch only; groupings and
        counts are carried across the store mutation; tau is
        re-resolved against the surviving features (pass
        ``retune_tau=False`` to freeze it — faster, but the detector
        then diverges from a fresh ``calibrate()`` until the next
        ``refresh``).  Returns the :class:`StoreUpdate` describing who
        survived.
        """
        self.prom._require_calibrated()
        features, probabilities, labels = self._check_update_inputs(
            features, probabilities, labels
        )
        prom = self.prom
        new_scores = [
            function.score(probabilities, labels) for function in prom.functions
        ]
        update = self.store.add(
            priority=priority,
            features=features,
            probabilities=probabilities,
            label=labels,
            **_as_columns(extra),
        )
        self._apply(update, new_scores, labels, retune_tau)
        return update

    def evict(self, positions, retune_tau: bool = True) -> StoreUpdate:
        """Remove calibration samples by store position."""
        self.prom._require_calibrated()
        _check_leaves_survivors(self.store, positions)
        update = self.store.evict(positions)
        self._apply(
            update,
            [np.zeros(0)] * len(self.prom.functions),
            np.zeros(0, dtype=int),
            retune_tau,
        )
        return update

    def _apply(self, update: StoreUpdate, new_scores, new_labels, retune_tau: bool):
        prom = self.prom
        keep = update.keep_mask
        prom._layouts = [
            update_label_groups(layout, keep, scores, new_labels)
            for layout, scores in zip(prom._layouts, new_scores)
        ]
        prom._scores = [layout.scores for layout in prom._layouts]
        prom._features = self.store.column("features")
        prom._labels = self.store.column("label")
        if retune_tau:
            prom.weighting.resolve_tau(prom._features)

    def refresh(self) -> "StreamingPromClassifier":
        """Full recalibration from the current store contents.

        The batch-path reference the incremental path must match; also
        the escape hatch after ``retune_tau=False`` updates.
        """
        self.prom.calibrate(
            self.store.column("features"),
            self.store.column("probabilities"),
            self.store.column("label"),
        )
        return self

    def replace_outputs(self, features, probabilities, labels) -> None:
        """Swap the derived columns after a model update, then recalibrate.

        Membership is unchanged — same samples, same arrival order —
        but the deployed model changed, so every stored feature vector
        and probability row is stale.  Incremental maintenance cannot
        help here (all scores change); this is the designed full-rebuild
        path.
        """
        features, probabilities, labels = _check_calibration_inputs(
            features, probabilities, labels
        )
        self.store.replace_column("features", features)
        self.store.replace_column("probabilities", probabilities)
        self.store.replace_column("label", np.asarray(labels))
        self.refresh()

    # -- deployment (delegation) --------------------------------------------------
    def evaluate(self, features, probabilities, predicted_labels=None, chunk_size=None):
        return self.prom.evaluate(features, probabilities, predicted_labels, chunk_size)

    def evaluate_one(self, feature, probability_row, predicted_label=None):
        return self.prom.evaluate_one(feature, probability_row, predicted_label)

    def prediction_region_batch(self, features, probabilities, chunk_size=None):
        return self.prom.prediction_region_batch(features, probabilities, chunk_size)

    def __repr__(self) -> str:
        return f"StreamingPromClassifier(store={self.store!r})"


class StreamingPromRegressor:
    """Online wrapper around a :class:`~repro.core.prom.PromRegressor`.

    The regression detector has two batch-coupled stages the classifier
    lacks: K-means pseudo-labels and (optionally) leave-one-out
    residual references.  Streaming handles them as follows:

    * the clusterer is **fixed** at ``calibrate()`` time; new samples
      are assigned to their nearest cluster (``clusterer_.assign``),
      never re-clustered.  Call :meth:`refresh` with
      ``refit_clusters=True`` after heavy drift.
    * ``calibration_residuals="true"`` (the default prom built here)
      keeps scores per-sample pure, enabling the incremental fast path.
      A ``"loo"`` detector couples every score to its neighbours, so
      ``update()`` transparently falls back to a full recompute of the
      LOO residuals — with the *fitted* clusterer, like every other
      update path — correct and still capacity-capped, just not
      amortized.
    """

    def __init__(self, prom=None, capacity: int = 1000, eviction="fifo", seed: int = 0):
        self.prom = prom or PromRegressor(calibration_residuals="true")
        self.store = CalibrationStore(capacity, eviction, seed=seed)

    @property
    def is_calibrated(self) -> bool:
        return self.prom.is_calibrated

    @property
    def calibration_size(self) -> int:
        return self.prom.calibration_size

    # -- lifecycle ----------------------------------------------------------------
    def calibrate(
        self, features, predictions, targets, priority=None, extra=None
    ) -> "StreamingPromRegressor":
        """Reset the store to this batch and fully calibrate (fits clusters)."""
        features, predictions, targets = _check_calibration_inputs(
            features, predictions, targets
        )
        # Staged swap, as in the classifier: a calibration failure must
        # not leave store and detector desynced.
        staged = CalibrationStore(
            self.store.capacity, self.store.policy, seed=self.store.seed
        )
        staged.add(
            priority=priority,
            features=features,
            prediction=predictions.astype(float).ravel(),
            target=np.asarray(targets, dtype=float).ravel(),
            **_as_columns(extra),
        )
        self.prom.calibrate(
            staged.column("features"),
            staged.column("prediction"),
            staged.column("target"),
        )
        self.store = staged
        return self

    def _full_calibrate(self):
        self.prom.calibrate(
            self.store.column("features"),
            self.store.column("prediction"),
            self.store.column("target"),
        )

    def update(
        self,
        features,
        predictions,
        targets,
        priority=None,
        extra=None,
        retune_tau: bool = True,
    ) -> StoreUpdate:
        """Fold a micro-batch into the calibration state.

        Incremental when the detector uses per-sample (``"true"``)
        residuals; ``"loo"`` falls back to recomputing all residuals
        (fitted clusterer kept — only :meth:`refresh` re-clusters).
        """
        self.prom._require_calibrated()
        features, predictions, targets = _check_calibration_inputs(
            features, predictions, targets
        )
        predictions = predictions.astype(float).ravel()
        targets = np.asarray(targets, dtype=float).ravel()
        if features.shape[1] != self.prom._features.shape[1]:
            raise CalibrationError(
                f"feature dimensionality mismatch: calibrated with "
                f"{self.prom._features.shape[1]}, got {features.shape[1]}"
            )
        columns = dict(
            features=features,
            prediction=predictions,
            target=targets,
            **_as_columns(extra),
        )
        if self.prom.calibration_residuals != "true":
            update = self.store.add(priority=priority, **columns)
            self.refresh(refit_clusters=False, retune_tau=retune_tau)
            return update

        prom = self.prom
        new_clusters = np.asarray(prom.clusterer_.assign(features), dtype=int)
        new_scores = [
            function.score(predictions, targets) for function in prom.score_functions
        ]
        update = self.store.add(priority=priority, **columns)
        self._apply(update, new_scores, new_clusters, retune_tau)
        return update

    def evict(self, positions, retune_tau: bool = True) -> StoreUpdate:
        """Remove calibration samples by store position."""
        self.prom._require_calibrated()
        _check_leaves_survivors(self.store, positions)
        update = self.store.evict(positions)
        if self.prom.calibration_residuals != "true":
            self.refresh(refit_clusters=False, retune_tau=retune_tau)
            return update
        self._apply(
            update,
            [np.zeros(0)] * len(self.prom.score_functions),
            np.zeros(0, dtype=int),
            retune_tau,
        )
        return update

    def _apply(self, update: StoreUpdate, new_scores, new_clusters, retune_tau: bool):
        prom = self.prom
        keep = update.keep_mask
        prom._layouts = [
            update_label_groups(layout, keep, scores, new_clusters)
            for layout, scores in zip(prom._layouts, new_scores)
        ]
        prom._scores = [layout.scores for layout in prom._layouts]
        prom._clusters = np.concatenate([prom._clusters, new_clusters])[keep]
        prom._features = self.store.column("features")
        prom._targets = self.store.column("target")
        if retune_tau:
            prom.weighting.resolve_tau(prom._features)

    def refresh(
        self, refit_clusters: bool = True, retune_tau: bool = True
    ) -> "StreamingPromRegressor":
        """Full recalibration from the current store contents.

        ``refit_clusters=False`` keeps the fitted pseudo-labeller and
        recomputes everything else (scores, assignments, tau, layouts)
        from scratch — the batch-path reference that the incremental
        ``update()`` is property-tested against.  ``retune_tau=False``
        keeps the current tau (only honored with
        ``refit_clusters=False``; a full ``calibrate()`` always
        re-resolves it).
        """
        if refit_clusters:
            self._full_calibrate()
            return self
        prom = self.prom
        prom._require_calibrated()
        features = self.store.column("features")
        predictions = self.store.column("prediction")
        targets = self.store.column("target")
        if prom.calibration_residuals == "loo":
            reference = prom._loo_targets(features, targets)
        else:
            reference = targets
        prom._features = features
        prom._targets = targets
        if retune_tau:
            prom.weighting.resolve_tau(features)
        prom._scores = [
            function.score(predictions, reference)
            for function in prom.score_functions
        ]
        prom._clusters = np.asarray(prom.clusterer_.assign(features), dtype=int)
        prom._layouts = [
            group_scores_by_label(scores, prom._clusters, prom.clusterer_.k_)
            for scores in prom._scores
        ]
        return self

    def replace_outputs(self, features, predictions, targets) -> None:
        """Swap derived columns after a model update, then recalibrate.

        Keeps membership and the fitted clusterer is re-fit as part of
        the full recalibration (the model's feature space moved, so the
        old pseudo-labels are stale too).
        """
        features, predictions, targets = _check_calibration_inputs(
            features, predictions, targets
        )
        self.store.replace_column("features", features)
        self.store.replace_column("prediction", predictions.astype(float).ravel())
        self.store.replace_column(
            "target", np.asarray(targets, dtype=float).ravel()
        )
        self._full_calibrate()

    # -- deployment (delegation) --------------------------------------------------
    def evaluate(self, features, predictions, chunk_size=None):
        return self.prom.evaluate(features, predictions, chunk_size)

    def evaluate_one(self, feature, prediction):
        return self.prom.evaluate_one(feature, prediction)

    def __repr__(self) -> str:
        return f"StreamingPromRegressor(store={self.store!r})"
