"""Deployment configuration objects (the PR 9 API redesign).

``stream_deployment`` grew one flat keyword per feature for eight PRs
— 22 by the time the multi-process tier landed — and every new serving
plane made the signature worse.  These frozen dataclasses group the
knobs by the plane that consumes them:

* :class:`LoopConfig` — the deployment loop itself (batching, relabel
  budget, drift monitor, model-update policy);
* :class:`ServingConfig` — the serving plane (sync vs async, worker
  threads, queue bound, backpressure, drain/record modes), plus an
  optional :class:`ProcessPoolConfig` for the shared-memory process
  tier (DESIGN.md §10);
* :class:`CheckpointConfig` — the durability plane (directory,
  retention, cadence, warm restart, retry policy);
* :class:`PruningConfig` — the evaluate kernels (router-aware shard
  pruning, spill, chunk width);
* :class:`TriggerConfig` — the drift-trigger plane (detection
  windows, detectors, decision policy, warmup, ensembles, per-shard
  triggers, cost-aware relabel budget; DESIGN.md §11).

All are frozen and validated at construction
(:class:`~repro.core.exceptions.ConfigurationError`, which IS-A
``ValueError``), so a bad value fails where it was written, not deep
inside a deployment run.  The legacy flat-kwarg spelling of
``stream_deployment`` still works for one release behind a
``DeprecationWarning`` shim that maps onto these objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from .exceptions import ConfigurationError

#: serving-queue policies accepted by ServingConfig.backpressure
BACKPRESSURE_CHOICES = ("coalesce", "drop", "block")

#: detection-window modes accepted by TriggerConfig.window_mode
TRIGGER_WINDOW_CHOICES = ("amount", "steps")

#: drift detectors accepted in TriggerConfig.detectors
TRIGGER_DETECTOR_CHOICES = ("credibility", "p_value", "accuracy_proxy")

#: decision policies accepted by TriggerConfig.policy
TRIGGER_POLICY_CHOICES = ("static", "quantile", "ewma", "hysteresis")

#: vote-combination modes accepted by TriggerConfig.ensemble
TRIGGER_ENSEMBLE_CHOICES = ("any", "all", "majority")


@dataclass(frozen=True)
class LoopConfig:
    """The deployment loop: batching, budget and update policy.

    Args:
        batch_size: micro-batch width (the serving quantum).
        budget_fraction: share of flagged samples the oracle relabels.
        monitor: a preconfigured
            :class:`~repro.core.report.DriftMonitor` (or any
            monitor-protocol object); ``None`` builds the trigger stack
            described by ``triggers``.  Mutually exclusive with
            ``triggers``.
        triggers: a :class:`TriggerConfig` describing the drift-trigger
            stack to assemble per run; ``None`` uses the default stack
            (decision-identical to the legacy monitor: window 100,
            threshold 0.3).
        update_on_alert: retrain the model only on monitor alerts
            (default) instead of on every relabelled batch.
        epochs: partial-fit epochs per model update.
    """

    batch_size: int = 64
    budget_fraction: float = 0.05
    monitor: object = None
    triggers: object = None
    update_on_alert: bool = True
    epochs: int = 20

    def __post_init__(self):
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if not 0.0 <= self.budget_fraction <= 1.0:
            raise ConfigurationError(
                f"budget_fraction must be in [0, 1], got {self.budget_fraction}"
            )
        if self.epochs < 1:
            raise ConfigurationError(
                f"epochs must be >= 1, got {self.epochs}"
            )
        if self.monitor is not None and self.triggers is not None:
            raise ConfigurationError(
                "monitor and triggers are mutually exclusive: pass a "
                "prebuilt monitor OR a TriggerConfig, not both"
            )


@dataclass(frozen=True)
class ProcessPoolConfig:
    """The multi-process serving tier (DESIGN.md §10).

    Args:
        workers: evaluator processes attaching the shared-memory arena.
        start_method: ``multiprocessing`` start method; ``None`` lets
            the pool prefer ``"fork"`` where available.
        table_capacity: byte size of the shared name-table block (an
            upper bound on the pickled manifest, not on calibration
            data).
    """

    workers: int = 2
    start_method: str | None = None
    table_capacity: int = 1 << 20

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.table_capacity < 4096:
            raise ConfigurationError(
                f"table_capacity must be >= 4096 bytes, got {self.table_capacity}"
            )


@dataclass(frozen=True)
class ServingConfig:
    """The serving plane: sync vs async loop, queue and process tier.

    Args:
        asynchronous: serve through an
            :class:`~repro.core.serving.AsyncServingLoop` (lock-free
            snapshot decisions, queued maintenance).  ``False`` keeps
            the synchronous inline loop — useful when only
            ``record_decisions`` is wanted.
        workers: background maintenance worker threads (async mode).
        queue_capacity: bound on pending maintenance jobs (async mode).
        backpressure: full-queue policy — ``"coalesce"``, ``"drop"``
            or ``"block"``.
        drain_each_step: apply and publish every queued job before the
            next batch — the sync-equivalence mode (async only).
        record_decisions: keep each batch's
            :class:`~repro.core.committee.DecisionBatch` on its stream
            step (memory-heavy; meant for tests).
        pool: optional :class:`ProcessPoolConfig`; when set, decisions
            are served by evaluator *processes* over shared-memory
            segments instead of in-process snapshot reads.
    """

    asynchronous: bool = True
    workers: int = 1
    queue_capacity: int = 32
    backpressure: str = "coalesce"
    drain_each_step: bool = False
    record_decisions: bool = False
    pool: ProcessPoolConfig | None = None

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.backpressure not in BACKPRESSURE_CHOICES:
            raise ConfigurationError(
                f"backpressure must be one of {BACKPRESSURE_CHOICES}, "
                f"got {self.backpressure!r}"
            )


@dataclass(frozen=True)
class CheckpointConfig:
    """The durability plane: incremental checkpoints + warm restart.

    Args:
        directory: checkpoint directory (``None`` disables the plane).
        keep: committed generations to retain.
        every: mutations/publishes between automatic checkpoints.
        restore: warm-restart from the newest restorable generation in
            ``directory`` before serving.
        retry: optional :class:`~repro.core.serving.RetryPolicy` for
            maintenance jobs (async mode) — transient failures back
            off and retry instead of dead-ending on first error.
    """

    directory: object = None
    keep: int = 3
    every: int = 1
    restore: bool = False
    retry: object = None

    def __post_init__(self):
        if self.keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {self.keep}")
        if self.every < 1:
            raise ConfigurationError(f"every must be >= 1, got {self.every}")


@dataclass(frozen=True)
class PruningConfig:
    """The evaluate kernels: shard pruning and chunking (DESIGN.md §9).

    Args:
        enabled: install a
            :class:`~repro.core.pruning.CandidatePruner` so
            segment-direct evaluation scores each sample only against
            its candidate shards.
        spill: fraction of the non-primary active shards each sample
            additionally scores, in ``[0, 1]`` (1.0 keeps decisions
            bit-identical to the unpruned path).
        chunk_size: evaluate-kernel test-row chunk width (``None``
            keeps the adaptive cell-budget default).
    """

    enabled: bool = True
    spill: float = 1.0
    chunk_size: int | None = None

    def __post_init__(self):
        if not 0.0 <= self.spill <= 1.0:
            raise ConfigurationError(
                f"spill must be in [0, 1], got {self.spill}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )


@dataclass(frozen=True)
class TriggerConfig:
    """The drift-trigger plane (DESIGN.md §11).

    Describes the trigger stack
    :func:`~repro.core.triggers.build_trigger_stack` assembles per
    deployment run: detection windows, one trigger per named detector
    (all sharing the same decision-policy settings), an ensemble rule,
    optional per-shard instantiation and an optional cost-aware relabel
    budget.  The all-defaults config builds the stack that is
    property-tested decision-identical to the legacy ``DriftMonitor``.

    Args:
        window: current detection-window span (samples or steps).
        window_mode: ``"amount"`` (last ``window`` samples) or
            ``"steps"`` (samples of the last ``window`` observe steps —
            the deterministic logical-time window).
        reference: reservoir capacity of the reference window.
        warmup: minimum current-window fill before a trigger may fire;
            ``None`` uses the legacy ``min(10, window)``.
        detectors: detector names, from ``"credibility"`` (windowed
            rejection rate, the legacy metric), ``"p_value"``
            (two-sample KS on the credibility distribution) and
            ``"accuracy_proxy"`` (expert-disagreement rate).
        policy: decision policy — ``"static"``, ``"quantile"``,
            ``"ewma"`` or ``"hysteresis"``.
        threshold: static/hysteresis-enter threshold, in (0, 1].
        quantile: rolling-history quantile (``"quantile"`` policy).
        history: metric history span (``"quantile"`` policy).
        ewma_alpha: EWMA smoothing factor (``"ewma"`` policy).
        ewma_widen: EWMA band width in std deviations.
        hysteresis_exit: disarm threshold (``"hysteresis"`` policy);
            ``None`` uses ``threshold / 2``.
        ensemble: multi-detector vote combination — ``"any"``,
            ``"all"`` or ``"majority"``.
        per_shard: instantiate one stack per calibration shard, keyed
            off the deployment's :class:`~repro.core.sharding.ShardRouter`.
        seed: base seed for the reference reservoirs (per-shard and
            per-detector seeds derive from it deterministically).
        budget_ceiling: when set, attach a
            :class:`~repro.core.triggers.CostAwareBudgetPolicy` that
            raises the relabel budget toward this ceiling on fires.
        spill: the deployment's prune-spill setting, fed to the
            coverage cost model (1.0 = exact mode, no expected loss).
    """

    window: int = 100
    window_mode: str = "amount"
    reference: int = 256
    warmup: int | None = None
    detectors: tuple = ("credibility",)
    policy: str = "static"
    threshold: float = 0.3
    quantile: float = 0.95
    history: int = 32
    ewma_alpha: float = 0.3
    ewma_widen: float = 2.0
    hysteresis_exit: float | None = None
    ensemble: str = "any"
    per_shard: bool = False
    seed: int = 0
    budget_ceiling: float | None = None
    spill: float = 1.0

    def __post_init__(self):
        object.__setattr__(self, "detectors", tuple(self.detectors))
        if self.window < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {self.window}"
            )
        if self.window_mode not in TRIGGER_WINDOW_CHOICES:
            raise ConfigurationError(
                f"window_mode must be one of {TRIGGER_WINDOW_CHOICES}, "
                f"got {self.window_mode!r}"
            )
        if self.reference < 1:
            raise ConfigurationError(
                f"reference must be >= 1, got {self.reference}"
            )
        if self.warmup is not None and self.warmup < 0:
            raise ConfigurationError(
                f"warmup must be >= 0 or None, got {self.warmup}"
            )
        if not self.detectors:
            raise ConfigurationError("detectors must name at least one detector")
        for name in self.detectors:
            if name not in TRIGGER_DETECTOR_CHOICES:
                raise ConfigurationError(
                    f"detectors must be from {TRIGGER_DETECTOR_CHOICES}, "
                    f"got {name!r}"
                )
        if self.policy not in TRIGGER_POLICY_CHOICES:
            raise ConfigurationError(
                f"policy must be one of {TRIGGER_POLICY_CHOICES}, "
                f"got {self.policy!r}"
            )
        if not 0.0 < self.threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1], got {self.threshold}"
            )
        if not 0.0 < self.quantile < 1.0:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )
        if self.history < 2:
            raise ConfigurationError(
                f"history must be >= 2, got {self.history}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.ewma_widen < 0.0:
            raise ConfigurationError(
                f"ewma_widen must be >= 0, got {self.ewma_widen}"
            )
        if self.hysteresis_exit is not None and not (
            0.0 <= self.hysteresis_exit <= self.threshold
        ):
            raise ConfigurationError(
                f"hysteresis_exit must be in [0, threshold], "
                f"got {self.hysteresis_exit}"
            )
        if self.ensemble not in TRIGGER_ENSEMBLE_CHOICES:
            raise ConfigurationError(
                f"ensemble must be one of {TRIGGER_ENSEMBLE_CHOICES}, "
                f"got {self.ensemble!r}"
            )
        if self.budget_ceiling is not None and not (
            0.0 < self.budget_ceiling <= 1.0
        ):
            raise ConfigurationError(
                f"budget_ceiling must be in (0, 1], got {self.budget_ceiling}"
            )
        if not 0.0 <= self.spill <= 1.0:
            raise ConfigurationError(
                f"spill must be in [0, 1], got {self.spill}"
            )
