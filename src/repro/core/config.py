"""Deployment configuration objects (the PR 9 API redesign).

``stream_deployment`` grew one flat keyword per feature for eight PRs
— 22 by the time the multi-process tier landed — and every new serving
plane made the signature worse.  These frozen dataclasses group the
knobs by the plane that consumes them:

* :class:`LoopConfig` — the deployment loop itself (batching, relabel
  budget, drift monitor, model-update policy);
* :class:`ServingConfig` — the serving plane (sync vs async, worker
  threads, queue bound, backpressure, drain/record modes), plus an
  optional :class:`ProcessPoolConfig` for the shared-memory process
  tier (DESIGN.md §10);
* :class:`CheckpointConfig` — the durability plane (directory,
  retention, cadence, warm restart, retry policy);
* :class:`PruningConfig` — the evaluate kernels (router-aware shard
  pruning, spill, chunk width).

All are frozen and validated at construction
(:class:`~repro.core.exceptions.ConfigurationError`, which IS-A
``ValueError``), so a bad value fails where it was written, not deep
inside a deployment run.  The legacy flat-kwarg spelling of
``stream_deployment`` still works for one release behind a
``DeprecationWarning`` shim that maps onto these objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from .exceptions import ConfigurationError

#: serving-queue policies accepted by ServingConfig.backpressure
BACKPRESSURE_CHOICES = ("coalesce", "drop", "block")


@dataclass(frozen=True)
class LoopConfig:
    """The deployment loop: batching, budget and update policy.

    Args:
        batch_size: micro-batch width (the serving quantum).
        budget_fraction: share of flagged samples the oracle relabels.
        monitor: a preconfigured
            :class:`~repro.core.report.DriftMonitor`; ``None`` creates
            the default (window 100, threshold 0.3) per run.
        update_on_alert: retrain the model only on monitor alerts
            (default) instead of on every relabelled batch.
        epochs: partial-fit epochs per model update.
    """

    batch_size: int = 64
    budget_fraction: float = 0.05
    monitor: object = None
    update_on_alert: bool = True
    epochs: int = 20

    def __post_init__(self):
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if not 0.0 <= self.budget_fraction <= 1.0:
            raise ConfigurationError(
                f"budget_fraction must be in [0, 1], got {self.budget_fraction}"
            )
        if self.epochs < 1:
            raise ConfigurationError(
                f"epochs must be >= 1, got {self.epochs}"
            )


@dataclass(frozen=True)
class ProcessPoolConfig:
    """The multi-process serving tier (DESIGN.md §10).

    Args:
        workers: evaluator processes attaching the shared-memory arena.
        start_method: ``multiprocessing`` start method; ``None`` lets
            the pool prefer ``"fork"`` where available.
        table_capacity: byte size of the shared name-table block (an
            upper bound on the pickled manifest, not on calibration
            data).
    """

    workers: int = 2
    start_method: str | None = None
    table_capacity: int = 1 << 20

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.table_capacity < 4096:
            raise ConfigurationError(
                f"table_capacity must be >= 4096 bytes, got {self.table_capacity}"
            )


@dataclass(frozen=True)
class ServingConfig:
    """The serving plane: sync vs async loop, queue and process tier.

    Args:
        asynchronous: serve through an
            :class:`~repro.core.serving.AsyncServingLoop` (lock-free
            snapshot decisions, queued maintenance).  ``False`` keeps
            the synchronous inline loop — useful when only
            ``record_decisions`` is wanted.
        workers: background maintenance worker threads (async mode).
        queue_capacity: bound on pending maintenance jobs (async mode).
        backpressure: full-queue policy — ``"coalesce"``, ``"drop"``
            or ``"block"``.
        drain_each_step: apply and publish every queued job before the
            next batch — the sync-equivalence mode (async only).
        record_decisions: keep each batch's
            :class:`~repro.core.committee.DecisionBatch` on its stream
            step (memory-heavy; meant for tests).
        pool: optional :class:`ProcessPoolConfig`; when set, decisions
            are served by evaluator *processes* over shared-memory
            segments instead of in-process snapshot reads.
    """

    asynchronous: bool = True
    workers: int = 1
    queue_capacity: int = 32
    backpressure: str = "coalesce"
    drain_each_step: bool = False
    record_decisions: bool = False
    pool: ProcessPoolConfig | None = None

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.backpressure not in BACKPRESSURE_CHOICES:
            raise ConfigurationError(
                f"backpressure must be one of {BACKPRESSURE_CHOICES}, "
                f"got {self.backpressure!r}"
            )


@dataclass(frozen=True)
class CheckpointConfig:
    """The durability plane: incremental checkpoints + warm restart.

    Args:
        directory: checkpoint directory (``None`` disables the plane).
        keep: committed generations to retain.
        every: mutations/publishes between automatic checkpoints.
        restore: warm-restart from the newest restorable generation in
            ``directory`` before serving.
        retry: optional :class:`~repro.core.serving.RetryPolicy` for
            maintenance jobs (async mode) — transient failures back
            off and retry instead of dead-ending on first error.
    """

    directory: object = None
    keep: int = 3
    every: int = 1
    restore: bool = False
    retry: object = None

    def __post_init__(self):
        if self.keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {self.keep}")
        if self.every < 1:
            raise ConfigurationError(f"every must be >= 1, got {self.every}")


@dataclass(frozen=True)
class PruningConfig:
    """The evaluate kernels: shard pruning and chunking (DESIGN.md §9).

    Args:
        enabled: install a
            :class:`~repro.core.pruning.CandidatePruner` so
            segment-direct evaluation scores each sample only against
            its candidate shards.
        spill: fraction of the non-primary active shards each sample
            additionally scores, in ``[0, 1]`` (1.0 keeps decisions
            bit-identical to the unpruned path).
        chunk_size: evaluate-kernel test-row chunk width (``None``
            keeps the adaptive cell-budget default).
    """

    enabled: bool = True
    spill: float = 1.0
    chunk_size: int | None = None

    def __post_init__(self):
        if not 0.0 <= self.spill <= 1.0:
            raise ConfigurationError(
                f"spill must be in [0, 1], got {self.spill}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )
