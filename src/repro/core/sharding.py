"""Sharded calibration architecture: routers + a sharded store.

One monolithic :class:`~repro.core.calibration_store.CalibrationStore`
serializes capacity, eviction and recalibration behind a single buffer
— the scaling wall for calibration sets meant to keep up with heavy
drift traffic.  This module partitions the calibration stream across N
independent stores:

* a :class:`ShardRouter` assigns every sample a shard (pluggable
  keying: by true label, by feature-space K-means cluster via
  :mod:`repro.ml.cluster`, or a stateless feature-hash fallback);
* a :class:`ShardedCalibrationStore` owns one
  :class:`~repro.core.calibration_store.CalibrationStore` per shard —
  each with its own capacity and eviction policy — while exposing the
  union as a single store: concatenated ``column()`` views (shard 0
  rows, then shard 1, ...) and a :class:`ShardedStoreUpdate` that is a
  drop-in :class:`~repro.core.calibration_store.StoreUpdate` over the
  global combined layout, so every existing incremental consumer (the
  streaming detectors, auxiliary-array carries, the equivalence tests)
  keeps meaning unchanged.

Per-shard eviction and recalibration then run independently — and, in
the streaming wrappers, in parallel — with update work proportional to
the *touched* shards, not the whole calibration set.  See DESIGN.md §4.
"""

from __future__ import annotations

import abc
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..ml.cluster import KMeans
from .calibration_store import CalibrationStore, StoreUpdate, check_batch_columns
from .exceptions import (
    CalibrationError,
    ConfigurationError,
    LockOrderError,
    ServingError,
    ValidationError,
)


class _LockOrderSanitizer:
    """Thread-local held-shard-lock stack: the dynamic lock-order probe.

    The static analyzer (promlint PL002) proves ascending order only
    for literal shard-id sets; this sanitizer is the runtime complement
    for everything the AST cannot see.  While enabled, every
    :meth:`ShardedCalibrationStore.acquire_shards` acquisition is
    checked against the shard locks the calling thread already holds on
    the *same store*: acquiring a shard id not strictly greater than
    every held id raises
    :class:`~repro.core.exceptions.LockOrderError` immediately, turning
    a latent deadlock (two workers nesting overlapping shard sets in
    opposite orders) or a guaranteed self-deadlock (re-acquiring a held
    non-reentrant lock) into a loud test failure.

    Disabled (the default) the hooks are a single boolean check, so the
    production hot path pays nothing; the ``concurrency``-marked test
    suite arms it through an autouse fixture.
    """

    def __init__(self):
        self._local = threading.local()
        self.enabled = False

    def _held(self) -> list:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def held_shards(self, store) -> tuple:
        """Shard ids of ``store`` held by the calling thread, ascending."""
        return tuple(
            sorted(
                shard_id
                for store_id, shard_id in self._held()
                if store_id == id(store)
            )
        )

    def check(self, store, ordered_ids) -> None:
        """Raise :class:`LockOrderError` unless the acquisition is ascending.

        ``ordered_ids`` is the (sorted) id set one ``acquire_shards``
        call is about to take; it must sit strictly above every id the
        thread already holds on this store.
        """
        held = self.held_shards(store)
        if held and ordered_ids and min(ordered_ids) <= max(held):
            raise LockOrderError(
                f"out-of-order shard lock acquisition: thread holds "
                f"{list(held)} and tried to acquire {list(ordered_ids)}; "
                f"nested acquisitions must be strictly ascending — take "
                f"every needed shard in one acquire_shards() call"
            )

    def push(self, store, shard_id: int) -> None:
        """Record the calling thread now holding ``shard_id`` of ``store``."""
        self._held().append((id(store), shard_id))

    def pop(self, store, shard_id: int) -> None:
        """Forget one held-entry of ``shard_id`` of ``store``, if recorded."""
        entry = (id(store), shard_id)
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == entry:
                del held[index]
                return


_LOCK_SANITIZER = _LockOrderSanitizer()


def enable_lock_order_sanitizer() -> None:
    """Arm the runtime lock-order sanitizer (process-wide)."""
    _LOCK_SANITIZER.enabled = True


def disable_lock_order_sanitizer() -> None:
    """Disarm the runtime lock-order sanitizer and drop held-state."""
    _LOCK_SANITIZER.enabled = False


def lock_order_sanitizer_enabled() -> bool:
    """Whether the runtime lock-order sanitizer is currently armed."""
    return _LOCK_SANITIZER.enabled


class ShardRouter(abc.ABC):
    """Assigns calibration samples to shards.

    Routers are deterministic functions of the sample (plus any fitted
    state), so replaying a stream reproduces the same shard layout.
    Stateful routers (:class:`ClusterShardRouter`) must be ``fit``
    before they can ``route``; stateless ones are born fitted.
    """

    #: registry name accepted by :func:`resolve_shard_router`
    name: str = "base"

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)

    @property
    def is_fitted(self) -> bool:
        """Whether the router can :meth:`route` (stateless routers always can)."""
        return True

    def fit(self, features, labels=None) -> "ShardRouter":
        """Learn routing state from a calibration batch (no-op default)."""
        return self

    def clone_unfitted(self) -> "ShardRouter":
        """A fresh router of the same configuration, fitted state dropped."""
        return self

    @abc.abstractmethod
    def route(self, features, labels=None) -> np.ndarray:
        """Return the shard id of every sample, shape ``(n,)``."""

    def _check_routes(self, shard_ids: np.ndarray) -> np.ndarray:
        shard_ids = np.asarray(shard_ids, dtype=int)
        if len(shard_ids) and (
            shard_ids.min() < 0 or shard_ids.max() >= self.n_shards
        ):
            raise CalibrationError(
                f"{self!r} produced shard ids outside [0, {self.n_shards})"
            )
        return shard_ids

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(n_shards={self.n_shards})"


class HashShardRouter(ShardRouter):
    """Stateless fallback: deterministic per-row hash of the features.

    Hashes the canonical float64 byte representation of each feature
    vector (CRC-32), so identical vectors always land on the same shard
    and the distribution is near-uniform without any fitted state.
    """

    name = "hash"

    def route(self, features, labels=None) -> np.ndarray:
        """Return each sample's CRC-32 feature-hash shard id, shape ``(n,)``."""
        features = np.ascontiguousarray(np.asarray(features, dtype=np.float64))
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return self._check_routes(
            [zlib.crc32(row.tobytes()) % self.n_shards for row in features]
        )


class LabelShardRouter(ShardRouter):
    """Route by true label: ``shard = label % n_shards``.

    Keeps each label's calibration samples together, so per-shard
    eviction cannot starve a label group and label-local recalibration
    touches exactly one shard.  Classification only — the regression
    store has no integer label column.
    """

    name = "label"

    def route(self, features, labels=None) -> np.ndarray:
        """Return ``labels % n_shards`` per sample.

        Raises:
            CalibrationError: when ``labels`` is ``None`` (label-free
                schemas must use the hash or cluster router).
        """
        if labels is None:
            raise CalibrationError(
                "label routing needs the store's label column; use the "
                "'hash' or 'cluster' router for label-free (regression) stores"
            )
        return self._check_routes(np.asarray(labels, dtype=int) % self.n_shards)


class ClusterShardRouter(ShardRouter):
    """Route by feature-space K-means cluster (:mod:`repro.ml.cluster`).

    Fit once on the first calibration batch; afterwards every sample is
    assigned its nearest fitted center.  Drifting samples that share a
    feature region then churn the same shard, leaving the others'
    calibration state untouched.
    """

    name = "cluster"

    def __init__(self, n_shards: int, seed: int = 0, max_iter: int = 50):
        super().__init__(n_shards)
        self.seed = seed
        self.max_iter = max_iter
        self._kmeans = None

    @property
    def is_fitted(self) -> bool:
        """Whether K-means centers have been fit (required to route)."""
        return self._kmeans is not None

    @property
    def centers(self) -> np.ndarray | None:
        """The fitted per-shard K-means centers (``None`` before ``fit``).

        Row ``i`` is shard ``i``'s center (fewer rows than shards when
        the fitting batch was small).  The candidate pruner
        (:mod:`repro.core.pruning`) uses these as shard centroids for
        spill-neighbor ordering instead of re-deriving block means.
        """
        return None if self._kmeans is None else self._kmeans.cluster_centers_

    def fit(self, features, labels=None) -> "ClusterShardRouter":
        """Fit K-means centers on a calibration batch.

        Places ``min(n_shards, len(features))`` centers — spare shards
        stay empty until a larger refit.

        Raises:
            CalibrationError: on an empty or non-2-D feature batch.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or len(features) == 0:
            raise CalibrationError(
                "cluster routing needs a non-empty 2-D feature batch to fit"
            )
        # Cannot place more centers than samples; spare shards stay empty
        # until a larger refit.
        k = min(self.n_shards, len(features))
        self._kmeans = KMeans(
            n_clusters=k, max_iter=self.max_iter, seed=self.seed
        ).fit(features)
        return self

    def clone_unfitted(self) -> "ClusterShardRouter":
        """A same-configuration router with the fitted centers dropped."""
        return ClusterShardRouter(
            self.n_shards, seed=self.seed, max_iter=self.max_iter
        )

    def route(self, features, labels=None) -> np.ndarray:
        """Return each sample's nearest-fitted-center shard id.

        Raises:
            CalibrationError: when the router has not been ``fit``.
        """
        if not self.is_fitted:
            raise CalibrationError(
                "ClusterShardRouter must be fit before routing"
            )
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return self._check_routes(self._kmeans.predict(features))


# write-once registry: populated at import time, read-only afterwards
_ROUTERS = {  # promlint: disable=PL005
    router.name: router
    for router in (HashShardRouter, LabelShardRouter, ClusterShardRouter)
}


def resolve_shard_router(router, n_shards: int, seed: int = 0) -> ShardRouter:
    """Return a :class:`ShardRouter` from an instance or registry name."""
    if isinstance(router, ShardRouter):
        if router.n_shards != n_shards:
            raise ConfigurationError(
                f"router covers {router.n_shards} shards, store has {n_shards}"
            )
        return router
    if isinstance(router, str):
        try:
            cls = _ROUTERS[router]
        except KeyError:
            raise ConfigurationError(
                f"unknown shard router {router!r}; choose from {sorted(_ROUTERS)}"
            ) from None
        if cls is ClusterShardRouter:
            return cls(n_shards, seed=seed)
        return cls(n_shards)
    raise TypeError(
        f"router must be a ShardRouter or one of {sorted(_ROUTERS)}, "
        f"got {type(router).__name__}"
    )


@dataclass(frozen=True)
class ShardedStoreUpdate(StoreUpdate):
    """A global :class:`StoreUpdate` plus its per-shard decomposition.

    ``keep_mask``/``order``/``evicted`` are expressed over the *global*
    combined layout (old global exposed rows, then the added batch), so
    any single-store consumer works unchanged.  The extra fields let
    shard-aware consumers (the streaming wrappers) fold only the
    touched shards:

    Attributes:
        shard_updates: shard id -> that shard's own :class:`StoreUpdate`
            (in the shard's local combined layout).
        shard_batches: shard id -> positions of the added batch routed
            to that shard (empty arrays for pure evictions).
        touched: sorted shard ids that mutated.
    """

    shard_updates: dict = field(default_factory=dict)
    shard_batches: dict = field(default_factory=dict)

    @property
    def touched(self) -> tuple:
        """Sorted ids of the shards this mutation actually changed."""
        return tuple(sorted(self.shard_updates))


class ShardedCalibrationStore:
    """N independent :class:`CalibrationStore` shards behind one facade.

    Args:
        capacity: total capacity, split evenly across shards (first
            shards absorb the remainder) unless ``shard_capacities``
            gives an explicit per-shard split.
        n_shards: number of shards (>= 1).
        router: :class:`ShardRouter` instance or registry name
            (``"hash"``, ``"label"``, ``"cluster"``).  Stateful routers
            are fit automatically on the first added batch.
        policy: one eviction policy spec for every shard, or a sequence
            of ``n_shards`` per-shard specs.
        seed: base seed; shard ``i`` seeds its store with ``seed + i``
            so randomized policies stay independent and reproducible.
        feature_column / label_column: the column names the router keys
            on (``label_column=None`` for label-free schemas).
        shard_capacities: optional explicit per-shard capacities.

    The exposed (global) order is shard 0's rows, then shard 1's, and
    so on, each shard in its own exposed order.  ``column()`` returns a
    cached concatenated snapshot, invalidated on every mutation.
    Arrival counters are *per shard* — each shard numbers its own
    stream, which is what keeps per-shard reservoir statistics honest.
    """

    def __init__(
        self,
        capacity: int,
        n_shards: int,
        router="hash",
        policy="fifo",
        seed: int = 0,
        feature_column: str = "features",
        label_column: str | None = "label",
        shard_capacities=None,
    ):
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if shard_capacities is None:
            if capacity < n_shards:
                raise ConfigurationError(
                    f"capacity {capacity} cannot give each of {n_shards} "
                    f"shards at least one slot"
                )
            base, remainder = divmod(int(capacity), n_shards)
            shard_capacities = [
                base + (1 if i < remainder else 0) for i in range(n_shards)
            ]
        else:
            shard_capacities = [int(c) for c in shard_capacities]
            if len(shard_capacities) != n_shards:
                raise ConfigurationError(
                    f"need one capacity per shard, got {len(shard_capacities)} "
                    f"for {n_shards} shards"
                )
        if isinstance(policy, (list, tuple)):
            policies = list(policy)
            if len(policies) != n_shards:
                raise ConfigurationError(
                    f"need one eviction policy per shard, got {len(policies)} "
                    f"for {n_shards} shards"
                )
        else:
            policies = [policy] * n_shards
        self.capacity = sum(shard_capacities)
        self.n_shards = int(n_shards)
        self.seed = seed
        self.feature_column = feature_column
        self.label_column = label_column
        self.router = resolve_shard_router(router, n_shards, seed=seed)
        self.shards = [
            CalibrationStore(cap, pol, seed=seed + i)
            for i, (cap, pol) in enumerate(zip(shard_capacities, policies))
        ]
        self._column_cache: dict[str, np.ndarray] = {}
        # Per-shard immutable column copies (the segment cache): one
        # dict per shard, invalidated only when *that* shard mutates.
        # Segment copies are what the streaming compose layer and the
        # structural-sharing snapshots hold (core/segments.py) — they
        # must be owned copies because slot-reuse eviction rewrites the
        # shard's internal buffers in place.
        self._segment_cache: list[dict[str, np.ndarray]] = [
            {} for _ in range(self.n_shards)
        ]
        # Concurrency plane (see core/serving.py and DESIGN.md §5):
        # per-shard write locks taken by background maintenance workers,
        # and monotone epoch counters tagging every mutation so snapshot
        # staleness is observable.  The locks do NOT make add()/evict()
        # thread-safe on their own — they are the *structural-mutation
        # guard*: clear() and rebalance() refuse to run while a foreign
        # thread holds any shard, because both rewrite shard membership
        # wholesale under a worker's feet.
        self._shard_locks = [threading.Lock() for _ in range(self.n_shards)]
        self._lock_holders: dict[int, int] = {}
        self._holder_guard = threading.Lock()
        self._shard_epochs = [0] * self.n_shards
        self._epoch = 0

    # -- concurrency plane --------------------------------------------------------
    def __getstate__(self):
        """Pickle/deepcopy support: locks are process-local, not state.

        A copied store starts with fresh, unheld locks (a deep copy
        taken while a worker holds a shard would otherwise clone a
        permanently-locked mutex).
        """
        state = self.__dict__.copy()
        state["_shard_locks"] = None
        state["_holder_guard"] = None
        state["_lock_holders"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._shard_locks = [threading.Lock() for _ in range(self.n_shards)]
        self._holder_guard = threading.Lock()
        self._lock_holders = {}

    @property
    def epoch(self) -> int:
        """Monotone count of store mutations (adds, evictions, rebuilds)."""
        return self._epoch

    @property
    def shard_epochs(self) -> tuple:
        """Per-shard mutation counters (epoch tagging for staleness)."""
        return tuple(self._shard_epochs)

    def _tag_mutation(self, shard_ids=None) -> None:
        self._epoch += 1
        for shard_id in range(self.n_shards) if shard_ids is None else shard_ids:
            self._shard_epochs[shard_id] += 1

    def _invalidate_columns(self, shard_ids=None) -> None:
        """Drop cached concatenations and the given shards' segment copies.

        Called *before* a mutation with the shard ids about to be
        touched (all shards by default), so a policy raising mid-loop
        can never leave a stale cached snapshot outliving a partial
        mutation.
        """
        self._column_cache = {}
        for shard_id in range(self.n_shards) if shard_ids is None else shard_ids:
            self._segment_cache[int(shard_id)].clear()

    @contextmanager
    def acquire_shards(self, shard_ids=None):
        """Hold the write locks of ``shard_ids`` (all shards by default).

        Locks are acquired in ascending shard order, so concurrent
        workers locking overlapping shard sets cannot deadlock.  While
        held, structural mutations (:meth:`clear`, :meth:`rebalance`)
        from *other* threads are rejected; the holding thread itself may
        still run them (a worker rebuilding state inside its own
        critical section is the designed path).

        Nested calls from one thread must keep the global order
        ascending too — the second call's lowest shard id must exceed
        the first call's highest.  The runtime lock-order sanitizer
        (:func:`enable_lock_order_sanitizer`, armed by the
        ``concurrency`` test fixture) raises
        :class:`~repro.core.exceptions.LockOrderError` when that is
        violated instead of letting the acquisition deadlock.
        """
        if shard_ids is None:
            shard_ids = range(self.n_shards)
        ordered = sorted(set(int(s) for s in shard_ids))
        if ordered and (ordered[0] < 0 or ordered[-1] >= self.n_shards):
            raise ValidationError(
                f"shard id out of range for {self.n_shards} shards"
            )
        sanitize = _LOCK_SANITIZER.enabled
        if sanitize:
            _LOCK_SANITIZER.check(self, ordered)
        me = threading.get_ident()
        acquired = []
        try:
            for shard_id in ordered:
                self._shard_locks[shard_id].acquire()
                acquired.append(shard_id)
                with self._holder_guard:
                    self._lock_holders[shard_id] = me
                if sanitize:
                    _LOCK_SANITIZER.push(self, shard_id)
            yield self
        finally:
            for shard_id in reversed(acquired):
                if sanitize:
                    _LOCK_SANITIZER.pop(self, shard_id)
                with self._holder_guard:
                    self._lock_holders.pop(shard_id, None)
                self._shard_locks[shard_id].release()

    def locked_shard_ids(self) -> tuple:
        """Shard ids whose write lock is currently held (any thread)."""
        with self._holder_guard:
            return tuple(sorted(self._lock_holders))

    @contextmanager
    def _structural_mutation(self, operation: str):
        """Hold every shard write lock for a structural mutation.

        Locks the caller does not already hold are taken with
        non-blocking acquires: a shard held by a *foreign* thread (an
        in-flight maintenance worker) makes the mutation raise instead
        of waiting — and because the locks are actually held for the
        duration, a worker cannot slip in between the check and the
        mutation either (no check-then-act window).  Shards already
        held by the calling thread are left alone, so a worker running
        ``rebalance`` inside its own critical section proceeds, and
        the non-reentrant locks cannot self-deadlock.
        """
        me = threading.get_ident()
        with self._holder_guard:
            mine = {
                shard_id
                for shard_id, holder in self._lock_holders.items()
                if holder == me
            }
        acquired = []
        sanitize = _LOCK_SANITIZER.enabled
        try:
            for shard_id in range(self.n_shards):
                if shard_id in mine:
                    continue
                if not self._shard_locks[shard_id].acquire(blocking=False):
                    raise ServingError(
                        f"cannot {operation} while shard lock {shard_id} is "
                        f"held by an in-flight maintenance worker; drain "
                        f"the serving queue first"
                    )
                acquired.append(shard_id)
                with self._holder_guard:
                    self._lock_holders[shard_id] = me
                if sanitize:
                    # non-blocking acquires cannot deadlock, but the
                    # held-set must stay accurate for nested
                    # acquire_shards calls made while we hold these
                    _LOCK_SANITIZER.push(self, shard_id)
            yield self
        finally:
            for shard_id in reversed(acquired):
                if sanitize:
                    _LOCK_SANITIZER.pop(self, shard_id)
                with self._holder_guard:
                    self._lock_holders.pop(shard_id, None)
                self._shard_locks[shard_id].release()

    # -- facade state -------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def n_seen(self) -> int:
        """Total samples ever streamed through any shard."""
        return sum(shard.n_seen for shard in self.shards)

    @property
    def shard_sizes(self) -> tuple:
        """Current number of stored samples in each shard."""
        return tuple(len(shard) for shard in self.shards)

    @property
    def shard_capacities(self) -> tuple:
        """Per-shard capacity bounds (their sum is :attr:`capacity`)."""
        return tuple(shard.capacity for shard in self.shards)

    @property
    def policies(self) -> tuple:
        """Each shard's resolved :class:`EvictionPolicy` instance."""
        return tuple(shard.policy for shard in self.shards)

    @property
    def column_names(self) -> tuple:
        """The adopted column schema (``()`` before the first add)."""
        for shard in self.shards:
            if shard.column_names:
                return shard.column_names
        return ()

    def _offsets(self) -> np.ndarray:
        """Global exposed start position of each shard's block."""
        sizes = np.fromiter(
            (len(shard) for shard in self.shards), dtype=np.int64,
            count=self.n_shards,
        )
        return np.concatenate([[0], np.cumsum(sizes)[:-1]])

    def _concat(self, parts, key):
        if key not in self._column_cache:
            self._column_cache[key] = (
                np.concatenate(parts) if parts else np.zeros(0)
            )
        return self._column_cache[key]

    def _schema_shard(self) -> CalibrationStore | None:
        """The first shard that has adopted the column schema."""
        return next(
            (shard for shard in self.shards if shard.column_names), None
        )

    def column(self, name: str) -> np.ndarray:
        """Concatenated shard columns (global exposed order).

        The result is a cached copy: safe to hold across mutations,
        refreshed on the next call after one.
        """
        reference = self._schema_shard()
        if reference is None or name not in reference.column_names:
            raise KeyError(
                f"store has no column {name!r}; columns: {self.column_names}"
            )
        parts = [shard.column(name) for shard in self.shards if len(shard)]
        if not parts:
            # fully-emptied store: an empty array of the schema's dtype
            # and trailing shape, exactly like CalibrationStore
            parts = [reference.column(name)]
        return self._concat(parts, name)

    def column_segment(self, shard_id: int, name: str) -> np.ndarray:
        """One shard's column as an immutable owned copy (segment-cached).

        The segment compose layer's read primitive: the returned array
        is a snapshot copy owned by the cache — later slot-reuse
        evictions rewrite the shard's internal buffers, never this
        array — so compose bundles and published snapshots can hold it
        without a defensive copy.  The cache entry is dropped only when
        *this* shard mutates, which is what makes a post-update
        recomposition ``O(touched shards)``: untouched shards keep
        returning the same block object.

        Args:
            shard_id: which shard's block to return.
            name: column name (store schema).

        Returns:
            The shard's column rows in its exposed order; an empty
            array with the schema dtype and trailing shape for an
            empty shard.

        Raises:
            KeyError: unknown column name.
            IndexError: shard id out of range.
        """
        if not 0 <= shard_id < self.n_shards:
            raise IndexError(
                f"shard id {shard_id} out of range for {self.n_shards} shards"
            )
        cache = self._segment_cache[shard_id]
        try:
            return cache[name]
        except KeyError:
            pass
        reference = self._schema_shard()
        if reference is None or name not in reference.column_names:
            raise KeyError(
                f"store has no column {name!r}; columns: {self.column_names}"
            )
        shard = self.shards[shard_id]
        if len(shard):
            segment = np.array(shard.column(name))
        else:
            # empty shard: an empty block with the schema's dtype and
            # trailing shape, mirroring column() on an emptied store
            segment = np.array(reference.column(name)[:0])
        cache[name] = segment
        return segment

    def column_segments(self, name: str) -> tuple:
        """Per-shard owned column copies, one block per shard.

        The segment-list view of :meth:`column`:
        ``np.concatenate(column_segments(name))`` equals
        ``column(name)`` value-for-value, but the blocks of untouched
        shards are stable objects across mutations (see
        :meth:`column_segment`).
        """
        return tuple(
            self.column_segment(shard_id, name)
            for shard_id in range(self.n_shards)
        )

    @property
    def arrival(self) -> np.ndarray:
        """Per-shard arrival counters in global exposed order."""
        return self._concat(
            [shard.arrival for shard in self.shards if len(shard)], "__arrival__"
        )

    @property
    def priority(self) -> np.ndarray:
        """Per-sample retention priorities in global exposed order."""
        return self._concat(
            [shard.priority for shard in self.shards if len(shard)], "__priority__"
        )

    def shard_of(self, positions) -> np.ndarray:
        """Map global exposed positions to their owning shard ids."""
        positions = np.asarray(positions, dtype=int)
        bounds = np.cumsum([len(shard) for shard in self.shards])
        return np.searchsorted(bounds, positions, side="right")

    def clone_empty(self) -> "ShardedCalibrationStore":
        """A fresh, empty sharded store with the same configuration."""
        return ShardedCalibrationStore(
            self.capacity,
            self.n_shards,
            router=self.router.clone_unfitted(),
            policy=list(self.policies),
            seed=self.seed,
            feature_column=self.feature_column,
            label_column=self.label_column,
            shard_capacities=list(self.shard_capacities),
        )

    def _schema(self) -> dict | None:
        """Column name -> trailing row shape, or ``None`` pre-schema."""
        reference = self._schema_shard()
        if reference is None:
            return None
        return {
            name: reference.column(name).shape[1:]
            for name in reference.column_names
        }

    # -- mutations ----------------------------------------------------------------
    def route(self, **columns) -> np.ndarray:
        """Shard ids the router would assign to a batch of columns."""
        features = columns.get(self.feature_column)
        if features is None:
            raise CalibrationError(
                f"routing needs the {self.feature_column!r} column"
            )
        labels = (
            columns.get(self.label_column)
            if self.label_column is not None
            else None
        )
        if not self.router.is_fitted:
            self.router.fit(features, labels)
        return self.router.route(features, labels)

    def add(self, priority=None, shard_ids=None, **columns) -> ShardedStoreUpdate:
        """Route a batch across the shards; evict each down to capacity.

        ``shard_ids`` overrides the router (one id per added row).
        Returns the composed global :class:`ShardedStoreUpdate`.
        """
        # Validate the batch against the store-wide schema before any
        # shard mutates: per-shard validation alone is not atomic — an
        # empty shard would adopt a divergent schema and earlier shards
        # would keep rows the failing add should have rejected.  The
        # shared helper keeps sharded and single stores accepting
        # exactly the same batches.
        arrays, n_new = check_batch_columns(columns, self._schema())
        if priority is None:
            priorities = np.ones(n_new, dtype=float)
        else:
            priorities = np.asarray(priority, dtype=float).ravel()
            if len(priorities) != n_new:
                raise CalibrationError("priority must align with the added batch")
        if shard_ids is None:
            shard_ids = self.route(**arrays)
        shard_ids = np.asarray(shard_ids, dtype=int)
        if len(shard_ids) != n_new:
            raise CalibrationError("shard_ids must align with the added batch")
        if len(shard_ids) and (
            shard_ids.min() < 0 or shard_ids.max() >= self.n_shards
        ):
            raise CalibrationError(
                f"shard id out of range for {self.n_shards} shards"
            )

        n_before = len(self)
        offsets = self._offsets()
        # Invalidate the caches up front: from here every failure mode
        # is exotic (e.g. a custom policy raising mid-loop), and stale
        # cached snapshots must never outlive a partial mutation.  Only
        # the shards receiving rows can mutate, so untouched shards'
        # segment copies stay valid (the structural-sharing invariant).
        self._invalidate_columns(np.unique(shard_ids))
        order_segments = []
        shard_updates = {}
        shard_batches = {}
        for s, shard in enumerate(self.shards):
            existing = np.arange(
                offsets[s], offsets[s] + len(shard), dtype=np.int64
            )
            routed = np.flatnonzero(shard_ids == s)
            if len(routed) == 0:
                order_segments.append(existing)
                continue
            sub = shard.add(
                priority=priorities[routed],
                **{name: values[routed] for name, values in arrays.items()},
            )
            # Map the shard's local combined layout (its rows, then its
            # routed slice of the batch) back to global combined
            # positions, then gather through the shard's own order.
            local_to_global = np.concatenate([existing, n_before + routed])
            order_segments.append(local_to_global[sub.order])
            shard_updates[s] = sub
            shard_batches[s] = routed
        return self._compose(n_before, n_new, order_segments, shard_updates, shard_batches)

    def _compose(self, n_before, n_added, order_segments, shard_updates, shard_batches):
        order = (
            np.concatenate(order_segments)
            if order_segments
            else np.zeros(0, dtype=np.int64)
        )
        keep_mask = np.zeros(n_before + n_added, dtype=bool)
        keep_mask[order] = True
        self._tag_mutation(shard_updates.keys())
        return ShardedStoreUpdate(
            n_before=n_before,
            n_added=n_added,
            keep_mask=keep_mask,
            evicted=np.flatnonzero(~keep_mask),
            order=order,
            shard_updates=shard_updates,
            shard_batches=shard_batches,
        )

    def evict(self, positions) -> ShardedStoreUpdate:
        """Remove samples at global exposed ``positions``."""
        n = len(self)
        positions = np.unique(np.asarray(positions, dtype=int))
        if len(positions) and (positions.min() < -n or positions.max() >= n):
            raise IndexError(f"eviction position out of range for store of {n}")
        positions = positions % n if len(positions) else positions
        offsets = self._offsets()
        owners = self.shard_of(positions)
        self._invalidate_columns(np.unique(owners))
        order_segments = []
        shard_updates = {}
        shard_batches = {}
        for s, shard in enumerate(self.shards):
            existing = np.arange(
                offsets[s], offsets[s] + len(shard), dtype=np.int64
            )
            local = positions[owners == s] - offsets[s]
            if len(local) == 0:
                order_segments.append(existing)
                continue
            sub = shard.evict(local)
            order_segments.append(existing[sub.order])
            shard_updates[s] = sub
            shard_batches[s] = np.zeros(0, dtype=np.int64)
        return self._compose(n, 0, order_segments, shard_updates, shard_batches)

    def clear(self, lifetime: bool = False) -> None:
        """Clear every shard and drop fitted routing state.

        ``lifetime`` forwards to each shard's
        :meth:`CalibrationStore.clear` (reset stream counters too).

        Raises:
            ServingError: when another thread holds any shard write
                lock — clearing under an in-flight fold or shard
                recalibration would rip the rows out from under it.
        """
        with self._structural_mutation("clear() the sharded store"):
            self._tag_mutation()
            self._invalidate_columns()
            for shard in self.shards:
                shard.clear(lifetime=lifetime)
            self.router = self.router.clone_unfitted()

    def replace_column(self, name: str, values) -> None:
        """Overwrite one column in place (same length, global order).

        Raises:
            ServingError: when another thread holds any shard write
                lock — rewriting rows under an in-flight worker would
                tear per-shard state (same guard as :meth:`clear` /
                :meth:`rebalance`; the holding thread itself proceeds).
        """
        values = np.asarray(values)
        if len(values) != len(self):
            raise CalibrationError(
                f"replacement column {name!r} has {len(values)} rows, "
                f"store holds {len(self)}"
            )
        with self._structural_mutation(f"replace column {name!r}"):
            self._invalidate_columns()
            start = 0
            for shard in self.shards:
                stop = start + len(shard)
                if len(shard):
                    shard.replace_column(name, values[start:stop])
                start = stop
            self._tag_mutation()

    def rebalance(self, refit_router: bool = True) -> ShardedStoreUpdate | None:
        """Re-route every stored sample through the (re)fit router.

        The escape hatch after the feature space moved (e.g. a model
        update rewrote the feature column): membership-preserving where
        capacity allows, but a shard receiving more rows than its
        capacity evicts down as usual, and per-shard stream counters
        restart (the rebuilt shards see the rows as a fresh stream).
        Returns the composing update, or ``None`` on an empty store.

        Raises:
            ServingError: when another thread holds any shard write
                lock — re-routing every row while a worker folds into a
                shard would corrupt both (see :meth:`acquire_shards`).
        """
        with self._structural_mutation("rebalance() the sharded store"):
            if len(self) == 0:
                return None
            self._tag_mutation()
            columns = {name: self.column(name) for name in self.column_names}
            priorities = np.array(self.priority)
            if refit_router:
                self.router = self.router.clone_unfitted()
            self.shards = [
                shard.clone_empty() for shard in self.shards
            ]
            self._invalidate_columns()
            return self.add(priority=priorities, **columns)

    def __repr__(self) -> str:
        return (
            f"ShardedCalibrationStore(n={len(self)}/{self.capacity}, "
            f"shards={self.shard_sizes}, router={self.router.name!r})"
        )
