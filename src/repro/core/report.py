"""Deployment drift reports: summarize a stream of committee decisions.

Production users of Prom want more than a per-sample bit: operators
watch rejection rates over time, per-class rejection skew, and the
credibility distribution to decide *when* to trigger relabelling or
retraining.  :func:`summarize_decisions` condenses a decision stream
into those quantities, and :class:`DriftMonitor` tracks a rolling
window with an alert threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .committee import DecisionBatch
from .exceptions import ConfigurationError, ValidationError
from .triggers import default_trigger_stack


@dataclass(frozen=True)
class DriftReport:
    """Aggregate view of a batch of Prom decisions.

    Attributes:
        n_samples: decisions summarized.
        n_rejected: how many the committee flagged as drifting.
        rejection_rate: ``n_rejected / n_samples``.
        mean_credibility / mean_confidence: averages over the stream.
        credibility_quantiles: (q10, q50, q90) of credibility.
        per_label_rejection: rejection rate per predicted label, when
            predicted labels were supplied.
        expert_disagreement: fraction of samples on which the experts
            were not unanimous — a leading indicator of drift onset.
    """

    n_samples: int
    n_rejected: int
    rejection_rate: float
    mean_credibility: float
    mean_confidence: float
    credibility_quantiles: tuple
    per_label_rejection: dict = field(default_factory=dict)
    expert_disagreement: float = 0.0

    def __str__(self) -> str:
        q10, q50, q90 = self.credibility_quantiles
        lines = [
            f"drift report over {self.n_samples} samples:",
            f"  rejected          {self.n_rejected} ({self.rejection_rate:.1%})",
            f"  credibility       mean {self.mean_credibility:.3f} "
            f"(q10 {q10:.3f}, median {q50:.3f}, q90 {q90:.3f})",
            f"  confidence        mean {self.mean_confidence:.3f}",
            f"  expert split rate {self.expert_disagreement:.1%}",
        ]
        for label, rate in sorted(self.per_label_rejection.items()):
            lines.append(f"  label {label}: rejected {rate:.1%}")
        return "\n".join(lines)


def summarize_decisions(decisions, predicted_labels=None) -> DriftReport:
    """Condense a stream of committee decisions into a :class:`DriftReport`.

    Accepts either a list of per-sample ``Decision`` objects or a
    :class:`~repro.core.committee.DecisionBatch` (the batch-engine
    output), which is summarized with array reductions directly.
    """
    if isinstance(decisions, DecisionBatch):
        if len(decisions) == 0:
            raise ValidationError("cannot summarize an empty decision stream")
        rejected = np.asarray(decisions.drifting)
        credibilities = np.asarray(decisions.credibility, dtype=float)
        confidences = np.asarray(decisions.confidence, dtype=float)
        accepts = decisions.expert_accept.sum(axis=0)
        n_experts = decisions.expert_accept.shape[0]
        disagreements = ((accepts > 0) & (accepts < n_experts)).astype(float)
    else:
        decisions = list(decisions)
        if not decisions:
            raise ValidationError("cannot summarize an empty decision stream")
        rejected = np.asarray([d.drifting for d in decisions])
        credibilities = np.asarray([d.credibility for d in decisions])
        confidences = np.asarray([d.confidence for d in decisions])
        disagreements = np.asarray(
            [
                0.0 if not d.votes else float(
                    0 < sum(1 for v in d.votes if v.accept) < len(d.votes)
                )
                for d in decisions
            ]
        )

    per_label = {}
    if predicted_labels is not None:
        predicted_labels = np.asarray(predicted_labels)
        if len(predicted_labels) != len(decisions):
            raise ValidationError("predicted_labels must align with decisions")
        for label in np.unique(predicted_labels):
            mask = predicted_labels == label
            per_label[label.item() if hasattr(label, "item") else label] = float(
                rejected[mask].mean()
            )

    return DriftReport(
        n_samples=len(decisions),
        n_rejected=int(rejected.sum()),
        rejection_rate=float(rejected.mean()),
        mean_credibility=float(credibilities.mean()),
        mean_confidence=float(confidences.mean()),
        credibility_quantiles=tuple(
            float(q) for q in np.percentile(credibilities, [10, 50, 90])
        ),
        per_label_rejection=per_label,
        expert_disagreement=float(disagreements.mean()),
    )


class DriftMonitor:
    """Rolling-window drift alarm over a live decision stream.

    Feed decisions one at a time (or in batches); the monitor keeps the
    most recent ``window`` of them and raises its ``alert`` flag when
    the windowed rejection rate exceeds ``alert_threshold``.  The
    threshold should sit well above the false-positive rate observed at
    design time (e.g. 2-3x epsilon).

    Since the trigger layer landed (DESIGN.md §11) this class is a thin
    adapter over the default
    :class:`~repro.core.triggers.TriggerStack` — a credibility detector
    with a static threshold and the legacy warmup — which is
    property-tested decision-identical to the historical deque
    implementation (``tests/core/test_triggers.py``), so existing
    callers keep the exact alert/rate semantics while gaining the
    stack's durability (:meth:`state_dict`) and observability
    (:attr:`last_decision`) surface.
    """

    def __init__(self, window: int = 100, alert_threshold: float = 0.3):
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if not 0.0 < alert_threshold <= 1.0:
            raise ConfigurationError("alert_threshold must be in (0, 1]")
        self.window = window
        self.alert_threshold = alert_threshold
        self._stack = default_trigger_stack(
            window=window, threshold=alert_threshold
        )

    @property
    def triggers(self):
        """The underlying :class:`~repro.core.triggers.TriggerStack`."""
        return self._stack

    def observe(self, decision) -> bool:
        """Record one decision; returns the current alert state."""
        return self._stack.observe(decision)

    def observe_batch(self, decisions) -> bool:
        """Record a batch of decisions; returns the current alert state."""
        return self._stack.observe_batch(decisions)

    def observe_stream_batch(self, decisions, raw=None, labels=None) -> bool:
        """Deployment-loop entry point (routing context is ignored)."""
        return self._stack.observe_stream_batch(decisions, raw=raw, labels=labels)

    @property
    def rejection_rate(self) -> float:
        """Rejection rate over the current window (0 when empty)."""
        return self._stack.rejection_rate

    @property
    def alert(self) -> bool:
        """True when the windowed rejection rate crosses the threshold.

        Requires a full-enough window (at least 10 samples or the whole
        window size, whichever is smaller) so a single early rejection
        cannot trip the alarm.
        """
        return self._stack.alert

    @property
    def lifetime_rejection_rate(self) -> float:
        """Rejection rate since the monitor was created."""
        return self._stack.lifetime_rejection_rate

    @property
    def last_decision(self):
        """The stack's most recent :class:`~repro.core.triggers.TriggerDecision`."""
        return self._stack.last_decision

    def relabel_budget(self, base_fraction: float) -> float:
        """The effective relabel budget (pass-through for the default stack)."""
        return self._stack.relabel_budget(base_fraction)

    def reset(self, lifetime: bool = False) -> None:
        """Clear the rolling window (e.g. after a model update).

        The lifetime counters (``lifetime_rejection_rate``) deliberately
        survive a window reset so operators keep the whole-deployment
        view across model updates; pass ``lifetime=True`` to zero them
        too (a brand-new deployment, deterministically re-warmed).
        """
        self._stack.reset(lifetime=lifetime)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the monitor state (DESIGN.md §7)."""
        return self._stack.state_dict()

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (warm restart)."""
        self._stack.load_state_dict(state)
