"""Injectable fault layer for crash and corruption testing.

The durability layer's correctness claims — a mid-checkpoint crash
never corrupts the last committed generation, a torn manifest or
truncated block falls back to the previous generation — are only worth
anything if they are *exercised*.  This module provides the probe: a
:class:`FaultInjector` that production code calls at named stages
(``writer.checkpoint`` calls :meth:`FaultInjector.hit` before every
serialize/write/commit step; :class:`~repro.core.serving.AsyncServingLoop`
calls it before applying each maintenance job and before each snapshot
publish).  Tests arm rules — raise on the Nth call of a stage, truncate
the bytes a stage is about to write — and assert the recovery contract.

With no injector armed (the default ``None`` everywhere) the hooks are
never invoked, so the production hot path carries zero overhead.

Typical arming, from a test::

    faults = FaultInjector()
    faults.fail_on("write_manifest", call=2)        # crash 2nd commit
    faults.truncate_on("write_block", keep=17)      # torn block write
    writer = CheckpointWriter(path, faults=faults)

``kill-worker`` crashes are the same mechanism pointed at the serving
loop's stages: ``faults.fail_on("job:fold", call=3)`` makes the third
fold job die mid-flight, exercising the retry/dead-letter path.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class InjectedFault(RuntimeError):
    """A deliberately injected failure (raised only by armed injectors)."""


@dataclass
class _FaultRule:
    """One armed fault: fires on calls ``[call, call + times)`` of a stage."""

    stage: str
    call: int = 1
    times: int = 1
    keep: int | None = None
    exc: type = InjectedFault

    def matches(self, stage: str, count: int) -> bool:
        return (
            self.stage == stage and self.call <= count < self.call + self.times
        )


@dataclass
class FaultInjector:
    """Stage-keyed fault rules plus per-stage call counters.

    Rules are armed with :meth:`fail_on` (raise) and :meth:`truncate_on`
    (corrupt the bytes about to be written, optionally crashing after
    the corrupted write lands — the classic torn-write shape).
    Production code reports progress through :meth:`hit` and
    :meth:`mangle`; both count every call whether or not a rule fires,
    so ``call=`` arguments address the Nth invocation of a stage.
    """

    _rules: list = field(default_factory=list)
    _counts: dict = field(default_factory=dict)

    def fail_on(
        self, stage: str, call: int = 1, times: int = 1, exc: type = InjectedFault
    ) -> "FaultInjector":
        """Arm a raise: calls ``call .. call+times-1`` of ``stage`` throw."""
        self._rules.append(_FaultRule(stage=stage, call=call, times=times, exc=exc))
        return self

    def truncate_on(
        self, stage: str, call: int = 1, keep: int = 0, crash: bool = True
    ) -> "FaultInjector":
        """Arm a torn write: the matching call's bytes are cut to ``keep``.

        ``crash=True`` (default) additionally raises :class:`InjectedFault`
        *after* the truncated bytes land, simulating a crash that left a
        committed-but-partial file behind.
        """
        self._rules.append(
            _FaultRule(stage=stage, call=call, times=1, keep=keep, exc=(
                InjectedFault if crash else None
            ))
        )
        return self

    def calls(self, stage: str) -> int:
        """How many times ``stage`` has been hit so far."""
        return self._counts.get(stage, 0)

    def reset_counts(self) -> None:
        """Zero every stage counter (armed rules stay armed)."""
        self._counts.clear()

    def _count(self, stage: str) -> int:
        count = self._counts.get(stage, 0) + 1
        self._counts[stage] = count
        return count

    def hit(self, stage: str) -> None:
        """Report reaching ``stage``; raises when a fail rule matches."""
        count = self._count(stage)
        for rule in self._rules:
            if rule.keep is None and rule.matches(stage, count):
                raise rule.exc(f"injected fault at {stage!r} (call {count})")

    def mangle(self, stage: str, data: bytes) -> tuple[bytes, type | None]:
        """Report ``stage`` writing ``data``; apply any truncation rule.

        Returns ``(bytes_to_write, crash_exc)`` — ``crash_exc`` is the
        exception type the caller must raise *after* the write lands
        (``None`` for a clean write).  Raise rules armed on the same
        stage fire here too, before any bytes are written.
        """
        count = self._count(stage)
        for rule in self._rules:
            if not rule.matches(stage, count):
                continue
            if rule.keep is None:
                raise rule.exc(f"injected fault at {stage!r} (call {count})")
            return data[: rule.keep], rule.exc
        return data, None
