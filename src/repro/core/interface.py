"""The user-facing model integration interface (paper Figure 4).

Model developers wrap their trained model in a subclass of
:class:`ModelInterface` (classification) or
:class:`RegressionModelInterface`, overriding ``feature_extraction``
(and optionally ``data_partitioning``).  The interface owns a Prom
detector, handles the train/calibration split, and exposes a
``predict`` that returns the underlying prediction together with the
drift verdict.
"""

from __future__ import annotations

import abc

import numpy as np

from .exceptions import CalibrationError
from .prom import PromClassifier, PromRegressor


def _split_indices(n: int, calibration_ratio: float, max_calibration: int, seed: int):
    if not 0.0 < calibration_ratio < 1.0:
        raise CalibrationError(
            f"calibration_ratio must be in (0, 1), got {calibration_ratio}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_cal = min(max(1, int(round(n * calibration_ratio))), max_calibration, n - 1)
    return order[n_cal:], order[:n_cal]


class ModelInterface(abc.ABC):
    """Wraps a probabilistic classifier with Prom drift detection.

    The underlying model must provide ``fit(X, y)``, ``predict_proba(X)``
    and expose classes via ``classes_``; ``partial_fit`` is used for
    incremental updates when available.

    Args:
        model: the (untrained or trained) underlying model object.
        calibration_ratio: share of training data held out for
            calibration (paper default 10%).
        max_calibration: cap on the calibration-set size (paper: 1000).
        prom: a preconfigured :class:`PromClassifier`; a default one is
            created when omitted.
        seed: RNG seed for the data partition.
    """

    def __init__(
        self,
        model,
        calibration_ratio: float = 0.1,
        max_calibration: int = 1000,
        prom: PromClassifier | None = None,
        seed: int = 0,
    ):
        self.model = model
        self.calibration_ratio = calibration_ratio
        self.max_calibration = max_calibration
        self.prom = prom or PromClassifier()
        self.seed = seed

    # -- hooks the user overrides ------------------------------------------------
    @abc.abstractmethod
    def feature_extraction(self, X) -> np.ndarray:
        """Convert raw model inputs into numeric feature vectors.

        For neural models this is typically the hidden-layer embedding;
        for classical models the input features themselves.
        """

    def data_partitioning(self, X, y, calibration_ratio: float | None = None):
        """Split training data into training and calibration parts.

        Returns ``(X_train, y_train, X_cal, y_cal)``.  Override to use
        a custom (e.g. stratified or temporal) split.
        """
        ratio = calibration_ratio if calibration_ratio is not None else self.calibration_ratio
        train_idx, cal_idx = _split_indices(
            len(X), ratio, self.max_calibration, self.seed
        )
        X = np.asarray(X)
        y = np.asarray(y)
        return X[train_idx], y[train_idx], X[cal_idx], y[cal_idx]

    # -- design-time workflow -----------------------------------------------------
    def train(self, X, y) -> "ModelInterface":
        """Partition the data, fit the underlying model, calibrate Prom."""
        X_train, y_train, X_cal, y_cal = self.data_partitioning(X, y)
        self.model.fit(X_train, y_train)
        self._X_train = X_train
        self._y_train = y_train
        self._X_cal = X_cal
        self._y_cal = y_cal
        self.calibrate(X_cal, y_cal)
        return self

    def calibrate(self, X_cal, y_cal) -> "ModelInterface":
        """(Re)calibrate Prom from held-out samples and the fitted model."""
        probabilities = self.model.predict_proba(X_cal)
        label_index = self._label_indices(y_cal)
        self.prom.calibrate(self.feature_extraction(X_cal), probabilities, label_index)
        self._X_cal = np.asarray(X_cal)
        self._y_cal = np.asarray(y_cal)
        return self

    def _label_indices(self, y) -> np.ndarray:
        classes = list(np.asarray(self.model.classes_).tolist())
        index_of = {label: i for i, label in enumerate(classes)}
        try:
            return np.asarray([index_of[label] for label in np.asarray(y).tolist()])
        except KeyError as err:
            raise CalibrationError(f"calibration label {err} unknown to the model") from err

    # -- deployment ---------------------------------------------------------------
    def predict(self, X):
        """Return ``(predictions, decisions)`` for a batch of inputs.

        ``predictions`` are the underlying model's labels; ``decisions``
        are the per-sample committee verdicts whose ``drifting`` flag
        marks samples to route to fallback strategies or relabelling.
        """
        probabilities = self.model.predict_proba(X)
        predicted_index = np.argmax(probabilities, axis=1)
        predictions = np.asarray(self.model.classes_)[predicted_index]
        decisions = self.prom.evaluate(
            self.feature_extraction(X), probabilities, predicted_index
        )
        return predictions, decisions

    # -- incremental learning -------------------------------------------------------
    def incremental_update(self, X_new, y_new, epochs: int = 20) -> "ModelInterface":
        """Fold relabelled drifting samples back into the deployed model.

        Uses ``partial_fit`` when the underlying model supports it,
        otherwise refits on the original training data plus the new
        samples (paper Sec. 8, "Overfitting").  Prom is recalibrated on
        the original calibration set extended with the new samples so
        the detector adapts alongside the model.
        """
        X_new = np.asarray(X_new)
        y_new = np.asarray(y_new)
        if hasattr(self.model, "partial_fit"):
            self.model.partial_fit(X_new, y_new, epochs=epochs)
        else:
            X_all = np.concatenate([self._X_train, X_new])
            y_all = np.concatenate([self._y_train, y_new])
            self.model = self.model.clone()
            self.model.fit(X_all, y_all)
        X_cal = np.concatenate([self._X_cal, X_new])
        y_cal = np.concatenate([self._y_cal, y_new])
        self.calibrate(X_cal, y_cal)
        return self


class RegressionModelInterface(abc.ABC):
    """Regression counterpart of :class:`ModelInterface`.

    The underlying model must provide ``fit(X, y)`` and ``predict(X)``
    returning scalars; ``partial_fit`` enables incremental updates.
    """

    def __init__(
        self,
        model,
        calibration_ratio: float = 0.1,
        max_calibration: int = 1000,
        prom: PromRegressor | None = None,
        seed: int = 0,
    ):
        self.model = model
        self.calibration_ratio = calibration_ratio
        self.max_calibration = max_calibration
        self.prom = prom or PromRegressor()
        self.seed = seed

    @abc.abstractmethod
    def feature_extraction(self, X) -> np.ndarray:
        """Convert raw model inputs into numeric feature vectors."""

    def data_partitioning(self, X, y, calibration_ratio: float | None = None):
        """Split training data into training and calibration parts."""
        ratio = calibration_ratio if calibration_ratio is not None else self.calibration_ratio
        train_idx, cal_idx = _split_indices(
            len(X), ratio, self.max_calibration, self.seed
        )
        X = np.asarray(X)
        y = np.asarray(y)
        return X[train_idx], y[train_idx], X[cal_idx], y[cal_idx]

    def train(self, X, y) -> "RegressionModelInterface":
        """Partition the data, fit the underlying model, calibrate Prom."""
        X_train, y_train, X_cal, y_cal = self.data_partitioning(X, y)
        self.model.fit(X_train, y_train)
        self._X_train = X_train
        self._y_train = y_train
        self.calibrate(X_cal, y_cal)
        return self

    def calibrate(self, X_cal, y_cal) -> "RegressionModelInterface":
        """(Re)calibrate Prom from held-out samples and the fitted model."""
        predictions = self.model.predict(X_cal)
        self.prom.calibrate(
            self.feature_extraction(X_cal), predictions, np.asarray(y_cal, dtype=float)
        )
        self._X_cal = np.asarray(X_cal)
        self._y_cal = np.asarray(y_cal, dtype=float)
        return self

    def predict(self, X):
        """Return ``(predictions, decisions)`` for a batch of inputs."""
        predictions = np.asarray(self.model.predict(X), dtype=float)
        decisions = self.prom.evaluate(self.feature_extraction(X), predictions)
        return predictions, decisions

    def incremental_update(self, X_new, y_new, epochs: int = 20):
        """Fold relabelled drifting samples back into the deployed model."""
        X_new = np.asarray(X_new)
        y_new = np.asarray(y_new, dtype=float)
        if hasattr(self.model, "partial_fit"):
            self.model.partial_fit(X_new, y_new, epochs=epochs)
        else:
            X_all = np.concatenate([self._X_train, X_new])
            y_all = np.concatenate([self._y_train, y_new])
            self.model = self.model.clone()
            self.model.fit(X_all, y_all)
        X_cal = np.concatenate([self._X_cal, X_new])
        y_cal = np.concatenate([self._y_cal, y_new])
        self.calibrate(X_cal, y_cal)
        return self
