"""The user-facing model integration interface (paper Figure 4).

Model developers wrap their trained model in a subclass of
:class:`ModelInterface` (classification) or
:class:`RegressionModelInterface`, overriding ``feature_extraction``
(and optionally ``data_partitioning``).  The interface owns a Prom
detector behind a streaming calibration runtime
(:mod:`repro.core.streaming`): the calibration set lives in a bounded
:class:`~repro.core.calibration_store.CalibrationStore` whose eviction
policy enforces ``max_calibration`` on *every* recalibration, and
calibration-only extensions (``extend_calibration``) are folded in
incrementally instead of recomputed from scratch.
"""

from __future__ import annotations

import abc
import copy

import numpy as np

from .exceptions import CalibrationError
from .prom import PromClassifier, PromRegressor
from .streaming import StreamingPromClassifier, StreamingPromRegressor


def split_calibration(indices, calibration_ratio: float, max_calibration: int, seed: int):
    """Carve a calibration part out of a pool of sample indices.

    The single splitter behind :meth:`ModelInterface.data_partitioning`
    and the experiment harness.  Shuffles ``indices`` and holds out
    ``round(n * calibration_ratio)`` of them (at least 1, at most
    ``max_calibration``, never the whole pool) for calibration.

    Returns:
        ``(train_indices, calibration_indices)``.

    Raises:
        CalibrationError: when the ratio is outside ``(0, 1)``, the cap
            is < 1, or the pool has fewer than 2 samples (an early,
            explicit failure — downstream ``calibrate()`` would
            otherwise fail opaquely on an empty calibration set).
    """
    indices = np.asarray(indices)
    if not 0.0 < calibration_ratio < 1.0:
        raise CalibrationError(
            f"calibration_ratio must be in (0, 1), got {calibration_ratio}"
        )
    if max_calibration < 1:
        raise CalibrationError(
            f"max_calibration must be >= 1, got {max_calibration}"
        )
    n = len(indices)
    if n < 2:
        raise CalibrationError(
            f"need at least 2 samples to carve out a calibration set, got {n}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(indices)
    n_cal = min(max(1, int(round(n * calibration_ratio))), max_calibration, n - 1)
    return order[n_cal:], order[:n_cal]


class ModelInterface(abc.ABC):
    """Wraps a probabilistic classifier with Prom drift detection.

    The underlying model must provide ``fit(X, y)``, ``predict_proba(X)``
    and expose classes via ``classes_``; ``partial_fit`` is used for
    incremental updates when available.

    Args:
        model: the (untrained or trained) underlying model object.
        calibration_ratio: share of training data held out for
            calibration (paper default 10%).
        max_calibration: cap on the calibration-set size (paper: 1000),
            enforced by the store's eviction policy on every update.
        prom: a preconfigured :class:`PromClassifier`; a default one is
            created when omitted.
        seed: RNG seed for the data partition and the store.
        eviction: eviction policy name or instance (``"fifo"`` keeps
            the newest, drift-informative samples; see
            :mod:`repro.core.calibration_store`).
        n_shards: calibration shards (1 = one store).  With more, the
            calibration runtime becomes the sharded subsystem of
            :mod:`repro.core.sharding`: per-shard capacity and
            eviction, updates folded only into touched shards.
        router: shard router name or instance (``"hash"``, ``"label"``,
            ``"cluster"``); only meaningful with ``n_shards > 1``.
        parallel: thread-pool width for whole-shard rescoring
            (:meth:`recalibrate_shards`); micro-batch folds stay
            serial.
    """

    def __init__(
        self,
        model,
        calibration_ratio: float = 0.1,
        max_calibration: int = 1000,
        prom: PromClassifier | None = None,
        seed: int = 0,
        eviction="fifo",
        n_shards: int = 1,
        router="hash",
        parallel: int | None = None,
    ):
        self.model = model
        self.calibration_ratio = calibration_ratio
        self.max_calibration = max_calibration
        self.seed = seed
        self.streaming = StreamingPromClassifier(
            prom=prom or PromClassifier(),
            capacity=max_calibration,
            eviction=eviction,
            seed=seed,
            n_shards=n_shards,
            router=router,
            parallel=parallel,
        )
        self.prom = self.streaming.prom

    # -- hooks the user overrides ------------------------------------------------
    @abc.abstractmethod
    def feature_extraction(self, X) -> np.ndarray:
        """Convert raw model inputs into numeric feature vectors.

        For neural models this is typically the hidden-layer embedding;
        for classical models the input features themselves.
        """

    def data_partitioning(self, X, y, calibration_ratio: float | None = None):
        """Split training data into training and calibration parts.

        Returns ``(X_train, y_train, X_cal, y_cal)``.  Override to use
        a custom (e.g. stratified or temporal) split.
        """
        ratio = calibration_ratio if calibration_ratio is not None else self.calibration_ratio
        train_idx, cal_idx = split_calibration(
            np.arange(len(X)), ratio, self.max_calibration, self.seed
        )
        X = np.asarray(X)
        y = np.asarray(y)
        return X[train_idx], y[train_idx], X[cal_idx], y[cal_idx]

    # -- design-time workflow -----------------------------------------------------
    def train(self, X, y) -> "ModelInterface":
        """Partition the data, fit the underlying model, calibrate Prom."""
        X_train, y_train, X_cal, y_cal = self.data_partitioning(X, y)
        self.model.fit(X_train, y_train)
        self._X_train = X_train
        self._y_train = y_train
        self.calibrate(X_cal, y_cal)
        return self

    def calibrate(self, X_cal, y_cal) -> "ModelInterface":
        """(Re)calibrate Prom from held-out samples and the fitted model.

        Resets the calibration store to these samples (trimmed to
        ``max_calibration`` by the eviction policy when oversized).
        """
        X_cal = np.asarray(X_cal)
        y_cal = np.asarray(y_cal)
        probabilities = self.model.predict_proba(X_cal)
        label_index = self._label_indices(y_cal)
        self.streaming.calibrate(
            self.feature_extraction(X_cal),
            probabilities,
            label_index,
            extra={"X": X_cal, "y": y_cal},
        )
        return self

    def _label_indices(self, y) -> np.ndarray:
        classes = list(np.asarray(self.model.classes_).tolist())
        index_of = {label: i for i, label in enumerate(classes)}
        try:
            return np.asarray([index_of[label] for label in np.asarray(y).tolist()])
        except KeyError as err:
            raise CalibrationError(f"calibration label {err} unknown to the model") from err

    # -- calibration-set state ----------------------------------------------------
    @property
    def X_calibration(self) -> np.ndarray:
        """Raw inputs currently in the calibration store (a snapshot).

        Copied at the boundary: store buffers are reused in place by
        slot-reuse eviction, so a live view would be rewritten under
        the caller by the next mutation.
        """
        return np.array(self.streaming.store.column("X"))

    @property
    def y_calibration(self) -> np.ndarray:
        """Ground-truth labels currently in the store (a snapshot)."""
        return np.array(self.streaming.store.column("y"))

    @property
    def calibration_size(self) -> int:
        return len(self.streaming.store)

    @property
    def epoch(self) -> int:
        """Monotone calibration-state mutation counter (see streaming)."""
        return self.streaming.epoch

    @property
    def shard_sizes(self) -> tuple:
        """Per-shard calibration sizes (one entry in single-store mode)."""
        return self.streaming.shard_sizes

    @property
    def shard_epochs(self) -> tuple:
        """Per-shard mutation counters (empty in single-store mode).

        The serving plane tags published snapshots with these, so
        block-level staleness — which shards a snapshot predates — is
        observable (DESIGN.md §6).
        """
        return tuple(getattr(self.streaming.store, "shard_epochs", ()))

    def recalibrate_shards(self, shard_ids=None) -> "ModelInterface":
        """Fully rescore the given calibration shards (all by default).

        Shard-local rebuild after operator interventions (manual shard
        eviction, policy swaps): cost proportional to the touched
        shards' rows, run on a thread pool when the interface was
        configured with ``parallel`` workers.  Sharded mode only.
        """
        self.streaming.recalibrate_shards(shard_ids)
        return self

    @property
    def learns_new_classes(self) -> bool:
        """Whether :meth:`incremental_update` can absorb unseen classes.

        The default update strategy refits from scratch when the model
        lacks ``partial_fit`` (growing the class head) and updates in
        place otherwise (fixed head).  Subclasses overriding
        :meth:`incremental_update` should override this to match —
        stream drivers consult it to decide whether relabelled samples
        of never-observed classes are worth keeping.
        """
        return not hasattr(self.model, "partial_fit")

    # -- deployment ---------------------------------------------------------------
    def predict(self, X):
        """Return ``(predictions, decisions)`` for a batch of inputs.

        ``predictions`` are the underlying model's labels; ``decisions``
        are the per-sample committee verdicts whose ``drifting`` flag
        marks samples to route to fallback strategies or relabelling.
        """
        probabilities = self.model.predict_proba(X)
        predicted_index = np.argmax(probabilities, axis=1)
        predictions = np.asarray(self.model.classes_)[predicted_index]
        decisions = self.prom.evaluate(
            self.feature_extraction(X), probabilities, predicted_index
        )
        return predictions, decisions

    # -- incremental learning -------------------------------------------------------
    def extend_calibration(self, X_new, y_new, priority=None):
        """Fold relabelled samples into the calibration set — model unchanged.

        The amortized streaming path: only the new samples are scored,
        the store's eviction policy enforces ``max_calibration``, and
        the detector stays decision-identical to a full recalibration
        on the surviving samples.  Returns the
        :class:`~repro.core.calibration_store.StoreUpdate`.
        """
        X_new = np.asarray(X_new)
        y_new = np.asarray(y_new)
        probabilities = self.model.predict_proba(X_new)
        label_index = self._label_indices(y_new)
        return self.streaming.update(
            self.feature_extraction(X_new),
            probabilities,
            label_index,
            priority=priority,
            extra={"X": X_new, "y": y_new},
        )

    def incremental_update(
        self,
        X_new,
        y_new,
        epochs: int = 20,
        isolate_model: bool = False,
    ) -> "ModelInterface":
        """Fold relabelled drifting samples back into the deployed model.

        Uses ``partial_fit`` when the underlying model supports it,
        otherwise refits on the *accumulated* training set — original
        data plus every batch folded in so far — and persists the
        extension, so no earlier relabelled round is ever dropped
        (paper Sec. 8, "Overfitting").  The calibration store is then
        rebuilt against the updated model (its outputs moved for every
        stored sample) and extended with the new batch, with
        ``max_calibration`` enforced by the eviction policy on every
        round.

        ``isolate_model=True`` makes the update *async-aware*: the
        ``partial_fit`` path trains a deep copy and swaps the ``model``
        attribute only once the copy is ready, so concurrent readers
        holding the old reference (the serving loop's published
        snapshots) keep a stable, never-mutated model.  The refit path
        always builds aside and swaps.  Numerically identical either
        way (a deep copy carries the optimizer state bit-for-bit).
        """
        X_new = np.asarray(X_new)
        y_new = np.asarray(y_new)
        if hasattr(self.model, "partial_fit"):
            model = copy.deepcopy(self.model) if isolate_model else self.model
            model.partial_fit(X_new, y_new, epochs=epochs)
            self.model = model
        else:
            X_all = np.concatenate([self._X_train, X_new])
            y_all = np.concatenate([self._y_train, y_new])
            fresh = self.model.clone()
            fresh.fit(X_all, y_all)
            self.model = fresh
            self._X_train = X_all
            self._y_train = y_all
        # Fold the new batch into the capped store first, then rebuild
        # the whole calibration state once: the model moved, so every
        # stored feature vector and probability row is stale anyway.
        # In sharded mode the feature and label columns carry real
        # values (the shard router keys on them); probabilities stay a
        # zero placeholder sized to the stored schema because a refit
        # may have grown the class head — replace_outputs handles the
        # trailing-shape change when it recomputes every surviving row.
        store = self.streaming.store
        new_features = None
        if self.streaming.is_sharded:
            # worth a model forward pass only when a router consumes it
            new_features = np.asarray(self.feature_extraction(X_new), dtype=float)
            if new_features.shape[1:] != store.column("features").shape[1:]:
                new_features = None
        if new_features is None:
            new_features = np.zeros(
                (len(X_new),) + store.column("features").shape[1:]
            )
        store.add(
            features=new_features,
            probabilities=np.zeros(
                (len(X_new),) + store.column("probabilities").shape[1:]
            ),
            label=self._label_indices(y_new),
            X=X_new,
            y=y_new,
        )
        X_cal = self.X_calibration
        self.streaming.replace_outputs(
            self.feature_extraction(X_cal),
            self.model.predict_proba(X_cal),
            self._label_indices(self.y_calibration),
        )
        return self


class RegressionModelInterface(abc.ABC):
    """Regression counterpart of :class:`ModelInterface`.

    The underlying model must provide ``fit(X, y)`` and ``predict(X)``
    returning scalars; ``partial_fit`` enables incremental updates.

    Note: the default :class:`PromRegressor` uses leave-one-out
    calibration residuals, which couple every score to its neighbours —
    ``extend_calibration`` then falls back to a (still capacity-capped)
    full residual recompute with the fitted clusterer.  Pass a prom
    with ``calibration_residuals="true"`` to get the amortized
    streaming path.
    """

    def __init__(
        self,
        model,
        calibration_ratio: float = 0.1,
        max_calibration: int = 1000,
        prom: PromRegressor | None = None,
        seed: int = 0,
        eviction="fifo",
        n_shards: int = 1,
        router="hash",
        parallel: int | None = None,
    ):
        self.model = model
        self.calibration_ratio = calibration_ratio
        self.max_calibration = max_calibration
        self.seed = seed
        self.streaming = StreamingPromRegressor(
            prom=prom or PromRegressor(),
            capacity=max_calibration,
            eviction=eviction,
            seed=seed,
            n_shards=n_shards,
            router=router,
            parallel=parallel,
        )
        self.prom = self.streaming.prom

    @abc.abstractmethod
    def feature_extraction(self, X) -> np.ndarray:
        """Convert raw model inputs into numeric feature vectors."""

    def data_partitioning(self, X, y, calibration_ratio: float | None = None):
        """Split training data into training and calibration parts."""
        ratio = calibration_ratio if calibration_ratio is not None else self.calibration_ratio
        train_idx, cal_idx = split_calibration(
            np.arange(len(X)), ratio, self.max_calibration, self.seed
        )
        X = np.asarray(X)
        y = np.asarray(y)
        return X[train_idx], y[train_idx], X[cal_idx], y[cal_idx]

    def train(self, X, y) -> "RegressionModelInterface":
        """Partition the data, fit the underlying model, calibrate Prom."""
        X_train, y_train, X_cal, y_cal = self.data_partitioning(X, y)
        self.model.fit(X_train, y_train)
        self._X_train = X_train
        self._y_train = y_train
        self.calibrate(X_cal, y_cal)
        return self

    def calibrate(self, X_cal, y_cal) -> "RegressionModelInterface":
        """(Re)calibrate Prom from held-out samples and the fitted model."""
        X_cal = np.asarray(X_cal)
        predictions = self.model.predict(X_cal)
        self.streaming.calibrate(
            self.feature_extraction(X_cal),
            predictions,
            np.asarray(y_cal, dtype=float),
            extra={"X": X_cal},
        )
        return self

    @property
    def X_calibration(self) -> np.ndarray:
        """Raw inputs currently in the calibration store (a snapshot).

        Copied at the boundary — see
        :attr:`ModelInterface.X_calibration`.
        """
        return np.array(self.streaming.store.column("X"))

    @property
    def y_calibration(self) -> np.ndarray:
        """Ground-truth targets currently in the store (a snapshot)."""
        return np.array(self.streaming.store.column("target"))

    @property
    def calibration_size(self) -> int:
        return len(self.streaming.store)

    @property
    def epoch(self) -> int:
        """Monotone calibration-state mutation counter (see streaming)."""
        return self.streaming.epoch

    @property
    def shard_sizes(self) -> tuple:
        """Per-shard calibration sizes (one entry in single-store mode)."""
        return self.streaming.shard_sizes

    @property
    def shard_epochs(self) -> tuple:
        """Per-shard mutation counters (empty in single-store mode).

        See :attr:`ModelInterface.shard_epochs`.
        """
        return tuple(getattr(self.streaming.store, "shard_epochs", ()))

    def recalibrate_shards(self, shard_ids=None) -> "RegressionModelInterface":
        """Fully rescore the given calibration shards (all by default).

        See :meth:`ModelInterface.recalibrate_shards`; a ``"loo"``
        detector falls back to a global refresh.
        """
        self.streaming.recalibrate_shards(shard_ids)
        return self

    def predict(self, X):
        """Return ``(predictions, decisions)`` for a batch of inputs."""
        predictions = np.asarray(self.model.predict(X), dtype=float)
        decisions = self.prom.evaluate(self.feature_extraction(X), predictions)
        return predictions, decisions

    def extend_calibration(self, X_new, y_new, priority=None):
        """Fold relabelled samples into the calibration set — model unchanged."""
        X_new = np.asarray(X_new)
        y_new = np.asarray(y_new, dtype=float)
        predictions = np.asarray(self.model.predict(X_new), dtype=float)
        return self.streaming.update(
            self.feature_extraction(X_new),
            predictions,
            y_new,
            priority=priority,
            extra={"X": X_new},
        )

    def incremental_update(
        self,
        X_new,
        y_new,
        epochs: int = 20,
        isolate_model: bool = False,
    ):
        """Fold relabelled drifting samples back into the deployed model.

        Mirrors :meth:`ModelInterface.incremental_update`: the refit
        path persists the accumulated training set, and the calibration
        store is rebuilt against the updated model then extended with
        the new batch under the ``max_calibration`` cap.
        ``isolate_model=True`` trains a deep copy and swaps it in, so
        serving snapshots holding the old model reference stay stable.
        """
        X_new = np.asarray(X_new)
        y_new = np.asarray(y_new, dtype=float)
        if hasattr(self.model, "partial_fit"):
            model = copy.deepcopy(self.model) if isolate_model else self.model
            model.partial_fit(X_new, y_new, epochs=epochs)
            self.model = model
        else:
            X_all = np.concatenate([self._X_train, X_new])
            y_all = np.concatenate([self._y_train, y_new])
            fresh = self.model.clone()
            fresh.fit(X_all, y_all)
            self.model = fresh
            self._X_train = X_all
            self._y_train = y_all
        # Fold the new batch into the capped store first, then rebuild
        # the whole calibration state once against the updated model.
        # (Unlike the classifier there is no output-width hazard, and a
        # single rebuild avoids paying the "loo" mode's clustering and
        # leave-one-out costs twice per round.)  In sharded mode the
        # feature column carries real values so the router can key on
        # them; the prediction column stays a zero placeholder because
        # replace_outputs recomputes it for every surviving row anyway.
        store = self.streaming.store
        new_features = None
        if self.streaming.is_sharded:
            new_features = np.asarray(self.feature_extraction(X_new), dtype=float)
            if new_features.shape[1:] != store.column("features").shape[1:]:
                new_features = None
        if new_features is None:
            new_features = np.zeros(
                (len(X_new),) + store.column("features").shape[1:]
            )
        store.add(
            features=new_features,
            prediction=np.zeros(len(X_new)),
            target=y_new,
            X=X_new,
        )
        X_cal = self.X_calibration
        self.streaming.replace_outputs(
            self.feature_extraction(X_cal),
            np.asarray(self.model.predict(X_cal), dtype=float),
            self.y_calibration,
        )
        return self
