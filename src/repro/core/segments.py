"""Segment-aware composition of per-shard calibration state (DESIGN.md §6).

PR 3 sharded calibration *maintenance*: an ``update()`` folds only into
the shards its batch touched.  But the detector still consumed one flat
array per state field (features, labels, per-expert scores), so every
fold ended with an ``O(n)`` concatenation memcpy to rebuild them — and
the async serving plane (PR 4) paid the same ``O(n)`` *again* per
snapshot publish, deep-copying every store-aliased array so lock-free
readers could never observe an in-place rewrite.

This module replaces both copies with a **segment compose layer**:

* :class:`SegmentedField` — one logical calibration column held as an
  ordered tuple of immutable per-shard blocks, with the flat
  concatenation materialized lazily (and cached) only when a consumer
  actually needs it;
* :class:`SegmentBundle` — the full composed detector state (every
  field, every expert's scores, the integer-exact summed group counts),
  built in ``O(touched shards)`` after a mutation because untouched
  shards contribute the *same block objects* as the previous bundle;
* :class:`ComposedStateAttr` — the descriptor the Prom detectors use
  for their state attributes, so any read (an ``evaluate()``, a test
  poking ``prom._features``) transparently materializes the current
  bundle first.  Writes behave like plain attribute assignment, which
  keeps the non-streaming ``calibrate()`` path untouched;
* :class:`BundleComposeHook` — the one-shot materializer installed on
  frozen detector snapshots, giving the serving plane
  **structural-sharing publishes**: a snapshot references the live
  bundle's blocks instead of deep-copying them, so publish cost drops
  from ``O(store)`` to ``O(touched shards)`` and consecutive snapshots
  share (``np.shares_memory``) every untouched shard's blocks.

The safety contract is copy-on-write: a block handed to a bundle is
never mutated in place — folds and rescores *replace* a shard's blocks
with fresh arrays, and store-backed blocks are owned copies taken at
the segment cache (:meth:`~repro.core.sharding.ShardedCalibrationStore.
column_segment`), not views of the slot-reused buffers.  Under that
discipline sharing blocks between the live detector and any number of
published snapshots is free.

Materialization is idempotent and tolerates benign races: concurrent
first readers of one snapshot may each build the flat arrays, but every
build produces equal values from the same immutable blocks, attribute
stores are atomic under the GIL, and the done flag is only set after a
full apply — so a reader either materializes for itself or observes a
completed apply, never a torn one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocks import (
    SEGMENT_DIRECT_MIN_ROWS,
    BlockColumn,
    segment_direct_supported,
)
from .pvalue import LabelGroupedScores, merge_group_counts
from .weighting import TAU_MAX_ROWS, TAU_SEED
from .exceptions import ValidationError


class ComposedStateAttr:
    """Data descriptor for a lazily composable detector state attribute.

    Reads first invoke the instance's ``_compose_hook`` (when one is
    set), letting a compose layer install the current flat arrays on
    first access after a mutation; without a hook, reads and writes
    behave exactly like a plain instance attribute, including raising
    ``AttributeError`` before the first assignment (``calibrate()``).
    """

    def __set_name__(self, owner, name):
        self._name = name
        self._slot = "_composed" + name

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        hook = instance.__dict__.get("_compose_hook")
        if hook is not None:
            hook()
        try:
            return instance.__dict__[self._slot]
        except KeyError:
            raise AttributeError(self._name) from None

    def __set__(self, instance, value):
        instance.__dict__[self._slot] = value

    def __delete__(self, instance):
        instance.__dict__.pop(self._slot, None)


def state_is_set(instance, name: str) -> bool:
    """Whether ``instance``'s composed-state attribute ``name`` holds a value.

    The hook-free form of ``hasattr``: it inspects the descriptor's
    backing slot without triggering materialization, so calibration
    checks on the streaming hot path stay O(1).
    """
    return ("_composed" + name) in instance.__dict__


class SegmentedField:
    """An ordered tuple of immutable array blocks for one state field.

    ``segments`` holds one block per shard (empty blocks for empty
    shards), in global exposed order.  :meth:`flat` materializes the
    concatenation lazily and caches it; because blocks are immutable,
    the cached flat array is itself immutable and may be shared freely
    between the live detector and published snapshots.
    """

    __slots__ = ("segments", "_flat")

    def __init__(self, segments, flat: np.ndarray | None = None):
        self.segments = tuple(segments)
        self._flat = flat

    def __len__(self) -> int:
        return sum(len(segment) for segment in self.segments)

    @property
    def trailing_shape(self) -> tuple:
        """Per-row shape of the field (``()`` for scalar columns)."""
        return self.segments[0].shape[1:] if self.segments else ()

    @property
    def cached_flat(self) -> np.ndarray | None:
        """The materialized concatenation, or ``None`` when not built yet."""
        return self._flat

    def flat(self) -> np.ndarray:
        """The flat concatenation of the segments (materialized once).

        A single-segment field returns its block directly — the block
        is immutable, so no defensive copy is needed.
        """
        flat = self._flat
        if flat is None:
            if not self.segments:
                flat = np.zeros(0)
            elif len(self.segments) == 1:
                flat = self.segments[0]
            else:
                flat = np.concatenate(self.segments)
            self._flat = flat
        return flat

    def same_segments(self, segments) -> bool:
        """Whether ``segments`` are exactly this field's blocks (by identity)."""
        segments = tuple(segments)
        return len(self.segments) == len(segments) and all(
            mine is theirs for mine, theirs in zip(self.segments, segments)
        )


def make_field(segments, previous: SegmentedField | None = None) -> SegmentedField:
    """Build a :class:`SegmentedField`, reusing ``previous`` when unchanged.

    Reuse is by block identity: when every segment is the same object as
    in the previous field, the previous field itself is returned — which
    carries its materialized flat cache across the mutation for free
    (e.g. a shard rescoring leaves the feature field's flat array
    valid).
    """
    segments = tuple(segments)
    if previous is not None and previous.same_segments(segments):
        return previous
    return SegmentedField(segments)


def gather_rows(segments, rows) -> np.ndarray:
    """Gather global rows from a segment list without the flat concat.

    Bit-identical to ``np.concatenate(segments)[rows]`` (row order
    preserved, negative indices wrap like NumPy's), in ``O(len(rows))``
    gathered cells instead of ``O(n)``.

    Raises:
        ValueError: on an empty segment list.
        IndexError: when any row index is outside ``[-n, n)`` — the
            same contract as indexing the concatenation.
    """
    segments = [np.asarray(segment) for segment in segments]
    if not segments:
        raise ValidationError("gather_rows needs at least one segment")
    rows = np.asarray(rows, dtype=np.int64)
    sizes = np.fromiter(
        (len(segment) for segment in segments),
        dtype=np.int64,
        count=len(segments),
    )
    bounds = np.cumsum(sizes)
    n = int(bounds[-1])
    if len(rows):
        rows = np.where(rows < 0, rows + n, rows)
        if rows.min() < 0 or rows.max() >= n:
            raise IndexError(
                f"row index out of range for {n} segmented rows"
            )
    starts = bounds - sizes
    dtype = np.result_type(*segments)
    out = np.empty((len(rows),) + segments[0].shape[1:], dtype=dtype)
    owners = np.searchsorted(bounds, rows, side="right")
    for index, segment in enumerate(segments):
        mask = owners == index
        if mask.any():
            out[mask] = segment[rows[mask] - starts[index]]
    return out


def tau_feature_sample(
    field: SegmentedField, max_rows: int = TAU_MAX_ROWS, seed: int = TAU_SEED
) -> np.ndarray:
    """The feature rows ``resolve_tau`` would subsample, gathered per segment.

    ``median_pairwise_tau`` draws ``max_rows`` rows with
    ``default_rng(seed).choice`` when the set is larger; reproducing the
    identical draw here and gathering only those rows keeps the resolved
    tau bit-identical to the flat path while tau resolution costs
    ``O(max_rows * d)`` instead of forcing the ``O(n)`` flat
    materialization on every update.
    """
    flat = field.cached_flat
    if flat is not None:
        return flat
    n = len(field)
    if n <= max_rows:
        return field.flat()
    rows = np.random.default_rng(seed).choice(n, size=max_rows, replace=False)
    return gather_rows(field.segments, rows)


@dataclass(frozen=True)
class SegmentLayout:
    """Per-expert calibration-score view for segment-direct evaluation.

    The block-backed stand-in for
    :class:`~repro.core.pvalue.LabelGroupedScores` on the evaluate hot
    path: the p-value kernel only reads ``scores`` (gathered at the
    selected positions) and ``n_labels``, so the view carries exactly
    those — scores as a :class:`~repro.core.blocks.BlockColumn`, never
    flattened.
    """

    scores: BlockColumn
    n_labels: int


@dataclass(frozen=True)
class EvaluationView:
    """Calibration state the evaluate kernels consume, block-direct.

    Built by :meth:`SegmentBundle.evaluation_view` over the bundle's
    per-shard blocks (and duck-typed by the detectors' flat state, so
    one evaluation code path serves both).  ``labels`` is the p-value
    grouping column (class labels or cluster pseudo-labels);
    ``targets`` is present for regression only.  ``shard_ids`` maps
    each block position to its shard id — the contract the candidate
    pruner (:mod:`repro.core.pruning`) keys on.
    """

    features: BlockColumn
    labels: BlockColumn
    layouts: tuple
    n_labels: int
    targets: BlockColumn | None = None
    shard_ids: tuple = ()

    def prewarm(self) -> None:
        """Build every cache a first evaluate would otherwise pay for.

        GEMM panels and row norms of the feature column, and the flat
        gather bases of the scalar columns.  Called from the serving
        maintenance plane right after a snapshot is built
        (:meth:`~repro.core.serving.AsyncServingLoop._build_snapshot`),
        so the repair work a publish leaves behind — re-gathering the
        panels that overlap the touched shard — runs on the worker
        thread and the first decision after the publish lands on a hot
        view.  Idempotent; every cache build is also safe (and merely
        redundant) if a decision thread races it.
        """
        self.features.panels()
        self.features.row_norms()
        scalar_columns = (self.labels, self.targets) + tuple(
            layout.scores for layout in self.layouts
        )
        for column in scalar_columns:
            if column is not None and len(column.segments) > 1:
                column.gather_base()

    def restrict(self, positions) -> "EvaluationView":
        """A view over the block subset at ``positions`` (ascending)."""
        positions = tuple(int(p) for p in positions)
        return EvaluationView(
            features=self.features.restrict(positions),
            labels=self.labels.restrict(positions),
            layouts=tuple(
                SegmentLayout(
                    scores=layout.scores.restrict(positions),
                    n_labels=layout.n_labels,
                )
                for layout in self.layouts
            ),
            n_labels=self.n_labels,
            targets=(
                None if self.targets is None else self.targets.restrict(positions)
            ),
            shard_ids=tuple(self.shard_ids[p] for p in positions),
        )


class SegmentBundle:
    """The composed per-shard detector state behind one immutable handle.

    Attributes:
        fields: detector attribute name (``"_features"``, ``"_labels"``,
            ``"_targets"``, ``"_clusters"``) -> :class:`SegmentedField`.
        score_fields: one :class:`SegmentedField` per expert's
            calibration scores.
        group_counts: per-expert ``(n_labels,)`` global group counts,
            summed integer-exactly over the per-shard layouts.
        label_key: which entry of ``fields`` plays the p-value grouping
            label (``"_labels"`` for classification, ``"_clusters"``
            for regression pseudo-labels).
        n_labels: number of candidate labels/clusters.

    A bundle is immutable once built; a mutation builds a *new* bundle
    whose untouched shards contribute the same block objects, so bundle
    identity comparisons (:meth:`shared_shards_with`) quantify the
    structural sharing between consecutive snapshots.
    """

    __slots__ = (
        "fields",
        "score_fields",
        "group_counts",
        "label_key",
        "n_labels",
        "_view",
        "_view_ready",
        "_inherit_view",
    )

    def __init__(self, fields, score_fields, group_counts, label_key, n_labels):
        self.fields = dict(fields)
        self.score_fields = tuple(score_fields)
        self.group_counts = tuple(group_counts)
        self.label_key = label_key
        self.n_labels = int(n_labels)
        self._view = None
        self._view_ready = False
        self._inherit_view = None

    @property
    def n_shards(self) -> int:
        """Number of per-shard blocks each field carries."""
        return len(self.score_fields[0].segments) if self.score_fields else 0

    def iter_fields(self):
        """Yield every field (state fields first, then expert scores)."""
        yield from self.fields.values()
        yield from self.score_fields

    def apply(self, prom) -> None:
        """Materialize the bundle's flat arrays onto ``prom``.

        Sets every state attribute, the per-expert score arrays and the
        composed :class:`~repro.core.pvalue.LabelGroupedScores` layouts.
        Idempotent, and safe under the benign-race contract described in
        the module docstring: every write installs an array whose values
        are fully determined by the immutable blocks.
        """
        for name, field in self.fields.items():
            setattr(prom, name, field.flat())
        labels = self.fields[self.label_key].flat()
        scores = [field.flat() for field in self.score_fields]
        prom._scores = scores
        prom._layouts = [
            LabelGroupedScores(
                scores=expert_scores,
                labels=labels,
                group_counts=counts,
                n_labels=self.n_labels,
            )
            for expert_scores, counts in zip(scores, self.group_counts)
        ]

    def evaluation_view(self) -> EvaluationView | None:
        """The segment-direct :class:`EvaluationView`, or ``None``.

        ``None`` means segment-direct evaluation cannot be
        bit-identical here — the local BLAS failed the runtime probe,
        the composed set is below
        :data:`~repro.core.blocks.SEGMENT_DIRECT_MIN_ROWS` (where the
        canonical GEMM partition is the historical single panel), or
        the bundle misses a feature field — and the caller must fall
        back to flat materialization.  Computed once and cached on the
        (immutable) bundle, so repeated evaluates against one snapshot
        pay nothing.

        The feature column's GEMM-panel cache is seeded from the
        field's materialized flat array when one exists (zero-copy
        views) and inherited from the predecessor bundle's view
        (``_inherit_view``, wired by the streaming compose) for panels
        whose blocks survived the mutation — so a publish touching one
        shard re-gathers only the panels overlapping that shard.
        """
        if self._view_ready:
            return self._view
        view = None
        feature_field = self.fields.get("_features")
        if (
            feature_field is not None
            and feature_field.segments
            and len(feature_field) >= SEGMENT_DIRECT_MIN_ROWS
            and len(feature_field.trailing_shape) == 1
            and segment_direct_supported()
        ):
            view = EvaluationView(
                features=BlockColumn(feature_field.segments),
                labels=BlockColumn(self.fields[self.label_key].segments),
                layouts=tuple(
                    SegmentLayout(
                        scores=BlockColumn(field.segments),
                        n_labels=self.n_labels,
                    )
                    for field in self.score_fields
                ),
                n_labels=self.n_labels,
                targets=(
                    BlockColumn(self.fields["_targets"].segments)
                    if "_targets" in self.fields
                    else None
                ),
                shard_ids=tuple(range(len(feature_field.segments))),
            )
            view.features.seed_flat(feature_field.cached_flat)
            if self._inherit_view is not None:
                view.features.inherit_cache(self._inherit_view.features)
        self._inherit_view = None
        self._view = view
        self._view_ready = True
        return view

    def shared_shards_with(self, previous: "SegmentBundle | None") -> int:
        """Count shards whose every block is shared with ``previous``.

        Sharing is by object identity — the exact property the
        structural-sharing snapshot tests verify with
        ``np.shares_memory``.  Returns 0 when the bundles are not
        comparable (different fields or shard counts).
        """
        if previous is None:
            return 0
        if set(self.fields) != set(previous.fields):
            return 0
        if len(self.score_fields) != len(previous.score_fields):
            return 0
        n_shards = self.n_shards
        mine = list(self.iter_fields())
        theirs = [previous.fields[name] for name in self.fields]
        theirs += list(previous.score_fields)
        if any(len(field.segments) != n_shards for field in mine + theirs):
            return 0
        shared = 0
        for shard_id in range(n_shards):
            if all(
                a.segments[shard_id] is b.segments[shard_id]
                for a, b in zip(mine, theirs)
            ):
                shared += 1
        return shared


class BundleComposeHook:
    """One-shot compose hook for frozen detector snapshots.

    Installed as the frozen detector's ``_compose_hook``: the first
    state read applies the captured bundle (building the flat arrays —
    or reusing flats the live detector already materialized from the
    same blocks), later reads are a flag check.  ``done=True`` marks a
    snapshot frozen while the live detector's flat state already
    matched the bundle, so nothing needs rebuilding at all.
    """

    __slots__ = ("_prom", "_bundle", "_done")

    def __init__(self, prom, bundle: SegmentBundle, done: bool = False):
        self._prom = prom
        self._bundle = bundle
        self._done = done

    def __call__(self) -> None:
        if self._done:
            return
        self._bundle.apply(self._prom)
        self._done = True

    def pending_bundle(self) -> SegmentBundle | None:
        """The captured bundle while flat state is *not* materialized.

        Segment-direct evaluation keys on this: a pending bundle means
        an attribute read would trigger the ``O(n)`` flat concat, so
        the evaluate kernels take the block-direct path instead (and
        the hook stays pending — the concat never happens).  ``None``
        once materialized (or frozen already-fresh): the flat arrays
        exist, so reading them is free.
        """
        return None if self._done else self._bundle


def bundle_manifest(bundle: SegmentBundle, export) -> dict:
    """Serialize a bundle as a name-table manifest (parent side).

    ``export`` is the arena's block exporter
    (:meth:`~repro.core.shm.SharedSegmentArena.export`): every block of
    every field becomes a picklable ref, so the manifest is a few
    hundred bytes regardless of calibration size.  The per-expert group
    counts are tiny ``(n_labels,)`` integer arrays and ride embedded in
    the manifest itself rather than as shared segments.
    """
    return {
        "fields": {
            name: [export(block) for block in field.segments]
            for name, field in bundle.fields.items()
        },
        "score_fields": [
            [export(block) for block in field.segments]
            for field in bundle.score_fields
        ],
        "group_counts": [np.array(counts) for counts in bundle.group_counts],
        "label_key": bundle.label_key,
        "n_labels": bundle.n_labels,
    }


def manifest_refs(manifest: dict) -> list:
    """Every block ref a manifest references (with duplicates).

    The parent retains/releases exactly this list around a publish, so
    a ref shared by two fields is counted twice and survives as long
    as any field needs it.
    """
    refs = []
    for field_refs in manifest["fields"].values():
        refs.extend(field_refs)
    for field_refs in manifest["score_fields"]:
        refs.extend(field_refs)
    return refs


def bundle_from_manifest(manifest: dict, attach) -> SegmentBundle:
    """Rebuild a :class:`SegmentBundle` over mapped arrays (worker side).

    ``attach`` is the worker's ref resolver
    (:meth:`~repro.core.shm.SegmentAttacher.get`); the rebuilt bundle's
    blocks are read-only zero-copy views of the shared segments, so
    applying it — or evaluating segment-direct against it — touches the
    same physical pages the parent exported.
    """
    return SegmentBundle(
        fields={
            name: SegmentedField([attach(ref) for ref in refs])
            for name, refs in manifest["fields"].items()
        },
        score_fields=[
            SegmentedField([attach(ref) for ref in refs])
            for refs in manifest["score_fields"]
        ],
        group_counts=[np.array(counts) for counts in manifest["group_counts"]],
        label_key=manifest["label_key"],
        n_labels=manifest["n_labels"],
    )


def bundle_from_state(prom) -> SegmentBundle:
    """Synthesize a single-segment bundle from a detector's flat state.

    The export path for non-sharded runtimes, whose store rewrites its
    buffers in place: every block is an owned copy taken here, so the
    exported segments stay frozen while the store keeps mutating.
    Sharded runtimes never take this path — their compose bundle's
    copy-on-write blocks are exported directly.
    """
    regression = state_is_set(prom, "_clusters")
    label_key = "_clusters" if regression else "_labels"
    fields = {"_features": SegmentedField([np.array(prom._features)])}
    fields[label_key] = SegmentedField([np.array(getattr(prom, label_key))])
    if state_is_set(prom, "_targets"):
        fields["_targets"] = SegmentedField([np.array(prom._targets)])
    layouts = prom._layouts
    return SegmentBundle(
        fields=fields,
        score_fields=[
            SegmentedField([np.array(scores)]) for scores in prom._scores
        ],
        group_counts=[np.array(layout.group_counts) for layout in layouts],
        label_key=label_key,
        n_labels=layouts[0].n_labels,
    )


class TauSketch:
    """Incremental, bit-identical automatic-tau resolution (DESIGN.md §9).

    ``resolve_tau`` subsamples :data:`~repro.core.weighting.TAU_MAX_ROWS`
    feature rows with a fixed-seed draw that depends only on the set
    size ``n``, then takes the median pairwise squared distance.  The
    sketch exploits that: across store mutations it caches the drawn
    row indices (per ``n``), the gathered sample, and the resolved tau.
    On each retune it re-gathers the sampled rows from the segments
    (``O(max_rows * d)``, no flat concat) and compares values — when no
    sampled row changed, the cached tau is adopted without recomputing
    the ``max_rows x max_rows`` distance GEMM and median; when anything
    changed (or ``n`` changed, which changes the draw itself), the full
    median kernel reruns on the fresh sample.  Partial GEMM updates are
    *never* attempted: BLAS row-splits are not bit-stable, so the full
    recompute is what keeps resolved taus bit-identical to a fresh
    ``calibrate()`` on the flat state.
    """

    __slots__ = ("max_rows", "seed", "_n", "_rows", "_sample", "_tau")

    def __init__(self, max_rows: int = TAU_MAX_ROWS, seed: int = TAU_SEED):
        self.max_rows = int(max_rows)
        self.seed = seed
        self._n = -1
        self._rows = None
        self._sample = None
        self._tau = None

    def resolve(self, weighting, field: SegmentedField) -> float:
        """Resolve ``weighting``'s tau against the segmented features.

        Bit-identical to ``weighting.resolve_tau(field.flat())`` in
        every case; the cache only ever short-circuits arithmetic whose
        inputs are verified (by value) to be unchanged.
        """
        if weighting.tau is not None:
            return weighting.resolve_tau(None)  # fixed tau: features unused
        n = len(field)
        if n != self._n:
            self._n = n
            if n > self.max_rows:
                self._rows = np.random.default_rng(self.seed).choice(
                    n, size=self.max_rows, replace=False
                )
            else:
                self._rows = None
            self._sample = None
        if self._rows is None:
            sample = field.flat()
        else:
            sample = gather_rows(field.segments, self._rows)
        if self._sample is not None and np.array_equal(sample, self._sample):
            return weighting.adopt_tau(self._tau)
        self._sample = sample
        self._tau = weighting.resolve_tau(sample)
        return self._tau
