"""k-nearest-neighbour classifier and regressor.

Prom's regression support approximates unseen ground truth with a k-NN
average over the calibration set (paper Sec. 5.1.1); these estimators
provide that primitive plus standalone baselines.
"""

from __future__ import annotations

import numpy as np

from .base import (
    ClassifierMixin,
    Estimator,
    RegressorMixin,
    check_2d,
    check_consistent_length,
)


def pairwise_euclidean(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Return the ``(len(A), len(B))`` matrix of l2 distances."""
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b, clipped for numeric noise.
    squared = (
        np.sum(A * A, axis=1)[:, None]
        + np.sum(B * B, axis=1)[None, :]
        - 2.0 * A @ B.T
    )
    return np.sqrt(np.clip(squared, 0.0, None))


class KNeighborsClassifier(Estimator, ClassifierMixin):
    """Majority-vote k-NN with distance-frequency probabilities."""

    def __init__(self, n_neighbors: int = 5):
        self.n_neighbors = n_neighbors

    def fit(self, X, y) -> "KNeighborsClassifier":
        X = check_2d(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        self.classes_, self._y_index = np.unique(y, return_inverse=True)
        self._X = X
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Return neighbourhood class frequencies as probabilities."""
        self._check_fitted("_X")
        X = check_2d(X)
        k = min(self.n_neighbors, len(self._X))
        distances = pairwise_euclidean(X, self._X)
        neighbour_rows = np.argpartition(distances, k - 1, axis=1)[:, :k]
        probs = np.zeros((len(X), len(self.classes_)))
        for i, row in enumerate(neighbour_rows):
            counts = np.bincount(self._y_index[row], minlength=len(self.classes_))
            probs[i] = counts / k
        return probs


class KNeighborsRegressor(Estimator, RegressorMixin):
    """Mean-of-neighbours k-NN regression."""

    def __init__(self, n_neighbors: int = 3):
        self.n_neighbors = n_neighbors

    def fit(self, X, y) -> "KNeighborsRegressor":
        X = check_2d(X)
        y = np.asarray(y, dtype=float)
        check_consistent_length(X, y)
        self._X = X
        self._y = y
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("_X")
        X = check_2d(X)
        k = min(self.n_neighbors, len(self._X))
        distances = pairwise_euclidean(X, self._X)
        neighbour_rows = np.argpartition(distances, k - 1, axis=1)[:, :k]
        return self._y[neighbour_rows].mean(axis=1)

    def kneighbors(self, X, n_neighbors: int | None = None):
        """Return ``(distances, indices)`` of the nearest neighbours."""
        self._check_fitted("_X")
        X = check_2d(X)
        k = min(n_neighbors or self.n_neighbors, len(self._X))
        distances = pairwise_euclidean(X, self._X)
        indices = np.argsort(distances, axis=1)[:, :k]
        rows = np.arange(len(X))[:, None]
        return distances[rows, indices], indices
