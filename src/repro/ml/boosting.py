"""Gradient boosting over CART trees (classifier and regressor).

``GradientBoostingClassifier`` is the model IR2Vec pairs with its
embeddings in the paper's thread-coarsening and device-mapping case
studies; the regressor backs tree-based cost models.
"""

from __future__ import annotations

import numpy as np

from .base import (
    ClassifierMixin,
    Estimator,
    RegressorMixin,
    check_2d,
    check_consistent_length,
    one_hot,
    softmax,
)
from .tree import DecisionTreeRegressor


class GradientBoostingClassifier(Estimator, ClassifierMixin):
    """Multinomial gradient boosting with softmax cross-entropy loss.

    One regression tree per class per round fits the negative gradient
    (residual between one-hot targets and current probabilities).
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed: int = 0,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X = check_2d(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        self.classes_, y_index = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("need at least two classes to fit a classifier")
        n_samples = len(X)
        targets = one_hot(y_index, n_classes)
        rng = np.random.default_rng(self.seed)

        # Initialize scores at the log class priors.
        priors = np.clip(targets.mean(axis=0), 1e-9, None)
        self.base_score_ = np.log(priors)
        scores = np.tile(self.base_score_, (n_samples, 1))

        self.stages_ = []
        for round_index in range(self.n_estimators):
            probs = softmax(scores)
            residuals = targets - probs
            if self.subsample < 1.0:
                size = max(2 * self.min_samples_leaf, int(n_samples * self.subsample))
                rows = rng.choice(n_samples, size=min(size, n_samples), replace=False)
            else:
                rows = np.arange(n_samples)
            stage = []
            for class_index in range(n_classes):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    seed=self.seed + round_index * n_classes + class_index,
                )
                tree.fit(X[rows], residuals[rows, class_index])
                scores[:, class_index] += self.learning_rate * tree.predict(X)
                stage.append(tree)
            self.stages_.append(stage)
        return self

    def decision_function(self, X) -> np.ndarray:
        """Return accumulated boosting scores per class."""
        self._check_fitted("stages_")
        X = check_2d(X)
        scores = np.tile(self.base_score_, (len(X), 1))
        for stage in self.stages_:
            for class_index, tree in enumerate(stage):
                scores[:, class_index] += self.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X) -> np.ndarray:
        """Return the softmax of the boosting scores."""
        return softmax(self.decision_function(X))


class GradientBoostingRegressor(Estimator, RegressorMixin):
    """Least-squares gradient boosting over regression trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed: int = 0,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X = check_2d(X)
        y = np.asarray(y, dtype=float)
        check_consistent_length(X, y)
        n_samples = len(X)
        rng = np.random.default_rng(self.seed)

        self.base_score_ = float(np.mean(y))
        predictions = np.full(n_samples, self.base_score_)
        self.trees_ = []
        for round_index in range(self.n_estimators):
            residuals = y - predictions
            if self.subsample < 1.0:
                size = max(2 * self.min_samples_leaf, int(n_samples * self.subsample))
                rows = rng.choice(n_samples, size=min(size, n_samples), replace=False)
            else:
                rows = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=self.seed + round_index,
            )
            tree.fit(X[rows], residuals[rows])
            predictions += self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("trees_")
        X = check_2d(X)
        predictions = np.full(len(X), self.base_score_)
        for tree in self.trees_:
            predictions += self.learning_rate * tree.predict(X)
        return predictions
