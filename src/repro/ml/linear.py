"""Linear models: logistic/softmax regression and ridge regression."""

from __future__ import annotations

import numpy as np

from .base import (
    ClassifierMixin,
    Estimator,
    RegressorMixin,
    check_2d,
    check_consistent_length,
    one_hot,
    softmax,
)
from .optim import Adam, minibatches


class LogisticRegression(Estimator, ClassifierMixin):
    """Multinomial logistic (softmax) regression trained with Adam.

    Handles binary and multiclass problems uniformly by optimizing
    cross-entropy over a softmax head with l2 regularization.
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        epochs: int = 200,
        batch_size: int = 64,
        l2: float = 1e-4,
        seed: int = 0,
    ):
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed

    def fit(self, X, y) -> "LogisticRegression":
        X = check_2d(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        self.classes_, y_index = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("need at least two classes to fit a classifier")
        n_samples, n_features = X.shape
        rng = np.random.default_rng(self.seed)
        weights = rng.normal(0.0, 0.01, size=(n_features, n_classes))
        bias = np.zeros(n_classes)
        params = {"W": weights, "b": bias}
        optimizer = Adam(self.learning_rate)
        targets = one_hot(y_index, n_classes)

        for _ in range(self.epochs):
            for batch in minibatches(n_samples, self.batch_size, rng):
                logits = X[batch] @ params["W"] + params["b"]
                probs = softmax(logits)
                error = (probs - targets[batch]) / len(batch)
                grads = {
                    "W": X[batch].T @ error + self.l2 * params["W"],
                    "b": error.sum(axis=0),
                }
                optimizer.step(params, grads)

        self.coef_ = params["W"]
        self.intercept_ = params["b"]
        return self

    def decision_function(self, X) -> np.ndarray:
        """Return raw class logits for each sample."""
        self._check_fitted("coef_")
        X = check_2d(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Return the softmax class-probability matrix."""
        return softmax(self.decision_function(X))


class RidgeRegression(Estimator, RegressorMixin):
    """Linear least squares with l2 regularization, solved in closed form."""

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha

    def fit(self, X, y) -> "RidgeRegression":
        X = check_2d(X)
        y = np.asarray(y, dtype=float)
        check_consistent_length(X, y)
        n_features = X.shape[1]
        augmented = np.hstack([X, np.ones((len(X), 1))])
        penalty = self.alpha * np.eye(n_features + 1)
        penalty[-1, -1] = 0.0  # never regularize the intercept
        gram = augmented.T @ augmented + penalty
        solution = np.linalg.solve(gram, augmented.T @ y)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_2d(X)
        return X @ self.coef_ + self.intercept_
