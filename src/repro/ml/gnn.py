"""Message-passing graph neural network classifier.

Backs the ProGraML underlying model: each program is a graph with
per-node feature vectors; two rounds of mean-aggregation message
passing feed a mean-pooled readout and a softmax head.

Graphs are passed as dictionaries ``{"X": (n_nodes, n_features),
"A": (n_nodes, n_nodes)}`` where ``A`` is an (unnormalized) adjacency
matrix; :func:`graph_from_networkx` converts a networkx graph with
``feature`` node attributes.
"""

from __future__ import annotations

import numpy as np

from .base import (
    ClassifierMixin,
    Estimator,
    check_consistent_length,
    one_hot,
    softmax,
)
from .optim import Adam, clip_gradients, minibatches


def graph_from_networkx(graph, feature_key: str = "feature") -> dict:
    """Convert a networkx graph to the ``{"X", "A"}`` dict the GNN eats."""
    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    features = np.asarray(
        [np.asarray(graph.nodes[node][feature_key], dtype=float) for node in nodes]
    )
    adjacency = np.zeros((len(nodes), len(nodes)))
    for u, v in graph.edges():
        adjacency[index[u], index[v]] = 1.0
        adjacency[index[v], index[u]] = 1.0
    return {"X": features, "A": adjacency}


def _normalize_adjacency(A: np.ndarray) -> np.ndarray:
    """Row-normalize ``A + I`` so messages are neighbourhood means."""
    A_hat = A + np.eye(len(A))
    degrees = A_hat.sum(axis=1, keepdims=True)
    degrees[degrees == 0.0] = 1.0
    return A_hat / degrees


class GNNClassifier(Estimator, ClassifierMixin):
    """Two-layer mean-aggregation GNN with mean-pooled graph readout."""

    def __init__(
        self,
        hidden_size: int = 32,
        n_layers: int = 2,
        learning_rate: float = 0.005,
        epochs: int = 60,
        batch_size: int = 16,
        seed: int = 0,
    ):
        self.hidden_size = hidden_size
        self.n_layers = n_layers
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed

    def _init_params(self, n_features: int, n_classes: int, rng) -> dict:
        def glorot(fan_in, fan_out):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            return rng.uniform(-limit, limit, size=(fan_in, fan_out))

        params = {}
        in_size = n_features
        for layer in range(self.n_layers):
            params[f"W{layer}"] = glorot(in_size, self.hidden_size)
            params[f"b{layer}"] = np.zeros(self.hidden_size)
            in_size = self.hidden_size
        params["Wo"] = glorot(self.hidden_size, n_classes)
        params["bo"] = np.zeros(n_classes)
        return params

    def _forward_graph(self, graph: dict):
        """Message passing for a single graph; returns pooled state + cache."""
        A_norm = _normalize_adjacency(np.asarray(graph["A"], dtype=float))
        hidden = np.asarray(graph["X"], dtype=float)
        cache = []
        for layer in range(self.n_layers):
            messages = A_norm @ hidden
            pre = messages @ self.params_[f"W{layer}"] + self.params_[f"b{layer}"]
            activated = np.maximum(pre, 0.0)
            cache.append((A_norm, messages, pre))
            hidden = activated
        pooled = hidden.mean(axis=0)
        return pooled, hidden, cache

    def _backward_graph(self, graph, hidden, cache, d_pooled, grads):
        """Accumulate parameter gradients for one graph."""
        n_nodes = hidden.shape[0]
        d_hidden = np.tile(d_pooled / n_nodes, (n_nodes, 1))
        for layer in reversed(range(self.n_layers)):
            A_norm, messages, pre = cache[layer]
            d_pre = d_hidden * (pre > 0)
            grads[f"W{layer}"] += messages.T @ d_pre
            grads[f"b{layer}"] += d_pre.sum(axis=0)
            d_messages = d_pre @ self.params_[f"W{layer}"].T
            d_hidden = A_norm.T @ d_messages

    def fit(self, graphs, y) -> "GNNClassifier":
        graphs = list(graphs)
        y = np.asarray(y)
        check_consistent_length(graphs, y)
        if not graphs:
            raise ValueError("need at least one graph to fit")
        self.classes_, y_index = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        n_features = np.asarray(graphs[0]["X"]).shape[1]
        rng = np.random.default_rng(self.seed)
        self.params_ = self._init_params(n_features, n_classes, rng)
        self._optimizer = Adam(self.learning_rate)
        self._train(graphs, y_index, n_classes, self.epochs, rng)
        return self

    def partial_fit(self, graphs, y, epochs: int = 15) -> "GNNClassifier":
        """Continue training on new graphs (incremental learning)."""
        self._check_fitted("params_")
        graphs = list(graphs)
        y = np.asarray(y)
        check_consistent_length(graphs, y)
        index_of = {label: i for i, label in enumerate(self.classes_.tolist())}
        y_index = np.asarray([index_of[label] for label in y.tolist()])
        rng = np.random.default_rng(self.seed + 1)
        self._train(graphs, y_index, len(self.classes_), epochs, rng)
        return self

    def _train(self, graphs, y_index, n_classes, epochs, rng):
        targets = one_hot(y_index, n_classes)
        for _ in range(epochs):
            for batch in minibatches(len(graphs), self.batch_size, rng):
                grads = {name: np.zeros_like(p) for name, p in self.params_.items()}
                for row in batch:
                    pooled, hidden, cache = self._forward_graph(graphs[row])
                    logits = pooled @ self.params_["Wo"] + self.params_["bo"]
                    probs = softmax(logits.reshape(1, -1)).ravel()
                    delta = (probs - targets[row]) / len(batch)
                    grads["Wo"] += np.outer(pooled, delta)
                    grads["bo"] += delta
                    d_pooled = self.params_["Wo"] @ delta
                    self._backward_graph(graphs[row], hidden, cache, d_pooled, grads)
                grads = clip_gradients(grads, 5.0)
                self._optimizer.step(self.params_, grads)

    def predict_proba(self, graphs) -> np.ndarray:
        """Return softmax probabilities for each graph."""
        self._check_fitted("params_")
        logits = np.asarray(
            [
                self._forward_graph(graph)[0] @ self.params_["Wo"] + self.params_["bo"]
                for graph in graphs
            ]
        )
        return softmax(logits)

    def hidden_embedding(self, graphs) -> np.ndarray:
        """Return the pooled node states used as Prom's feature vectors."""
        self._check_fitted("params_")
        return np.asarray([self._forward_graph(graph)[0] for graph in graphs])
