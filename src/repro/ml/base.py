"""Estimator base classes for the numpy mini-ML framework.

The framework mirrors the parts of the scikit-learn contract that Prom
relies on: ``fit``, ``predict``, ``predict_proba`` for classifiers and
``fit``/``predict`` for regressors.  All estimators are plain Python
objects with numpy internals; no external ML library is used.
"""

from __future__ import annotations

import numpy as np


class Estimator:
    """Common behaviour shared by every estimator in :mod:`repro.ml`."""

    def get_params(self) -> dict:
        """Return the constructor parameters of this estimator.

        Parameters are discovered by introspecting public instance
        attributes that do not end in an underscore (fitted state is
        stored in ``*_`` attributes by convention).
        """
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not key.endswith("_")
        }

    def clone(self) -> "Estimator":
        """Return an unfitted copy with identical hyperparameters."""
        fresh = self.__class__(**self.get_params())
        return fresh

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute):
            raise RuntimeError(
                f"{self.__class__.__name__} is not fitted; call fit() first"
            )


class ClassifierMixin:
    """Mixin providing the shared classifier surface.

    Subclasses must implement :meth:`predict_proba` returning an
    ``(n_samples, n_classes)`` array and set ``classes_`` during
    :meth:`fit`.
    """

    def predict(self, X) -> np.ndarray:
        """Return the most probable class label for each row of ``X``."""
        probabilities = self.predict_proba(X)
        indices = np.argmax(probabilities, axis=1)
        return self.classes_[indices]

    def score(self, X, y) -> float:
        """Return mean accuracy of ``predict(X)`` against ``y``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))


class RegressorMixin:
    """Mixin providing the shared regressor surface."""

    def score(self, X, y) -> float:
        """Return the coefficient of determination R^2."""
        y = np.asarray(y, dtype=float)
        predicted = np.asarray(self.predict(X), dtype=float)
        residual = np.sum((y - predicted) ** 2)
        total = np.sum((y - np.mean(y)) ** 2)
        if total == 0.0:
            return 0.0 if residual > 0 else 1.0
        return float(1.0 - residual / total)


def check_2d(X) -> np.ndarray:
    """Coerce ``X`` to a 2-D float array, raising on ragged input."""
    array = np.asarray(X, dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError(f"expected 2-D input, got shape {array.shape}")
    return array


def check_consistent_length(X, y) -> None:
    """Raise ``ValueError`` when ``X`` and ``y`` disagree on sample count."""
    n_x = len(X)
    n_y = len(y)
    if n_x != n_y:
        raise ValueError(f"inconsistent sample counts: X has {n_x}, y has {n_y}")


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / np.sum(exponentials, axis=axis, keepdims=True)


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Return the ``(n, n_classes)`` one-hot encoding of integer labels."""
    encoded = np.zeros((len(labels), n_classes), dtype=float)
    encoded[np.arange(len(labels)), labels] = 1.0
    return encoded
