"""Data preprocessing utilities: scaling, encoding, splitting."""

from __future__ import annotations

import numpy as np

from .base import check_2d


class StandardScaler:
    """Standardize features to zero mean and unit variance.

    Constant features (zero variance) are left centred but unscaled so
    that transforming never divides by zero.
    """

    def fit(self, X) -> "StandardScaler":
        X = check_2d(X)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        X = check_2d(X)
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted; call fit() first")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        X = check_2d(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to the [0, 1] range."""

    def fit(self, X) -> "MinMaxScaler":
        X = check_2d(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.span_ = span
        return self

    def transform(self, X) -> np.ndarray:
        X = check_2d(X)
        if not hasattr(self, "min_"):
            raise RuntimeError("MinMaxScaler is not fitted; call fit() first")
        return (X - self.min_) / self.span_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integers 0..n-1."""

    def fit(self, y) -> "LabelEncoder":
        self.classes_ = np.asarray(sorted(set(np.asarray(y).tolist())))
        self._index = {label: i for i, label in enumerate(self.classes_.tolist())}
        return self

    def transform(self, y) -> np.ndarray:
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder is not fitted; call fit() first")
        try:
            return np.asarray([self._index[label] for label in np.asarray(y).tolist()])
        except KeyError as err:
            raise ValueError(f"unseen label during transform: {err}") from err

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, indices) -> np.ndarray:
        return self.classes_[np.asarray(indices)]


def train_test_split(*arrays, test_size: float = 0.2, seed: int = 0, shuffle: bool = True):
    """Split each array into a train and test part along axis 0.

    Returns ``train_a, test_a, train_b, test_b, ...`` in the same order
    the arrays were supplied, mirroring the familiar sklearn helper.
    """
    if not arrays:
        raise ValueError("at least one array is required")
    n = len(arrays[0])
    for array in arrays[1:]:
        if len(array) != n:
            raise ValueError("all arrays must share the same length")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")

    indices = np.arange(n)
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(indices)
    n_test = max(1, int(round(n * test_size)))
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]

    result = []
    for array in arrays:
        array = np.asarray(array)
        result.append(array[train_idx])
        result.append(array[test_idx])
    return tuple(result)


def kfold_indices(n_samples: int, n_folds: int, seed: int = 0):
    """Yield ``(train_idx, test_idx)`` pairs for shuffled k-fold CV."""
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if n_folds > n_samples:
        raise ValueError("n_folds cannot exceed the number of samples")
    rng = np.random.default_rng(seed)
    indices = rng.permutation(n_samples)
    folds = np.array_split(indices, n_folds)
    for i in range(n_folds):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        yield train_idx, test_idx
