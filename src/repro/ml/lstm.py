"""Recurrent sequence classifiers: LSTM and Bi-LSTM over token ids.

These back the DeepTune (LSTM) and Vulde (Bi-LSTM) underlying models.
Input is a ``(batch, time)`` integer matrix of token ids where id 0 is
reserved for padding; an embedding layer feeds the recurrent cells and
a softmax head classifies the mean-pooled hidden states.

The implementation is a straightforward numpy forward pass plus
backpropagation through time, sized for the small synthetic corpora in
this reproduction (hundreds to a few thousand short sequences).
"""

from __future__ import annotations

import numpy as np

from .base import (
    ClassifierMixin,
    Estimator,
    check_consistent_length,
    one_hot,
    sigmoid,
    softmax,
)
from .optim import Adam, clip_gradients, minibatches


def _check_sequences(X) -> np.ndarray:
    array = np.asarray(X, dtype=int)
    if array.ndim != 2:
        raise ValueError(f"expected (batch, time) token matrix, got shape {array.shape}")
    return array


class _LSTMDirection:
    """Forward/backward machinery for one direction of a (bi-)LSTM.

    Padding positions (mask 0) pass the previous hidden and cell state
    through unchanged, so variable-length sequences in one batch are
    handled exactly.
    """

    def __init__(self, params: dict, prefix: str):
        self.params = params
        self.prefix = prefix

    def forward(self, embedded: np.ndarray, mask: np.ndarray):
        """Run the cell over time; returns hidden states and a cache."""
        p, pre = self.params, self.prefix
        batch, time, _ = embedded.shape
        hidden_size = p[f"{pre}_Wh"].shape[0]
        h = np.zeros((batch, hidden_size))
        c = np.zeros((batch, hidden_size))
        hidden_states = np.zeros((batch, time, hidden_size))
        cache = []
        for t in range(time):
            x_t = embedded[:, t, :]
            h_prev, c_prev = h, c
            gates = x_t @ p[f"{pre}_Wx"] + h_prev @ p[f"{pre}_Wh"] + p[f"{pre}_b"]
            i_gate = sigmoid(gates[:, :hidden_size])
            f_gate = sigmoid(gates[:, hidden_size : 2 * hidden_size])
            o_gate = sigmoid(gates[:, 2 * hidden_size : 3 * hidden_size])
            g_gate = np.tanh(gates[:, 3 * hidden_size :])
            c_new = f_gate * c_prev + i_gate * g_gate
            h_new = o_gate * np.tanh(c_new)
            step_mask = mask[:, t : t + 1]
            h = step_mask * h_new + (1.0 - step_mask) * h_prev
            c = step_mask * c_new + (1.0 - step_mask) * c_prev
            hidden_states[:, t, :] = h
            cache.append(
                (x_t, h_prev, c_prev, i_gate, f_gate, o_gate, g_gate, c_new, step_mask)
            )
        return hidden_states, cache

    def backward(self, cache, d_hidden: np.ndarray):
        """BPTT given upstream gradients on each (masked) hidden state.

        Returns parameter gradients and the gradient w.r.t. the embedded
        inputs, shape ``(batch, time, embed_size)``.
        """
        p, pre = self.params, self.prefix
        batch = d_hidden.shape[0]
        time = len(cache)
        hidden_size = p[f"{pre}_Wh"].shape[0]
        embed_size = p[f"{pre}_Wx"].shape[0]

        grads = {
            f"{pre}_Wx": np.zeros_like(p[f"{pre}_Wx"]),
            f"{pre}_Wh": np.zeros_like(p[f"{pre}_Wh"]),
            f"{pre}_b": np.zeros_like(p[f"{pre}_b"]),
        }
        d_embedded = np.zeros((batch, time, embed_size))
        dh_carry = np.zeros((batch, hidden_size))
        dc_carry = np.zeros((batch, hidden_size))
        for t in reversed(range(time)):
            x_t, h_prev, c_prev, i_gate, f_gate, o_gate, g_gate, c_new, m = cache[t]
            dh = d_hidden[:, t, :] + dh_carry
            # h_t = m * h_new + (1 - m) * h_prev
            dh_new = dh * m
            dh_prev_skip = dh * (1.0 - m)
            # c_t = m * c_new + (1 - m) * c_prev
            dc_new = dc_carry * m
            dc_prev_skip = dc_carry * (1.0 - m)

            tanh_c = np.tanh(c_new)
            do = dh_new * tanh_c
            dc_new = dc_new + dh_new * o_gate * (1.0 - tanh_c**2)
            di = dc_new * g_gate
            df = dc_new * c_prev
            dg = dc_new * i_gate
            dc_carry = dc_new * f_gate + dc_prev_skip

            d_gates = np.concatenate(
                [
                    di * i_gate * (1.0 - i_gate),
                    df * f_gate * (1.0 - f_gate),
                    do * o_gate * (1.0 - o_gate),
                    dg * (1.0 - g_gate**2),
                ],
                axis=1,
            )
            grads[f"{pre}_Wx"] += x_t.T @ d_gates
            grads[f"{pre}_Wh"] += h_prev.T @ d_gates
            grads[f"{pre}_b"] += d_gates.sum(axis=0)
            d_embedded[:, t, :] = d_gates @ p[f"{pre}_Wx"].T
            dh_carry = d_gates @ p[f"{pre}_Wh"].T + dh_prev_skip
        return grads, d_embedded


class LSTMClassifier(Estimator, ClassifierMixin):
    """(Bi-)LSTM token-sequence classifier with mean-pooled readout."""

    def __init__(
        self,
        vocab_size: int = 256,
        embed_size: int = 24,
        hidden_size: int = 32,
        bidirectional: bool = False,
        learning_rate: float = 0.005,
        epochs: int = 20,
        batch_size: int = 32,
        seed: int = 0,
    ):
        self.vocab_size = vocab_size
        self.embed_size = embed_size
        self.hidden_size = hidden_size
        self.bidirectional = bidirectional
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed

    # -- parameter handling --------------------------------------------------
    def _init_params(self, n_classes: int, rng) -> dict:
        def glorot(fan_in, fan_out):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            return rng.uniform(-limit, limit, size=(fan_in, fan_out))

        params = {"E": rng.normal(0.0, 0.1, size=(self.vocab_size, self.embed_size))}
        directions = ["fw", "bw"] if self.bidirectional else ["fw"]
        for pre in directions:
            params[f"{pre}_Wx"] = glorot(self.embed_size, 4 * self.hidden_size)
            params[f"{pre}_Wh"] = glorot(self.hidden_size, 4 * self.hidden_size)
            bias = np.zeros(4 * self.hidden_size)
            # Positive forget-gate bias helps gradient flow early on.
            bias[self.hidden_size : 2 * self.hidden_size] = 1.0
            params[f"{pre}_b"] = bias
        readout_in = self.hidden_size * (2 if self.bidirectional else 1)
        params["Wo"] = glorot(readout_in, n_classes)
        params["bo"] = np.zeros(n_classes)
        return params

    # -- forward ---------------------------------------------------------------
    def _pool(self, X: np.ndarray):
        """Embed, run direction(s), mean-pool over valid timesteps."""
        mask = (X > 0).astype(float)
        embedded = self.params_["E"][np.clip(X, 0, self.vocab_size - 1)]
        forward_dir = _LSTMDirection(self.params_, "fw")
        hidden_fw, cache_fw = forward_dir.forward(embedded, mask)
        pieces = [hidden_fw]
        caches = {"fw": cache_fw}
        if self.bidirectional:
            backward_dir = _LSTMDirection(self.params_, "bw")
            hidden_bw, cache_bw = backward_dir.forward(embedded[:, ::-1, :], mask[:, ::-1])
            pieces.append(hidden_bw[:, ::-1, :])
            caches["bw"] = cache_bw
        hidden = np.concatenate(pieces, axis=2)
        lengths = np.clip(mask.sum(axis=1, keepdims=True), 1.0, None)
        pooled = (hidden * mask[:, :, None]).sum(axis=1) / lengths
        return pooled, mask, lengths, caches

    def fit(self, X, y) -> "LSTMClassifier":
        X = _check_sequences(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        self.classes_, y_index = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        self.params_ = self._init_params(n_classes, rng)
        self._optimizer = Adam(self.learning_rate)
        self._train(X, y_index, n_classes, self.epochs, rng)
        return self

    def partial_fit(self, X, y, epochs: int = 5) -> "LSTMClassifier":
        """Continue training on new samples (incremental learning)."""
        self._check_fitted("params_")
        X = _check_sequences(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        index_of = {label: i for i, label in enumerate(self.classes_.tolist())}
        try:
            y_index = np.asarray([index_of[label] for label in y.tolist()])
        except KeyError as err:
            raise ValueError(f"partial_fit saw unseen class {err}") from err
        rng = np.random.default_rng(self.seed + 1)
        self._train(X, y_index, len(self.classes_), epochs, rng)
        return self

    def _train(self, X, y_index, n_classes, epochs, rng):
        targets = one_hot(y_index, n_classes)
        for _ in range(epochs):
            for batch in minibatches(len(X), self.batch_size, rng):
                self._step(X[batch], targets[batch])

    def _step(self, X, targets):
        pooled, mask, lengths, caches = self._pool(X)
        logits = pooled @ self.params_["Wo"] + self.params_["bo"]
        probs = softmax(logits)
        delta = (probs - targets) / len(X)

        grads = {"Wo": pooled.T @ delta, "bo": delta.sum(axis=0)}
        d_pooled = delta @ self.params_["Wo"].T
        d_hidden_full = (d_pooled[:, None, :] * mask[:, :, None]) / lengths[:, :, None]

        forward_dir = _LSTMDirection(self.params_, "fw")
        g_fw, d_embedded = forward_dir.backward(
            caches["fw"], d_hidden_full[:, :, : self.hidden_size]
        )
        grads.update(g_fw)
        if self.bidirectional:
            backward_dir = _LSTMDirection(self.params_, "bw")
            d_hidden_bw = d_hidden_full[:, :, self.hidden_size :][:, ::-1, :]
            g_bw, d_emb_bw = backward_dir.backward(caches["bw"], d_hidden_bw)
            grads.update(g_bw)
            d_embedded = d_embedded + d_emb_bw[:, ::-1, :]

        grad_E = np.zeros_like(self.params_["E"])
        ids = np.clip(X, 0, self.vocab_size - 1)
        np.add.at(grad_E, ids.ravel(), d_embedded.reshape(-1, self.embed_size))
        grads["E"] = grad_E

        grads = clip_gradients(grads, 5.0)
        self._optimizer.step(self.params_, grads)

    def predict_proba(self, X) -> np.ndarray:
        """Return softmax probabilities for each sequence."""
        self._check_fitted("params_")
        X = _check_sequences(X)
        pooled, _, _, _ = self._pool(X)
        logits = pooled @ self.params_["Wo"] + self.params_["bo"]
        return softmax(logits)

    def hidden_embedding(self, X) -> np.ndarray:
        """Return the pooled recurrent state used as Prom's feature vector."""
        self._check_fitted("params_")
        X = _check_sequences(X)
        pooled, _, _, _ = self._pool(X)
        return pooled
