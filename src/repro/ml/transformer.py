"""Tiny transformer encoder for sequence classification and regression.

Backs the CodeXGLUE / LineVul underlying models (classification over
token sequences) and TLP's BERT-style cost model (regression over
schedule-feature sequences).  One self-attention block with a
position-embedding table and mean-pooled readout — small enough to
train in seconds with numpy, while exercising the same
attention-based code path the paper's models do.
"""

from __future__ import annotations

import numpy as np

from .base import (
    ClassifierMixin,
    Estimator,
    RegressorMixin,
    check_consistent_length,
    one_hot,
    softmax,
)
from .optim import Adam, clip_gradients, minibatches


def _check_sequences(X) -> np.ndarray:
    array = np.asarray(X, dtype=int)
    if array.ndim != 2:
        raise ValueError(f"expected (batch, time) token matrix, got shape {array.shape}")
    return array


class _EncoderCore:
    """Shared single-block attention encoder with full backprop."""

    def _init_encoder_params(self, rng) -> dict:
        def glorot(fan_in, fan_out):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            return rng.uniform(-limit, limit, size=(fan_in, fan_out))

        d = self.embed_size
        params = {
            "E": rng.normal(0.0, 0.1, size=(self.vocab_size, d)),
            "P": rng.normal(0.0, 0.1, size=(self.max_len, d)),
            "Wq": glorot(d, d),
            "Wk": glorot(d, d),
            "Wv": glorot(d, d),
            "Wf1": glorot(d, self.ff_size),
            "bf1": np.zeros(self.ff_size),
            "Wf2": glorot(self.ff_size, d),
            "bf2": np.zeros(d),
        }
        return params

    def _encode(self, X: np.ndarray):
        """Embed + attention + feed-forward; returns pooled states + cache."""
        p = self.params_
        batch, time = X.shape
        if time > self.max_len:
            raise ValueError(f"sequence length {time} exceeds max_len {self.max_len}")
        mask = (X > 0).astype(float)
        ids = np.clip(X, 0, self.vocab_size - 1)
        embedded = p["E"][ids] + p["P"][:time]

        queries = embedded @ p["Wq"]
        keys = embedded @ p["Wk"]
        values = embedded @ p["Wv"]
        scale = 1.0 / np.sqrt(self.embed_size)
        scores = np.einsum("btd,bsd->bts", queries, keys) * scale
        # Mask out padding keys with a large negative bias.
        scores = scores + (1.0 - mask[:, None, :]) * (-1e9)
        attention = softmax(scores, axis=2)
        attended = np.einsum("bts,bsd->btd", attention, values)
        residual = embedded + attended

        ff_pre = residual @ p["Wf1"] + p["bf1"]
        ff_act = np.maximum(ff_pre, 0.0)
        encoded = residual + ff_act @ p["Wf2"] + p["bf2"]

        lengths = np.clip(mask.sum(axis=1, keepdims=True), 1.0, None)
        pooled = (encoded * mask[:, :, None]).sum(axis=1) / lengths
        cache = {
            "ids": ids,
            "mask": mask,
            "lengths": lengths,
            "embedded": embedded,
            "queries": queries,
            "keys": keys,
            "values": values,
            "attention": attention,
            "residual": residual,
            "ff_pre": ff_pre,
            "ff_act": ff_act,
            "time": time,
        }
        return pooled, cache

    def _encoder_backward(self, cache: dict, d_pooled: np.ndarray) -> dict:
        """Backprop from pooled-state gradients to all encoder params."""
        p = self.params_
        mask = cache["mask"]
        d_encoded = (d_pooled[:, None, :] * mask[:, :, None]) / cache["lengths"][:, :, None]

        grads = {}
        # encoded = residual + ff_act @ Wf2 + bf2
        d_residual = d_encoded.copy()
        grads["Wf2"] = np.einsum("btf,btd->fd", cache["ff_act"], d_encoded)
        grads["bf2"] = d_encoded.sum(axis=(0, 1))
        d_ff_act = d_encoded @ p["Wf2"].T
        d_ff_pre = d_ff_act * (cache["ff_pre"] > 0)
        grads["Wf1"] = np.einsum("btd,btf->df", cache["residual"], d_ff_pre)
        grads["bf1"] = d_ff_pre.sum(axis=(0, 1))
        d_residual += d_ff_pre @ p["Wf1"].T

        # residual = embedded + attended
        d_embedded = d_residual.copy()
        d_attended = d_residual

        # attended = attention @ values
        d_attention = np.einsum("btd,bsd->bts", d_attended, cache["values"])
        d_values = np.einsum("bts,btd->bsd", cache["attention"], d_attended)

        # softmax backward over axis 2
        attention = cache["attention"]
        inner = np.sum(d_attention * attention, axis=2, keepdims=True)
        d_scores = attention * (d_attention - inner)
        scale = 1.0 / np.sqrt(self.embed_size)
        d_scores *= scale

        d_queries = np.einsum("bts,bsd->btd", d_scores, cache["keys"])
        d_keys = np.einsum("bts,btd->bsd", d_scores, cache["queries"])

        embedded = cache["embedded"]
        grads["Wq"] = np.einsum("btd,bte->de", embedded, d_queries)
        grads["Wk"] = np.einsum("btd,bte->de", embedded, d_keys)
        grads["Wv"] = np.einsum("btd,bte->de", embedded, d_values)
        d_embedded += d_queries @ p["Wq"].T + d_keys @ p["Wk"].T + d_values @ p["Wv"].T

        grads["P"] = np.zeros_like(p["P"])
        grads["P"][: cache["time"]] = d_embedded.sum(axis=0)
        grads["E"] = np.zeros_like(p["E"])
        np.add.at(
            grads["E"],
            cache["ids"].ravel(),
            d_embedded.reshape(-1, self.embed_size),
        )
        return grads


class TransformerClassifier(Estimator, ClassifierMixin, _EncoderCore):
    """Single-block transformer encoder with a softmax head."""

    def __init__(
        self,
        vocab_size: int = 256,
        max_len: int = 64,
        embed_size: int = 32,
        ff_size: int = 64,
        learning_rate: float = 0.003,
        epochs: int = 25,
        batch_size: int = 32,
        seed: int = 0,
    ):
        self.vocab_size = vocab_size
        self.max_len = max_len
        self.embed_size = embed_size
        self.ff_size = ff_size
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed

    def fit(self, X, y) -> "TransformerClassifier":
        X = _check_sequences(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        self.classes_, y_index = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        self.params_ = self._init_encoder_params(rng)
        limit = np.sqrt(6.0 / (self.embed_size + n_classes))
        self.params_["Wo"] = rng.uniform(-limit, limit, size=(self.embed_size, n_classes))
        self.params_["bo"] = np.zeros(n_classes)
        self._optimizer = Adam(self.learning_rate)
        self._train(X, y_index, n_classes, self.epochs, rng)
        return self

    def partial_fit(self, X, y, epochs: int = 5) -> "TransformerClassifier":
        """Continue training on new samples (incremental learning)."""
        self._check_fitted("params_")
        X = _check_sequences(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        index_of = {label: i for i, label in enumerate(self.classes_.tolist())}
        try:
            y_index = np.asarray([index_of[label] for label in y.tolist()])
        except KeyError as err:
            raise ValueError(f"partial_fit saw unseen class {err}") from err
        rng = np.random.default_rng(self.seed + 1)
        self._train(X, y_index, len(self.classes_), epochs, rng)
        return self

    def _train(self, X, y_index, n_classes, epochs, rng):
        targets = one_hot(y_index, n_classes)
        for _ in range(epochs):
            for batch in minibatches(len(X), self.batch_size, rng):
                pooled, cache = self._encode(X[batch])
                logits = pooled @ self.params_["Wo"] + self.params_["bo"]
                probs = softmax(logits)
                delta = (probs - targets[batch]) / len(batch)
                grads = {"Wo": pooled.T @ delta, "bo": delta.sum(axis=0)}
                d_pooled = delta @ self.params_["Wo"].T
                grads.update(self._encoder_backward(cache, d_pooled))
                grads = clip_gradients(grads, 5.0)
                self._optimizer.step(self.params_, grads)

    def predict_proba(self, X) -> np.ndarray:
        """Return softmax probabilities for each sequence."""
        self._check_fitted("params_")
        X = _check_sequences(X)
        pooled, _ = self._encode(X)
        logits = pooled @ self.params_["Wo"] + self.params_["bo"]
        return softmax(logits)

    def hidden_embedding(self, X) -> np.ndarray:
        """Return the pooled encoder state used as Prom's feature vector."""
        self._check_fitted("params_")
        X = _check_sequences(X)
        pooled, _ = self._encode(X)
        return pooled


class TransformerRegressor(Estimator, RegressorMixin, _EncoderCore):
    """Single-block transformer encoder with a scalar regression head."""

    def __init__(
        self,
        vocab_size: int = 256,
        max_len: int = 64,
        embed_size: int = 32,
        ff_size: int = 64,
        learning_rate: float = 0.003,
        epochs: int = 30,
        batch_size: int = 32,
        seed: int = 0,
    ):
        self.vocab_size = vocab_size
        self.max_len = max_len
        self.embed_size = embed_size
        self.ff_size = ff_size
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed

    def fit(self, X, y) -> "TransformerRegressor":
        X = _check_sequences(X)
        y = np.asarray(y, dtype=float)
        check_consistent_length(X, y)
        rng = np.random.default_rng(self.seed)
        self.params_ = self._init_encoder_params(rng)
        limit = np.sqrt(6.0 / (self.embed_size + 1))
        self.params_["Wo"] = rng.uniform(-limit, limit, size=(self.embed_size, 1))
        self.params_["bo"] = np.zeros(1)
        self._optimizer = Adam(self.learning_rate)
        self._train(X, y, self.epochs, rng)
        return self

    def partial_fit(self, X, y, epochs: int = 5) -> "TransformerRegressor":
        """Continue training on new samples (incremental learning)."""
        self._check_fitted("params_")
        X = _check_sequences(X)
        y = np.asarray(y, dtype=float)
        check_consistent_length(X, y)
        rng = np.random.default_rng(self.seed + 1)
        self._train(X, y, epochs, rng)
        return self

    def _train(self, X, y, epochs, rng):
        y = y.reshape(-1, 1)
        for _ in range(epochs):
            for batch in minibatches(len(X), self.batch_size, rng):
                pooled, cache = self._encode(X[batch])
                output = pooled @ self.params_["Wo"] + self.params_["bo"]
                delta = 2.0 * (output - y[batch]) / len(batch)
                grads = {"Wo": pooled.T @ delta, "bo": delta.sum(axis=0)}
                d_pooled = delta @ self.params_["Wo"].T
                grads.update(self._encoder_backward(cache, d_pooled))
                grads = clip_gradients(grads, 5.0)
                self._optimizer.step(self.params_, grads)

    def predict(self, X) -> np.ndarray:
        self._check_fitted("params_")
        X = _check_sequences(X)
        pooled, _ = self._encode(X)
        return (pooled @ self.params_["Wo"] + self.params_["bo"]).ravel()

    def hidden_embedding(self, X) -> np.ndarray:
        """Return the pooled encoder state used as Prom's feature vector."""
        self._check_fitted("params_")
        X = _check_sequences(X)
        pooled, _ = self._encode(X)
        return pooled
