"""Linear support vector machine with Platt-scaled probabilities.

Reproduces the model family of K. Stock et al. (loop vectorization) and
the misprediction detector inside the RISE baseline.  Multiclass is
handled one-vs-rest; probabilities come from a logistic (Platt) fit on
the decision margins so that ``predict_proba`` satisfies the contract
Prom's nonconformity functions expect.
"""

from __future__ import annotations

import numpy as np

from .base import (
    ClassifierMixin,
    Estimator,
    check_2d,
    check_consistent_length,
    sigmoid,
)


def _fit_platt(margins: np.ndarray, targets: np.ndarray, iterations: int = 200) -> tuple:
    """Fit ``p = sigmoid(a * margin + b)`` by gradient descent."""
    a, b = -1.0, 0.0
    learning_rate = 0.05
    for _ in range(iterations):
        probs = sigmoid(a * margins + b)
        error = probs - targets
        grad_a = float(np.mean(error * margins))
        grad_b = float(np.mean(error))
        a -= learning_rate * grad_a
        b -= learning_rate * grad_b
    return a, b


class LinearSVC(Estimator, ClassifierMixin):
    """One-vs-rest linear SVM trained with hinge-loss subgradient descent."""

    def __init__(
        self,
        C: float = 1.0,
        epochs: int = 150,
        learning_rate: float = 0.01,
        seed: int = 0,
    ):
        self.C = C
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed

    def fit(self, X, y) -> "LinearSVC":
        X = check_2d(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        self.classes_, y_index = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("need at least two classes to fit a classifier")
        n_samples, n_features = X.shape
        rng = np.random.default_rng(self.seed)

        weights = np.zeros((n_classes, n_features))
        biases = np.zeros(n_classes)
        platt = []
        for class_index in range(n_classes):
            signs = np.where(y_index == class_index, 1.0, -1.0)
            w = rng.normal(0.0, 0.01, size=n_features)
            b = 0.0
            for epoch in range(self.epochs):
                lr = self.learning_rate / (1.0 + 0.01 * epoch)
                order = rng.permutation(n_samples)
                for i in order:
                    margin = signs[i] * (X[i] @ w + b)
                    if margin < 1.0:
                        w = (1.0 - lr / self.C) * w + lr * signs[i] * X[i]
                        b += lr * signs[i]
                    else:
                        w = (1.0 - lr / self.C) * w
            weights[class_index] = w
            biases[class_index] = b
            margins = X @ w + b
            targets = (signs > 0).astype(float)
            platt.append(_fit_platt(margins, targets))

        self.coef_ = weights
        self.intercept_ = biases
        self.platt_ = platt
        return self

    def decision_function(self, X) -> np.ndarray:
        """Return per-class margins; shape ``(n_samples, n_classes)``."""
        self._check_fitted("coef_")
        X = check_2d(X)
        return X @ self.coef_.T + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Return Platt-scaled, renormalized one-vs-rest probabilities."""
        margins = self.decision_function(X)
        probs = np.empty_like(margins)
        for class_index, (a, b) in enumerate(self.platt_):
            probs[:, class_index] = sigmoid(a * margins[:, class_index] + b)
        total = probs.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return probs / total

    def predict(self, X) -> np.ndarray:
        """Predict by the largest raw margin (standard OvR rule)."""
        margins = self.decision_function(X)
        return self.classes_[np.argmax(margins, axis=1)]
