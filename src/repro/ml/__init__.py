"""A self-contained numpy mini-ML framework.

Provides the probabilistic classifiers, regressors and utilities that
the paper's 13 underlying models are built from.  Every classifier
exposes ``fit`` / ``predict`` / ``predict_proba`` and (for the neural
models) ``hidden_embedding`` — the full contract Prom consumes.
"""

from .base import (
    ClassifierMixin,
    Estimator,
    RegressorMixin,
    one_hot,
    sigmoid,
    softmax,
)
from .boosting import GradientBoostingClassifier, GradientBoostingRegressor
from .cluster import KMeans, gap_statistic
from .gnn import GNNClassifier, graph_from_networkx
from .knn import KNeighborsClassifier, KNeighborsRegressor, pairwise_euclidean
from .linear import LogisticRegression, RidgeRegression
from .lstm import LSTMClassifier
from .mlp import MLPClassifier, MLPRegressor
from .preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    StandardScaler,
    kfold_indices,
    train_test_split,
)
from .svm import LinearSVC
from .transformer import TransformerClassifier, TransformerRegressor
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "ClassifierMixin",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "Estimator",
    "GNNClassifier",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "KMeans",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "LSTMClassifier",
    "LabelEncoder",
    "LinearSVC",
    "LogisticRegression",
    "MLPClassifier",
    "MLPRegressor",
    "MinMaxScaler",
    "RegressorMixin",
    "RidgeRegression",
    "StandardScaler",
    "TransformerClassifier",
    "TransformerRegressor",
    "gap_statistic",
    "graph_from_networkx",
    "kfold_indices",
    "one_hot",
    "pairwise_euclidean",
    "sigmoid",
    "softmax",
    "train_test_split",
]
