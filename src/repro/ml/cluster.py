"""K-means clustering and the Gap statistic.

Prom's regression support derives pseudo-labels by clustering the
calibration features with K-means, choosing K (2..20) via the Gap
statistic of Tibshirani et al. (2001).
"""

from __future__ import annotations

import numpy as np

from .base import Estimator, check_2d


class KMeans(Estimator):
    """Lloyd's algorithm with k-means++ initialization."""

    def __init__(self, n_clusters: int = 8, max_iter: int = 100, seed: int = 0):
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.seed = seed

    def _init_centers(self, X, rng) -> np.ndarray:
        """k-means++ seeding: spread initial centers by squared distance."""
        n_samples = len(X)
        centers = np.empty((self.n_clusters, X.shape[1]))
        first = rng.integers(n_samples)
        centers[0] = X[first]
        closest_sq = np.sum((X - centers[0]) ** 2, axis=1)
        for i in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0.0:
                centers[i:] = X[rng.integers(n_samples, size=self.n_clusters - i)]
                break
            probabilities = closest_sq / total
            choice = rng.choice(n_samples, p=probabilities)
            centers[i] = X[choice]
            new_sq = np.sum((X - centers[i]) ** 2, axis=1)
            closest_sq = np.minimum(closest_sq, new_sq)
        return centers

    def fit(self, X) -> "KMeans":
        X = check_2d(X)
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if len(X) < self.n_clusters:
            raise ValueError(
                f"cannot fit {self.n_clusters} clusters to {len(X)} samples"
            )
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(X, rng)
        labels = np.zeros(len(X), dtype=int)
        for _ in range(self.max_iter):
            distances = _distances_to_centers(X, centers)
            new_labels = np.argmin(distances, axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for k in range(self.n_clusters):
                members = X[labels == k]
                if len(members) > 0:
                    centers[k] = members.mean(axis=0)
                else:
                    # Re-seed empty clusters at the farthest point.
                    farthest = np.argmax(np.min(distances, axis=1))
                    centers[k] = X[farthest]
        self.cluster_centers_ = centers
        self.labels_ = labels
        self.inertia_ = float(
            np.sum((X - centers[labels]) ** 2)
        )
        return self

    def predict(self, X) -> np.ndarray:
        """Assign each sample to its nearest fitted center."""
        self._check_fitted("cluster_centers_")
        X = check_2d(X)
        distances = _distances_to_centers(X, self.cluster_centers_)
        return np.argmin(distances, axis=1)

    def fit_predict(self, X) -> np.ndarray:
        return self.fit(X).labels_


def _distances_to_centers(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
    squared = (
        np.sum(X * X, axis=1)[:, None]
        + np.sum(centers * centers, axis=1)[None, :]
        - 2.0 * X @ centers.T
    )
    return np.clip(squared, 0.0, None)


def _log_within_dispersion(X: np.ndarray, k: int, seed: int) -> float:
    model = KMeans(n_clusters=k, seed=seed).fit(X)
    return float(np.log(max(model.inertia_, 1e-12)))


def gap_statistic(
    X,
    k_min: int = 2,
    k_max: int = 20,
    n_references: int = 5,
    seed: int = 0,
) -> tuple:
    """Choose the number of clusters by the Gap statistic.

    Compares log within-cluster dispersion of K-means on ``X`` against
    the expectation under ``n_references`` uniform reference datasets
    drawn over the bounding box of ``X``.  Returns ``(best_k, gaps)``
    where ``gaps`` maps each evaluated k to its gap value.
    """
    X = check_2d(X)
    k_max = min(k_max, len(X) - 1)
    if k_max < k_min:
        return max(1, min(k_min, len(X) - 1)), {}
    rng = np.random.default_rng(seed)
    lower = X.min(axis=0)
    upper = X.max(axis=0)

    gaps = {}
    for k in range(k_min, k_max + 1):
        observed = _log_within_dispersion(X, k, seed)
        reference_logs = []
        for ref_index in range(n_references):
            reference = rng.uniform(lower, upper, size=X.shape)
            reference_logs.append(
                _log_within_dispersion(reference, k, seed + ref_index + 1)
            )
        gaps[k] = float(np.mean(reference_logs) - observed)
    best_k = max(gaps, key=gaps.get)
    return best_k, gaps
