"""Gradient-descent optimizers used by the neural estimators."""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict = {}

    def step(self, params: dict, grads: dict) -> None:
        """Update ``params`` in place from matching ``grads``."""
        for name, grad in grads.items():
            if self.momentum > 0.0:
                velocity = self._velocity.get(name)
                if velocity is None:
                    velocity = np.zeros_like(grad)
                velocity = self.momentum * velocity - self.learning_rate * grad
                self._velocity[name] = velocity
                params[name] += velocity
            else:
                params[name] -= self.learning_rate * grad


class Adam:
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: dict = {}
        self._second_moment: dict = {}
        self._step_count = 0

    def step(self, params: dict, grads: dict) -> None:
        """Update ``params`` in place from matching ``grads``."""
        self._step_count += 1
        t = self._step_count
        for name, grad in grads.items():
            m = self._first_moment.get(name)
            v = self._second_moment.get(name)
            if m is None:
                m = np.zeros_like(grad)
                v = np.zeros_like(grad)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._first_moment[name] = m
            self._second_moment[name] = v
            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            params[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def clip_gradients(grads: dict, max_norm: float) -> dict:
    """Scale all gradients so their global l2 norm is at most ``max_norm``."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = np.sqrt(sum(float(np.sum(g * g)) for g in grads.values()))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        return {name: g * scale for name, g in grads.items()}
    return grads


def minibatches(n_samples: int, batch_size: int, rng: np.random.Generator):
    """Yield shuffled index batches covering all samples once."""
    order = rng.permutation(n_samples)
    for start in range(0, n_samples, batch_size):
        yield order[start : start + batch_size]
