"""Multilayer perceptron classifier and regressor (numpy backprop).

``MLPClassifier`` reproduces the model family used by Magni et al. for
GPU thread coarsening; ``MLPRegressor`` backs simple cost models.  Both
support warm-started incremental refitting via ``partial_fit``, which
Prom's incremental-learning loop uses to update deployed models.
"""

from __future__ import annotations

import numpy as np

from .base import (
    ClassifierMixin,
    Estimator,
    RegressorMixin,
    check_2d,
    check_consistent_length,
    one_hot,
    softmax,
)
from .optim import Adam, clip_gradients, minibatches


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


class _MLPCore:
    """Shared forward/backward machinery for the two MLP estimators."""

    def _init_params(self, layer_sizes, rng):
        params = {}
        for i, (fan_in, fan_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            params[f"W{i}"] = rng.uniform(-limit, limit, size=(fan_in, fan_out))
            params[f"b{i}"] = np.zeros(fan_out)
        return params

    def _forward(self, X, params, n_layers):
        activations = [X]
        hidden = X
        for i in range(n_layers - 1):
            hidden = _relu(hidden @ params[f"W{i}"] + params[f"b{i}"])
            activations.append(hidden)
        logits = hidden @ params[f"W{n_layers - 1}"] + params[f"b{n_layers - 1}"]
        return logits, activations

    def _backward(self, delta, activations, params, n_layers, l2):
        grads = {}
        for i in reversed(range(n_layers)):
            grads[f"W{i}"] = activations[i].T @ delta + l2 * params[f"W{i}"]
            grads[f"b{i}"] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ params[f"W{i}"].T) * (activations[i] > 0)
        return grads


class MLPClassifier(Estimator, ClassifierMixin, _MLPCore):
    """Feed-forward ReLU network with a softmax output head."""

    def __init__(
        self,
        hidden_sizes=(32, 32),
        learning_rate: float = 0.005,
        epochs: int = 150,
        batch_size: int = 32,
        l2: float = 1e-4,
        seed: int = 0,
    ):
        self.hidden_sizes = tuple(hidden_sizes)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed

    def fit(self, X, y) -> "MLPClassifier":
        X = check_2d(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        self.classes_, y_index = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("need at least two classes to fit a classifier")
        layer_sizes = (X.shape[1], *self.hidden_sizes, n_classes)
        rng = np.random.default_rng(self.seed)
        self.params_ = self._init_params(layer_sizes, rng)
        self._n_layers = len(layer_sizes) - 1
        self._optimizer = Adam(self.learning_rate)
        self._train(X, y_index, n_classes, self.epochs, rng)
        return self

    def partial_fit(self, X, y, epochs: int = 30) -> "MLPClassifier":
        """Continue training on new samples without reinitializing.

        Labels must be drawn from the classes seen in the initial
        :meth:`fit`; unseen labels raise ``ValueError``.
        """
        self._check_fitted("params_")
        X = check_2d(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        index_of = {label: i for i, label in enumerate(self.classes_.tolist())}
        try:
            y_index = np.asarray([index_of[label] for label in y.tolist()])
        except KeyError as err:
            raise ValueError(f"partial_fit saw unseen class {err}") from err
        rng = np.random.default_rng(self.seed + 1)
        self._train(X, y_index, len(self.classes_), epochs, rng)
        return self

    def _train(self, X, y_index, n_classes, epochs, rng):
        targets = one_hot(y_index, n_classes)
        for _ in range(epochs):
            for batch in minibatches(len(X), self.batch_size, rng):
                logits, activations = self._forward(X[batch], self.params_, self._n_layers)
                probs = softmax(logits)
                delta = (probs - targets[batch]) / len(batch)
                grads = self._backward(
                    delta, activations, self.params_, self._n_layers, self.l2
                )
                grads = clip_gradients(grads, 5.0)
                self._optimizer.step(self.params_, grads)

    def decision_function(self, X) -> np.ndarray:
        """Return raw output logits."""
        self._check_fitted("params_")
        X = check_2d(X)
        logits, _ = self._forward(X, self.params_, self._n_layers)
        return logits

    def predict_proba(self, X) -> np.ndarray:
        """Return softmax probabilities over the fitted classes."""
        return softmax(self.decision_function(X))

    def hidden_embedding(self, X) -> np.ndarray:
        """Return the activation of the last hidden layer.

        Prom uses this as the feature vector for its adaptive
        calibration-sample selection when the underlying model is a
        neural network.
        """
        self._check_fitted("params_")
        X = check_2d(X)
        _, activations = self._forward(X, self.params_, self._n_layers)
        return activations[-1]


class MLPRegressor(Estimator, RegressorMixin, _MLPCore):
    """Feed-forward ReLU network with a linear scalar output."""

    def __init__(
        self,
        hidden_sizes=(64, 32),
        learning_rate: float = 0.003,
        epochs: int = 200,
        batch_size: int = 32,
        l2: float = 1e-4,
        seed: int = 0,
    ):
        self.hidden_sizes = tuple(hidden_sizes)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed

    def fit(self, X, y) -> "MLPRegressor":
        X = check_2d(X)
        y = np.asarray(y, dtype=float).reshape(-1, 1)
        check_consistent_length(X, y)
        layer_sizes = (X.shape[1], *self.hidden_sizes, 1)
        rng = np.random.default_rng(self.seed)
        self.params_ = self._init_params(layer_sizes, rng)
        self._n_layers = len(layer_sizes) - 1
        self._optimizer = Adam(self.learning_rate)
        self._train(X, y, self.epochs, rng)
        return self

    def partial_fit(self, X, y, epochs: int = 30) -> "MLPRegressor":
        """Continue training on new samples without reinitializing."""
        self._check_fitted("params_")
        X = check_2d(X)
        y = np.asarray(y, dtype=float).reshape(-1, 1)
        check_consistent_length(X, y)
        rng = np.random.default_rng(self.seed + 1)
        self._train(X, y, epochs, rng)
        return self

    def _train(self, X, y, epochs, rng):
        for _ in range(epochs):
            for batch in minibatches(len(X), self.batch_size, rng):
                output, activations = self._forward(X[batch], self.params_, self._n_layers)
                delta = 2.0 * (output - y[batch]) / len(batch)
                grads = self._backward(
                    delta, activations, self.params_, self._n_layers, self.l2
                )
                grads = clip_gradients(grads, 5.0)
                self._optimizer.step(self.params_, grads)

    def predict(self, X) -> np.ndarray:
        self._check_fitted("params_")
        X = check_2d(X)
        output, _ = self._forward(X, self.params_, self._n_layers)
        return output.ravel()

    def hidden_embedding(self, X) -> np.ndarray:
        """Return the activation of the last hidden layer."""
        self._check_fitted("params_")
        X = check_2d(X)
        _, activations = self._forward(X, self.params_, self._n_layers)
        return activations[-1]
