"""CART decision trees for classification and regression.

These are the weak learners behind :mod:`repro.ml.boosting` (the GBC
used by IR2Vec in the paper) and are usable standalone.
"""

from __future__ import annotations

import numpy as np

from .base import (
    ClassifierMixin,
    Estimator,
    RegressorMixin,
    check_2d,
    check_consistent_length,
)


class _Node:
    """A single tree node; leaves carry ``value``, splits carry children."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value=None):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.value = value

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(X, y_stats, indices, min_leaf, rng, feature_subsample):
    """Find the variance/gini-reducing split over candidate features.

    ``y_stats`` is the per-sample target representation: a 1-D array for
    regression (raw targets) or a 2-D one-hot matrix for classification.
    The same sum-of-squares criterion works for both: for one-hot
    targets, variance reduction is equivalent to gini-style impurity
    reduction up to scaling.
    """
    n_features = X.shape[1]
    n_candidates = max(1, int(n_features * feature_subsample))
    features = rng.choice(n_features, size=n_candidates, replace=False)

    y_sub = y_stats[indices]
    total_sum = y_sub.sum(axis=0)
    total_count = len(indices)
    parent_score = float(np.sum(total_sum * total_sum)) / total_count

    best_gain = 0.0
    best = None
    for feature in features:
        values = X[indices, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_stats = y_sub[order]
        prefix = np.cumsum(sorted_stats, axis=0)
        for split_pos in range(min_leaf, total_count - min_leaf + 1):
            if split_pos < total_count and sorted_values[split_pos - 1] == sorted_values[split_pos]:
                continue
            if split_pos >= total_count:
                continue
            left_sum = prefix[split_pos - 1]
            right_sum = total_sum - left_sum
            left_score = float(np.sum(left_sum * left_sum)) / split_pos
            right_score = float(np.sum(right_sum * right_sum)) / (total_count - split_pos)
            gain = left_score + right_score - parent_score
            if gain > best_gain + 1e-12:
                best_gain = gain
                threshold = 0.5 * (sorted_values[split_pos - 1] + sorted_values[split_pos])
                best = (int(feature), float(threshold))
    return best


def _build_tree(X, y_stats, indices, depth, max_depth, min_leaf, rng, feature_subsample):
    node = _Node()
    counts = y_stats[indices]
    mean_value = counts.mean(axis=0)
    node.value = mean_value
    if depth >= max_depth or len(indices) < 2 * min_leaf:
        return node
    if np.allclose(counts, counts[0]):
        return node
    split = _best_split(X, y_stats, indices, min_leaf, rng, feature_subsample)
    if split is None:
        return node
    feature, threshold = split
    mask = X[indices, feature] <= threshold
    left_idx = indices[mask]
    right_idx = indices[~mask]
    if len(left_idx) < min_leaf or len(right_idx) < min_leaf:
        return node
    node.feature = feature
    node.threshold = threshold
    node.left = _build_tree(
        X, y_stats, left_idx, depth + 1, max_depth, min_leaf, rng, feature_subsample
    )
    node.right = _build_tree(
        X, y_stats, right_idx, depth + 1, max_depth, min_leaf, rng, feature_subsample
    )
    return node


def _tree_apply(node, X):
    """Return the leaf value for every row of ``X``."""
    out = np.empty((len(X),) + np.shape(node.value), dtype=float)
    stack = [(node, np.arange(len(X)))]
    while stack:
        current, rows = stack.pop()
        if current.is_leaf:
            out[rows] = current.value
            continue
        mask = X[rows, current.feature] <= current.threshold
        stack.append((current.left, rows[mask]))
        stack.append((current.right, rows[~mask]))
    return out


class DecisionTreeRegressor(Estimator, RegressorMixin):
    """CART regression tree minimizing within-leaf variance."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        feature_subsample: float = 1.0,
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.feature_subsample = feature_subsample
        self.seed = seed

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = check_2d(X)
        y = np.asarray(y, dtype=float)
        check_consistent_length(X, y)
        rng = np.random.default_rng(self.seed)
        self.root_ = _build_tree(
            X,
            y.reshape(-1, 1),
            np.arange(len(X)),
            depth=0,
            max_depth=self.max_depth,
            min_leaf=self.min_samples_leaf,
            rng=rng,
            feature_subsample=self.feature_subsample,
        )
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("root_")
        X = check_2d(X)
        return _tree_apply(self.root_, X).ravel()


class DecisionTreeClassifier(Estimator, ClassifierMixin):
    """CART classification tree; leaves hold class-frequency vectors."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        feature_subsample: float = 1.0,
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.feature_subsample = feature_subsample
        self.seed = seed

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = check_2d(X)
        y = np.asarray(y)
        check_consistent_length(X, y)
        self.classes_, y_index = np.unique(y, return_inverse=True)
        one_hot = np.zeros((len(y_index), len(self.classes_)))
        one_hot[np.arange(len(y_index)), y_index] = 1.0
        rng = np.random.default_rng(self.seed)
        self.root_ = _build_tree(
            X,
            one_hot,
            np.arange(len(X)),
            depth=0,
            max_depth=self.max_depth,
            min_leaf=self.min_samples_leaf,
            rng=rng,
            feature_subsample=self.feature_subsample,
        )
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Return per-leaf class frequencies as probabilities."""
        self._check_fitted("root_")
        X = check_2d(X)
        probs = _tree_apply(self.root_, X)
        total = probs.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return probs / total
