"""The five case studies of the paper's evaluation (Table 1)."""

from .base import CaseStudy, Split
from .dnn_code_generation import NETWORKS, DnnCodeGenerationTask
from .heterogeneous_mapping import DEVICES, HeterogeneousMappingTask
from .loop_vectorization import DEFAULT_HELD_OUT, LoopVectorizationTask
from .thread_coarsening import ThreadCoarseningTask
from .vulnerability_detection import VulnerabilityDetectionTask

CLASSIFICATION_TASKS = {
    "thread_coarsening": ThreadCoarseningTask,
    "loop_vectorization": LoopVectorizationTask,
    "heterogeneous_mapping": HeterogeneousMappingTask,
    "vulnerability_detection": VulnerabilityDetectionTask,
}

__all__ = [
    "CLASSIFICATION_TASKS",
    "CaseStudy",
    "DEFAULT_HELD_OUT",
    "DEVICES",
    "DnnCodeGenerationTask",
    "HeterogeneousMappingTask",
    "LoopVectorizationTask",
    "NETWORKS",
    "Split",
    "ThreadCoarseningTask",
    "VulnerabilityDetectionTask",
]
