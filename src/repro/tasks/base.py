"""Case-study base classes (paper Sec. 6).

A :class:`CaseStudy` owns a generated dataset, the class-label space,
the design-time and drift-inducing splits, and the task-specific
performance accounting (performance-to-oracle for the optimization
tasks, plain accuracy for bug detection).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Split:
    """Train/test index pair over a case study's samples."""

    train: np.ndarray
    test: np.ndarray
    description: str = ""

    def __post_init__(self):
        overlap = set(self.train.tolist()) & set(self.test.tolist())
        if overlap:
            raise ValueError(f"split leaks {len(overlap)} samples between train and test")


class CaseStudy(abc.ABC):
    """Common behaviour of the five classification/regression tasks.

    Subclasses populate ``self._samples`` (list of
    :class:`~repro.models.ProgramSample`), ``self._labels`` (integer
    class indices) and ``self._classes`` (label values aligned with the
    indices) in their constructor.
    """

    #: machine name matching models.MODEL_CATALOG keys
    name: str = "case-study"

    @property
    def samples(self) -> list:
        return self._samples

    @property
    def labels(self) -> np.ndarray:
        """Integer label indices (positions in :attr:`classes`)."""
        return self._labels

    @property
    def classes(self) -> np.ndarray:
        """Label values the indices refer to."""
        return self._classes

    def __len__(self) -> int:
        return len(self._samples)

    def subset(self, indices) -> list:
        indices = np.asarray(indices)
        return [self._samples[i] for i in indices]

    # -- splits ------------------------------------------------------------------
    def design_split(self, test_fraction: float = 0.2, seed: int = 0) -> Split:
        """In-distribution random split (the paper's design-time setting)."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        n_test = max(1, int(round(len(self) * test_fraction)))
        return Split(
            train=order[n_test:],
            test=order[:n_test],
            description=f"design-time random split ({test_fraction:.0%} test)",
        )

    @abc.abstractmethod
    def drift_split(self, **kwargs) -> Split:
        """The deployment-drift split (held-out suite / family / era / net)."""

    # -- performance accounting -----------------------------------------------------
    @abc.abstractmethod
    def performance_ratio(self, index: int, label_index: int) -> float:
        """Performance-to-oracle of predicting ``label_index`` for sample
        ``index`` (1.0 = matches the oracle).  Classification-accuracy
        tasks return 1.0 for a correct label and 0.0 otherwise."""

    def performance_ratios(self, indices, label_indices) -> np.ndarray:
        """Vectorized :meth:`performance_ratio`."""
        return np.asarray(
            [
                self.performance_ratio(int(i), int(label))
                for i, label in zip(np.asarray(indices), np.asarray(label_indices))
            ]
        )

    def misprediction_mask(
        self, indices, label_indices, threshold: float = 0.2
    ) -> np.ndarray:
        """Paper Sec. 6.6: a prediction 20%+ below the oracle is wrong."""
        ratios = self.performance_ratios(indices, label_indices)
        return ratios < (1.0 - threshold)
