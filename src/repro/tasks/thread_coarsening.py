"""Case study C1: OpenCL GPU thread coarsening (paper Sec. 6.1).

Predict the best coarsening factor (1..32) for a kernel on a given GPU.
Training uses kernels from two benchmark suites; deployment drift tests
on the held-out third suite, exactly as the paper's protocol.
"""

from __future__ import annotations

import numpy as np

from ..lang.kernels import COARSENING_SUITES, KernelDataset, render_kernel_source
from ..lang.graphs import build_program_graph
from ..lang.tokens import CodeVocabulary
from ..models.base import ProgramSample
from ..models.catalog import TOKEN_LEN
from ..simulators import gpu
from .base import CaseStudy, Split


class ThreadCoarseningTask(CaseStudy):
    """Thread-coarsening factor prediction on one GPU platform.

    Args:
        gpu_name: one of :data:`repro.simulators.gpu.GPU_NAMES`.
        kernels_per_suite: corpus size per suite (paper: 17 kernels
            total; we default to more so the split CP calibration has
            material to work with).
        seed: generation seed.
    """

    name = "thread_coarsening"

    def __init__(
        self,
        gpu_name: str = "amd-radeon-7970",
        kernels_per_suite: int = 60,
        seed: int = 0,
    ):
        if gpu_name not in gpu.GPU_PLATFORMS:
            raise ValueError(f"unknown GPU {gpu_name!r}; options: {gpu.GPU_NAMES}")
        self.gpu_name = gpu_name
        self._dataset = KernelDataset.for_suites(
            COARSENING_SUITES, kernels_per_suite, seed=seed
        )
        vocabulary = CodeVocabulary()
        self._classes = np.asarray(gpu.COARSENING_FACTORS)
        factor_index = {f: i for i, f in enumerate(gpu.COARSENING_FACTORS)}

        self._samples = []
        labels = []
        self._profiles = []
        for spec in self._dataset.kernels:
            source = render_kernel_source(spec)
            self._samples.append(
                ProgramSample(
                    features=spec.feature_vector(),
                    tokens=vocabulary.encode(source, max_len=TOKEN_LEN),
                    graph=build_program_graph(source),
                    meta={"suite": spec.suite, "name": spec.name},
                )
            )
            profile = gpu.runtime_profile(spec, gpu_name)
            self._profiles.append(profile)
            labels.append(factor_index[gpu.COARSENING_FACTORS[int(np.argmin(profile))]])
        self._labels = np.asarray(labels)
        self._profiles = np.stack(self._profiles)

    def drift_split(self, held_out_suite: str = "parboil") -> Split:
        """Train on two suites, deploy on the held-out one."""
        train_idx, test_idx = self._dataset.split_by_suite(held_out_suite)
        if len(test_idx) == 0:
            raise ValueError(f"no kernels in suite {held_out_suite!r}")
        return Split(
            train=train_idx,
            test=test_idx,
            description=f"drift: held-out suite {held_out_suite}",
        )

    def performance_ratio(self, index: int, label_index: int) -> float:
        """Runtime of the chosen factor relative to the oracle's best."""
        profile = self._profiles[index]
        return float(profile.min() / profile[label_index])

    def suites(self) -> np.ndarray:
        return self._dataset.suites()
