"""Case study C5: DNN code generation cost model (paper Sec. 6.5).

Regression: predict the throughput of a candidate tensor-program
schedule.  The cost model is trained on BERT-base schedules and
deployed on the tiny/medium/large variants — the paper's Table 3
drift protocol.  Performance-to-oracle is computed per search batch:
the cost model picks the schedule it believes fastest, and the ratio
compares that schedule's true throughput against the batch's best.
"""

from __future__ import annotations

import numpy as np

from ..lang import tensor_programs
from ..simulators import tensor

NETWORKS = tuple(tensor_programs.BERT_VARIANTS)


class DnnCodeGenerationTask:
    """Schedule-throughput regression over BERT variants.

    Unlike the classification case studies this task is indexed by
    network: ``dataset(network)`` returns the token sequences, feature
    vectors and true throughputs for that network's candidate
    schedules.
    """

    name = "dnn_code_generation"

    def __init__(self, schedules_per_network: int = 400, seed: int = 0):
        self.schedules_per_network = schedules_per_network
        self.seed = seed
        self._cache = {}

    def dataset(self, network: str) -> dict:
        """Generate (or return cached) data for one BERT variant.

        Returns a dict with ``schedules``, ``tokens`` (for TLP),
        ``features`` (for classical baselines) and ``throughputs``.
        """
        if network not in tensor_programs.BERT_VARIANTS:
            raise ValueError(f"unknown network {network!r}; options: {NETWORKS}")
        if network not in self._cache:
            schedules = tensor_programs.generate_dataset(
                network, self.schedules_per_network, seed=self.seed
            )
            self._cache[network] = {
                "schedules": schedules,
                "tokens": tensor_programs.token_sequences(schedules),
                "features": tensor_programs.features(schedules),
                "throughputs": tensor.throughputs(schedules),
            }
        return self._cache[network]

    def design_data(self, test_fraction: float = 0.2, seed: int = 0) -> tuple:
        """BERT-base random split (paper: 80% train / 20% test)."""
        data = self.dataset("bert-base")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(data["throughputs"]))
        n_test = max(1, int(round(len(order) * test_fraction)))
        return order[n_test:], order[:n_test]

    @staticmethod
    def search_performance(
        predicted: np.ndarray,
        true: np.ndarray,
        batch_size: int = 20,
        seed: int = 0,
    ) -> np.ndarray:
        """Per-batch performance-to-oracle of cost-model-guided search.

        Mimics the TVM search loop: in each candidate batch the cost
        model selects its predicted-best schedule; the ratio compares
        that schedule's true throughput to the batch oracle.
        """
        predicted = np.asarray(predicted, dtype=float)
        true = np.asarray(true, dtype=float)
        if predicted.shape != true.shape:
            raise ValueError("predicted and true must align")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(true))
        ratios = []
        for start in range(0, len(order) - batch_size + 1, batch_size):
            batch = order[start : start + batch_size]
            chosen = batch[int(np.argmax(predicted[batch]))]
            ratios.append(true[chosen] / true[batch].max())
        return np.asarray(ratios)
