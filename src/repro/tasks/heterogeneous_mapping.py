"""Case study C3: heterogeneous device mapping (paper Sec. 6.3).

Binary choice: does a kernel run faster on the CPU or the GPU?
Training uses six of the seven benchmark suites; deployment drift
tests on the held-out suite, rotating until every suite is tested.
"""

from __future__ import annotations

import numpy as np

from ..lang.kernels import MAPPING_SUITES, KernelDataset, render_kernel_source
from ..lang.graphs import build_program_graph
from ..lang.tokens import CodeVocabulary
from ..models.base import ProgramSample
from ..models.catalog import TOKEN_LEN
from ..simulators import mapping
from .base import CaseStudy, Split

DEVICES = ("cpu", "gpu")


class HeterogeneousMappingTask(CaseStudy):
    """CPU/GPU mapping over kernels from seven synthetic suites."""

    name = "heterogeneous_mapping"

    def __init__(self, kernels_per_suite: int = 40, seed: int = 0):
        self._dataset = KernelDataset.for_suites(
            MAPPING_SUITES, kernels_per_suite, seed=seed
        )
        vocabulary = CodeVocabulary()
        self._classes = np.asarray(DEVICES)

        self._samples = []
        labels = []
        self._runtimes = []
        for spec in self._dataset.kernels:
            source = render_kernel_source(spec)
            self._samples.append(
                ProgramSample(
                    features=spec.feature_vector(),
                    tokens=vocabulary.encode(source, max_len=TOKEN_LEN),
                    graph=build_program_graph(source),
                    meta={"suite": spec.suite, "name": spec.name},
                )
            )
            runtimes = mapping.device_runtimes(spec)
            self._runtimes.append((runtimes["cpu"], runtimes["gpu"]))
            labels.append(DEVICES.index(mapping.best_device(spec)))
        self._labels = np.asarray(labels)
        self._runtimes = np.asarray(self._runtimes)

    def drift_split(self, held_out_suite: str = "npb") -> Split:
        """Train on six suites, deploy on the held-out one."""
        if held_out_suite not in MAPPING_SUITES:
            raise ValueError(
                f"unknown suite {held_out_suite!r}; options: {MAPPING_SUITES}"
            )
        train_idx, test_idx = self._dataset.split_by_suite(held_out_suite)
        return Split(
            train=train_idx,
            test=test_idx,
            description=f"drift: held-out suite {held_out_suite}",
        )

    def performance_ratio(self, index: int, label_index: int) -> float:
        """Runtime of the chosen device relative to the faster one."""
        cpu_time, gpu_time = self._runtimes[index]
        chosen = (cpu_time, gpu_time)[label_index]
        return float(min(cpu_time, gpu_time) / chosen)

    def suites(self) -> np.ndarray:
        return self._dataset.suites()
