"""Case study C2: loop vectorization (paper Sec. 6.2).

Predict the best (VF, IF) configuration out of the 35 combinations for
each vectorizable loop.  Training uses 14 of the 18 loop families;
deployment drift tests on the 4 held-out families.
"""

from __future__ import annotations

import numpy as np

from ..lang.loops import (
    CONFIGURATIONS,
    FAMILY_NAMES,
    LoopDataset,
    render_loop_source,
)
from ..lang.graphs import build_program_graph
from ..lang.tokens import CodeVocabulary
from ..models.base import ProgramSample
from ..models.catalog import TOKEN_LEN
from ..simulators import vectorization
from .base import CaseStudy, Split

#: families the paper-style drift split holds out (4 of 18)
DEFAULT_HELD_OUT = ("s141_gather", "s211_dep", "s321_cond_sum", "s421_stencil")


class LoopVectorizationTask(CaseStudy):
    """(VF, IF) prediction over synthetic loop variants.

    Labels are indices into the observed configuration set: only
    configurations that are optimal for at least one loop become
    classes (real datasets behave the same way — most of the 35
    combinations are never optimal).
    """

    name = "loop_vectorization"

    def __init__(self, n_loops: int = 600, seed: int = 0):
        self._dataset = LoopDataset.generate(n_loops, seed=seed)
        vocabulary = CodeVocabulary()

        profiles = []
        best_configs = []
        for spec in self._dataset.loops:
            profile = vectorization.runtime_profile(spec)
            profiles.append(profile)
            best_configs.append(CONFIGURATIONS[int(np.argmin(profile))])
        self._profiles = np.stack(profiles)

        observed = sorted(set(best_configs))
        self._classes = np.asarray([f"vf{vf}-if{il}" for vf, il in observed])
        self._class_configs = observed
        config_index = {config: i for i, config in enumerate(observed)}
        self._labels = np.asarray([config_index[c] for c in best_configs])

        self._samples = []
        for spec in self._dataset.loops:
            source = render_loop_source(spec)
            self._samples.append(
                ProgramSample(
                    features=spec.feature_vector(),
                    tokens=vocabulary.encode(source, max_len=TOKEN_LEN),
                    graph=build_program_graph(source),
                    meta={"family": spec.family, "name": spec.name},
                )
            )

    def drift_split(self, held_out_families=DEFAULT_HELD_OUT) -> Split:
        """Train on 14 families, deploy on the 4 held-out ones."""
        unknown = set(held_out_families) - set(FAMILY_NAMES)
        if unknown:
            raise ValueError(f"unknown loop families: {sorted(unknown)}")
        train_idx, test_idx = self._dataset.split_by_family(held_out_families)
        return Split(
            train=train_idx,
            test=test_idx,
            description=f"drift: held-out families {', '.join(held_out_families)}",
        )

    def performance_ratio(self, index: int, label_index: int) -> float:
        """Runtime of the chosen (VF, IF) relative to the oracle's best."""
        vf, interleave = self._class_configs[label_index]
        profile = self._profiles[index]
        chosen = profile[CONFIGURATIONS.index((vf, interleave))]
        return float(profile.min() / chosen)

    def families(self) -> np.ndarray:
        return self._dataset.families()
