"""Experiment harness: end-to-end runs behind every table and figure.

Each function reproduces one experimental protocol from the paper:

* :func:`run_classification` — train on the drift split, calibrate
  Prom, deploy on the held-out side; also measures the design-time
  (random-split) reference.  Feeds Figures 7 and 8 and Table 2.
* :func:`run_incremental` — adds the relabel-and-retrain round on the
  flagged samples.  Feeds Figure 9 and Table 2/3.
* :func:`run_regression` — the C5 protocol: TLP trained on BERT-base,
  deployed on the other variants.  Feeds Table 3 and Figure 8(e).
* :func:`run_baseline_comparison` — RISE/TESSERACT/naive-CP vs Prom.
  Feeds Figure 10.
* :func:`run_nonconformity_ablation` — each nonconformity function
  alone vs the committee.  Feeds Figure 11.
* :func:`stream_deployment` — the end-to-end serving loop (paper
  Secs. 5.3-5.4): micro-batch evaluation, drift monitoring, relabel
  budgeting, and incremental calibration/model updates over a long
  sample stream against a bounded calibration store.
"""

from __future__ import annotations

import copy
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from ..baselines import BASELINE_FACTORIES
from ..core import (
    DetectionMetrics,
    PromClassifier,
    PromRegressor,
    detection_metrics,
    drifting_indices,
    select_relabel_budget,
    split_calibration,
)
from ..core.config import (
    CheckpointConfig,
    LoopConfig,
    PruningConfig,
    ServingConfig,
    TriggerConfig,
)
from ..core.durability import CheckpointWriter, restore_checkpoint
from ..core.exceptions import CheckpointError, ConfigurationError
from ..core.multiproc import ProcessServingPool
from ..core.nonconformity import default_classification_functions
from ..core.pruning import CandidatePruner
from ..core.serving import AsyncServingLoop, JobError
from ..core.triggers import build_trigger_stack, observe_decisions
from ..models import tlp as tlp_factory
from ..tasks import DnnCodeGenerationTask
from ..tasks.base import CaseStudy, Split


@dataclass
class ClassificationResult:
    """One (task, model) run: design reference + drifted deployment."""

    task: str
    model: str
    design_ratios: np.ndarray
    deploy_ratios: np.ndarray
    design_accuracy: float
    deploy_accuracy: float
    detection: DetectionMetrics
    #: DecisionBatch (sequence of Decision) from the drift deployment
    decisions: object = field(repr=False, default_factory=list)
    mispredicted: np.ndarray = field(repr=False, default=None)
    test_indices: np.ndarray = field(repr=False, default=None)
    predicted_labels: np.ndarray = field(repr=False, default=None)
    predicted_columns: np.ndarray = field(repr=False, default=None)
    train_seconds: float = 0.0
    # fitted artefacts for follow-up experiments (incremental learning)
    fitted_model: object = field(repr=False, default=None)
    prom: PromClassifier = field(repr=False, default=None)
    calibration_indices: np.ndarray = field(repr=False, default=None)
    calibration_columns: np.ndarray = field(repr=False, default=None)


def _fit_and_detect(
    task: CaseStudy,
    model_factory,
    split: Split,
    prom_kwargs: dict,
    calibration_ratio: float,
    max_calibration: int,
    misprediction_threshold: float,
    seed: int,
):
    """Train a model on a split, calibrate Prom, assess the test side."""
    train_idx, cal_idx = split_calibration(
        split.train, calibration_ratio, max_calibration, seed
    )
    model = model_factory(seed=seed)
    started = time.perf_counter()
    model.fit(task.subset(train_idx), task.labels[train_idx])
    train_seconds = time.perf_counter() - started

    # The model only knows the classes present in its training subset;
    # its probability columns index into model.classes_ (global label
    # indices).  Calibration samples whose true label the model has
    # never seen carry no conformity information and are dropped.
    model_classes = np.asarray(model.classes_)
    column_of = {int(c): i for i, c in enumerate(model_classes)}
    cal_keep = np.asarray(
        [i for i in cal_idx if int(task.labels[i]) in column_of]
    )
    if len(cal_keep) == 0:
        raise ValueError("calibration set shares no classes with the model")
    cal_columns = np.asarray([column_of[int(task.labels[i])] for i in cal_keep])

    prom = PromClassifier(**prom_kwargs)
    cal_samples = task.subset(cal_keep)
    prom.calibrate(
        model.features(cal_samples),
        model.predict_proba(cal_samples),
        cal_columns,
    )

    test_samples = task.subset(split.test)
    probabilities = model.predict_proba(test_samples)
    predicted_columns = np.argmax(probabilities, axis=1)
    predicted = model_classes[predicted_columns]
    decisions = prom.evaluate(
        model.features(test_samples), probabilities, predicted_columns
    )

    ratios = task.performance_ratios(split.test, predicted)
    accuracy = float(np.mean(predicted == task.labels[split.test]))
    mispredicted = task.misprediction_mask(
        split.test, predicted, threshold=misprediction_threshold
    )
    return {
        "model": model,
        "prom": prom,
        "decisions": decisions,
        "ratios": ratios,
        "accuracy": accuracy,
        "mispredicted": mispredicted,
        "predicted": predicted,
        "predicted_columns": predicted_columns,
        "train_seconds": train_seconds,
        "calibration_indices": cal_keep,
        "calibration_columns": cal_columns,
    }


def run_classification(
    task: CaseStudy,
    model_factory,
    model_name: str | None = None,
    epsilon: float = 0.1,
    calibration_ratio: float = 0.2,
    max_calibration: int = 1000,
    misprediction_threshold: float = 0.2,
    prom_kwargs: dict | None = None,
    drift_kwargs: dict | None = None,
    seed: int = 0,
) -> ClassificationResult:
    """Full design-vs-deployment protocol for one (task, model) pair."""
    prom_kwargs = dict(prom_kwargs or {})
    prom_kwargs.setdefault("epsilon", epsilon)

    # Design-time reference: random split, no drift.
    design = task.design_split(seed=seed)
    design_run = _fit_and_detect(
        task, model_factory, design, prom_kwargs,
        calibration_ratio, max_calibration, misprediction_threshold, seed,
    )

    # Deployment: drift split.
    drift = task.drift_split(**(drift_kwargs or {}))
    drift_run = _fit_and_detect(
        task, model_factory, drift, prom_kwargs,
        calibration_ratio, max_calibration, misprediction_threshold, seed,
    )

    rejected = np.asarray(drift_run["decisions"].drifting)
    if drift_run["mispredicted"].any() or rejected.any():
        detection = detection_metrics(drift_run["mispredicted"], rejected)
    else:
        detection = detection_metrics(
            np.asarray([False]), np.asarray([False])
        )
    return ClassificationResult(
        task=task.name,
        model=model_name or getattr(design_run["model"], "name", "model"),
        design_ratios=design_run["ratios"],
        deploy_ratios=drift_run["ratios"],
        design_accuracy=design_run["accuracy"],
        deploy_accuracy=drift_run["accuracy"],
        detection=detection,
        decisions=drift_run["decisions"],
        mispredicted=drift_run["mispredicted"],
        test_indices=drift.test,
        predicted_labels=drift_run["predicted"],
        predicted_columns=drift_run["predicted_columns"],
        train_seconds=design_run["train_seconds"] + drift_run["train_seconds"],
        fitted_model=drift_run["model"],
        prom=drift_run["prom"],
        calibration_indices=drift_run["calibration_indices"],
        calibration_columns=drift_run["calibration_columns"],
    )


@dataclass
class IncrementalResult:
    """Before/after comparison of one incremental-learning round."""

    task: str
    model: str
    native_ratios: np.ndarray
    improved_ratios: np.ndarray
    native_accuracy: float
    improved_accuracy: float
    n_flagged: int
    n_relabelled: int
    update_seconds: float


def run_incremental(
    task: CaseStudy,
    model_factory,
    model_name: str | None = None,
    budget_fraction: float = 0.05,
    epochs: int = 25,
    base_result: ClassificationResult | None = None,
    seed: int = 0,
    **classification_kwargs,
) -> IncrementalResult:
    """Relabel flagged samples, update the model, re-measure deployment.

    Pass a precomputed ``base_result`` to reuse the trained model and
    decisions from :func:`run_classification` (the benches do this to
    avoid retraining).
    """
    if base_result is None:
        base_result = run_classification(
            task, model_factory, model_name=model_name, seed=seed,
            **classification_kwargs,
        )
    # Work on a copy so the caller's cached result stays pristine (its
    # fitted model may be reused by other experiments).
    model = copy.deepcopy(base_result.fitted_model)
    decisions = base_result.decisions
    test_indices = base_result.test_indices

    chosen_positions = select_relabel_budget(decisions, budget_fraction)
    started = time.perf_counter()
    if len(chosen_positions) > 0:
        chosen_global = test_indices[chosen_positions]
        # Models updated via partial_fit keep their class head; relabelled
        # samples with classes the model never observed cannot be folded
        # in without resizing the head, so they are skipped.
        known = set(int(c) for c in np.asarray(model.classes_))
        chosen_global = np.asarray(
            [i for i in chosen_global if int(task.labels[i]) in known]
        )
        if len(chosen_global) > 0:
            model.partial_fit(
                task.subset(chosen_global), task.labels[chosen_global], epochs=epochs
            )
    update_seconds = time.perf_counter() - started

    test_samples = task.subset(test_indices)
    probabilities = model.predict_proba(test_samples)
    predicted = np.argmax(probabilities, axis=1)
    improved_ratios = task.performance_ratios(test_indices, predicted)
    improved_accuracy = float(np.mean(predicted == task.labels[test_indices]))

    return IncrementalResult(
        task=task.name,
        model=base_result.model,
        native_ratios=base_result.deploy_ratios,
        improved_ratios=improved_ratios,
        native_accuracy=base_result.deploy_accuracy,
        improved_accuracy=improved_accuracy,
        n_flagged=len(drifting_indices(decisions)),
        n_relabelled=len(chosen_positions),
        update_seconds=update_seconds,
    )


@dataclass
class RegressionResult:
    """C5 outcome for one deployment network."""

    network: str
    native_ratio: float
    prom_ratio: float
    detection: DetectionMetrics
    #: DecisionBatch (sequence of Decision) from the deployment stream
    decisions: object = field(repr=False, default_factory=list)


def run_regression(
    dnn_task: DnnCodeGenerationTask | None = None,
    networks=("bert-tiny", "bert-medium", "bert-large"),
    epsilon: float = 0.1,
    n_clusters: int | None = 6,
    budget_fraction: float = 0.05,
    relabel_epochs: int = 8,
    misprediction_threshold: float = 0.2,
    seed: int = 0,
) -> dict:
    """The full C5 protocol (Table 3): native and Prom-assisted rows.

    Returns a dict with ``base_ratio`` (design-time BERT-base search
    quality) and one :class:`RegressionResult` per deployment network.
    """
    task = dnn_task or DnnCodeGenerationTask(schedules_per_network=300, seed=seed)
    base = task.dataset("bert-base")
    train_idx, test_idx = task.design_data(seed=seed)
    scale = float(base["throughputs"][train_idx].mean())

    model = tlp_factory(seed=seed)
    model.fit(base["tokens"][train_idx], base["throughputs"][train_idx] / scale)

    # Calibration: a slice of the base training pool.
    rng = np.random.default_rng(seed)
    cal_idx = rng.choice(train_idx, size=min(150, len(train_idx) // 2), replace=False)
    prom = PromRegressor(epsilon=epsilon, n_clusters=n_clusters, seed=seed)

    def calibrate():
        predictions = model.predict(base["tokens"][cal_idx]) * scale
        prom.calibrate(
            model.hidden_embedding(base["tokens"][cal_idx]),
            predictions,
            base["throughputs"][cal_idx],
        )

    calibrate()

    base_pred = model.predict(base["tokens"][test_idx]) * scale
    base_ratio = float(
        task.search_performance(base_pred, base["throughputs"][test_idx], seed=seed).mean()
    )

    results = {}
    for network in networks:
        data = task.dataset(network)
        predictions = model.predict(data["tokens"]) * scale
        native_ratio = float(
            task.search_performance(predictions, data["throughputs"], seed=seed).mean()
        )
        decisions = prom.evaluate(model.hidden_embedding(data["tokens"]), predictions)
        relative_error = np.abs(predictions - data["throughputs"]) / np.maximum(
            np.abs(data["throughputs"]), 1e-12
        )
        mispredicted = relative_error >= misprediction_threshold
        rejected = np.asarray(decisions.drifting)
        detection = detection_metrics(mispredicted, rejected)

        # Prom-assisted deployment: profile a small budget of flagged
        # schedules and fine-tune the cost model online.
        chosen = select_relabel_budget(decisions, budget_fraction)
        if len(chosen) > 0:
            model.partial_fit(
                data["tokens"][chosen],
                data["throughputs"][chosen] / scale,
                epochs=relabel_epochs,
            )
        improved_pred = model.predict(data["tokens"]) * scale
        prom_ratio = float(
            task.search_performance(improved_pred, data["throughputs"], seed=seed).mean()
        )
        results[network] = RegressionResult(
            network=network,
            native_ratio=native_ratio,
            prom_ratio=prom_ratio,
            detection=detection,
            decisions=decisions,
        )
    return {"base_ratio": base_ratio, "networks": results}


@dataclass(frozen=True)
class StreamStep:
    """One micro-batch of a :func:`stream_deployment` run.

    ``rejection_rate`` is the monitor's windowed rate as observed for
    this batch — on alert steps, the rate that tripped the alarm
    (captured before the post-update window reset).
    ``n_dropped_unknown`` counts relabelled samples discarded because
    their class is unknown to a fixed-head model (see
    :func:`stream_deployment`).  ``n_shards_touched`` counts the
    calibration shards this step's recalibration folded into (0 when
    nothing recalibrated; the full shard count on model updates, which
    rebuild every shard; always 0 with ``async_serving`` — the fold is
    deferred to a background worker, whose routing is not known yet).

    With ``async_serving=True`` the serving-plane fields are live:
    ``queue_depth`` is the maintenance backlog when the batch was
    served, ``snapshot_staleness`` the number of accepted maintenance
    jobs not yet reflected in the published snapshot,
    ``served_during_maintenance`` marks decisions that were served
    while a fold/recalibration/model update was mid-flight — the
    batches a synchronous loop would have stalled —
    ``n_lost_to_backpressure`` counts relabelled samples whose
    maintenance job a full queue rejected (their oracle labels never
    reached the calibration state; 0 whenever the submission was
    accepted, coalesced or applied), and ``snapshot_blocks_shared``
    reports how many calibration shards' blocks the snapshot that
    served this batch shared with its predecessor (the
    structural-sharing publish of DESIGN.md §6; 0 in single-store
    mode).

    Async accounting caveat: ``model_updated`` (and the monitor reset
    behind it) records an **accepted submission** — required for the
    drained-queue equivalence contract, where the decision had to be
    taken before the batch ended.  A job that later crashes on a
    worker surfaces only in ``StreamResult.errors`` /
    ``serving.jobs_failed``; cross-check those before trusting the
    update counters of a run with a non-empty error list (the cleared
    alert re-arms by itself as the un-updated model keeps rejecting).

    ``n_retries`` / ``n_dead_lettered`` / ``checkpoint_generations`` /
    ``last_checkpoint_ms`` are cumulative durability-plane counters as
    of this batch (DESIGN.md §7): retried and dead-lettered maintenance
    jobs (async runs with a retry policy), committed checkpoint
    generations, and the wall-clock cost of the newest one (sync runs
    checkpoint inline; async runs ride the maintenance queue).

    ``n_candidates_scored`` / ``n_shards_pruned`` are this batch's
    shard-pruning counters (DESIGN.md §9): calibration rows actually
    scored by the GEMM, and ``(test row, skipped shard)`` pairs the
    pruner excluded.  Both stay 0 unless the run evaluated
    segment-direct with a :class:`~repro.core.pruning.CandidatePruner`
    installed (``stream_deployment(..., prune=True)``).

    ``trigger_metric`` / ``trigger_threshold`` / ``trigger_detector``
    expose the trigger plane per step (DESIGN.md §11): the primary
    detector's drift metric for this batch, the effective threshold it
    was compared against (dynamic policies move it every step;
    ``threshold`` is 0 while the policy is still warming), and the
    detector's name.  ``effective_budget_fraction`` is the relabel
    budget actually used — equal to the loop's ``budget_fraction``
    unless a cost-aware budget policy raised it on a fire.
    """

    start: int
    stop: int
    n_flagged: int
    n_relabelled: int
    alert: bool
    model_updated: bool
    rejection_rate: float
    calibration_size: int
    seconds: float
    n_dropped_unknown: int = 0
    n_shards_touched: int = 0
    queue_depth: int = 0
    snapshot_staleness: int = 0
    served_during_maintenance: bool = False
    n_lost_to_backpressure: int = 0
    snapshot_blocks_shared: int = 0
    n_retries: int = 0
    n_dead_lettered: int = 0
    checkpoint_generations: int = 0
    last_checkpoint_ms: float = 0.0
    n_candidates_scored: int = 0
    n_shards_pruned: int = 0
    trigger_metric: float = 0.0
    trigger_threshold: float = 0.0
    trigger_detector: str = ""
    effective_budget_fraction: float = 0.0
    decisions: object = field(repr=False, compare=False, default=None)


@dataclass
class StreamResult:
    """Aggregate outcome of a :func:`stream_deployment` run.

    ``errors`` holds the maintenance-plane
    :class:`~repro.core.serving.JobError` records of an async run
    (worker crashes never interrupt serving — they surface here;
    checkpoint/restore failures of either mode are recorded with
    ``kind="checkpoint"``/``kind="restore"``); ``serving`` its
    :class:`~repro.core.serving.ServingStats`;
    ``n_lost_to_backpressure`` totals the relabelled samples whose
    fold/update jobs a full queue rejected.  All stay empty/zero/None
    for synchronous runs.

    ``checkpoint_generations`` counts the generations committed during
    the run (either mode, with ``checkpoint_dir``);
    ``restored_generation`` is the generation a warm restart
    (``restore_from_checkpoint=True``) resumed from (``None`` for cold
    starts) and ``restore_fallbacks`` the reasons newer generations
    were skipped over during that restore.

    ``chunk_size`` / ``prune`` / ``prune_spill`` echo the evaluate
    configuration the run was launched with (DESIGN.md §9), so result
    records are self-describing; ``n_candidates_scored`` /
    ``n_shards_pruned`` total the per-step pruning counters (0 unless
    pruned segment-direct evaluation was in effect).

    ``monitor`` is the run's drift monitor — a
    :class:`~repro.core.triggers.TriggerStack` (or the legacy-protocol
    object passed via ``LoopConfig.monitor``); ``n_trigger_fires``
    counts the steps whose trigger ensemble fired, and
    ``trigger_restored`` reports whether a warm restart recovered the
    trigger window state from the checkpoint (``False`` on cold starts
    and on restores from pre-trigger-era manifests, which re-warm
    deterministically instead; DESIGN.md §11).
    """

    steps: list = field(repr=False, default_factory=list)
    n_samples: int = 0
    n_flagged: int = 0
    n_relabelled: int = 0
    n_model_updates: int = 0
    n_dropped_unknown: int = 0
    decisions_per_second: float = 0.0
    lifetime_rejection_rate: float = 0.0
    final_calibration_size: int = 0
    n_shards: int = 1
    final_shard_sizes: tuple = ()
    monitor: object = field(repr=False, default=None)
    errors: tuple = ()
    serving: object = field(repr=False, default=None)
    n_lost_to_backpressure: int = 0
    checkpoint_generations: int = 0
    restored_generation: int | None = None
    restore_fallbacks: tuple = ()
    chunk_size: int | None = None
    prune: bool = False
    prune_spill: float = 1.0
    n_candidates_scored: int = 0
    n_shards_pruned: int = 0
    n_trigger_fires: int = 0
    trigger_restored: bool = False


#: legacy flat parameters of :func:`stream_deployment` in their
#: pre-PR 9 positional order, paired with the defaults the shim keeps
_LEGACY_PARAMS = (
    ("batch_size", 64),
    ("budget_fraction", 0.05),
    ("monitor", None),
    ("update_on_alert", True),
    ("epochs", 20),
    ("async_serving", False),
    ("serving_workers", 1),
    ("queue_capacity", 32),
    ("backpressure", "coalesce"),
    ("drain_each_step", False),
    ("record_decisions", False),
    ("checkpoint_dir", None),
    ("checkpoint_keep", 3),
    ("checkpoint_every", 1),
    ("restore_from_checkpoint", False),
    ("retry", None),
    ("chunk_size", None),
    ("prune", False),
    ("prune_spill", 1.0),
)


def _resolve_legacy(args: tuple, kwargs: dict) -> dict:
    """The legacy flat-kwarg spelling, normalized to a full value map.

    Reproduces the pre-PR 9 signature exactly — positional order,
    defaults, ``TypeError`` on unknown or duplicated names — and fires
    the one :class:`DeprecationWarning` for the call.
    """
    values = dict(_LEGACY_PARAMS)
    names = tuple(name for name, _ in _LEGACY_PARAMS)
    if len(args) > len(names):
        raise TypeError(
            "stream_deployment() takes at most "
            f"{3 + len(names)} positional arguments ({3 + len(args)} given)"
        )
    for name, value in zip(names, args):
        values[name] = value
    positional = frozenset(names[: len(args)])
    for name, value in kwargs.items():
        if name not in values:
            raise TypeError(
                "stream_deployment() got an unexpected keyword argument "
                f"{name!r}"
            )
        if name in positional:
            raise TypeError(
                f"stream_deployment() got multiple values for argument {name!r}"
            )
        values[name] = value
    warnings.warn(
        "flat stream_deployment keywords are deprecated; pass "
        "loop=LoopConfig(...), serving=ServingConfig(...), "
        "checkpointing=CheckpointConfig(...), pruning=PruningConfig(...) "
        "from repro.core.config instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return values


def _configs_from_legacy(values: dict):
    """Config objects equivalent to a legacy flat-kwarg value map."""
    loop = LoopConfig(
        batch_size=values["batch_size"],
        budget_fraction=values["budget_fraction"],
        monitor=values["monitor"],
        update_on_alert=values["update_on_alert"],
        epochs=values["epochs"],
    )
    serving = ServingConfig(
        asynchronous=values["async_serving"],
        workers=values["serving_workers"],
        queue_capacity=values["queue_capacity"],
        backpressure=values["backpressure"],
        drain_each_step=values["drain_each_step"],
        record_decisions=values["record_decisions"],
    )
    checkpointing = CheckpointConfig(
        directory=values["checkpoint_dir"],
        keep=values["checkpoint_keep"],
        every=values["checkpoint_every"],
        restore=values["restore_from_checkpoint"],
        retry=values["retry"],
    )
    pruning = PruningConfig(
        enabled=values["prune"],
        spill=values["prune_spill"],
        chunk_size=values["chunk_size"],
    )
    return loop, serving, checkpointing, pruning


def stream_deployment(
    interface,
    X_stream,
    oracle_labels,
    *legacy_args,
    loop: LoopConfig | None = None,
    serving: ServingConfig | None = None,
    checkpointing: CheckpointConfig | None = None,
    pruning: PruningConfig | None = None,
    **legacy_kwargs,
) -> StreamResult:
    """Serve a sample stream end to end: detect, relabel, recalibrate.

    The deployment loop of paper Secs. 5.3-5.4 over a trained
    :class:`~repro.core.interface.ModelInterface` (or regression
    variant).  Per micro-batch:

    1. ``interface.predict`` — batch-engine decisions for the window;
    2. the drift-trigger stack ingests the verdicts (a
       :class:`~repro.core.triggers.TriggerStack` built from
       ``loop.triggers``; the default is decision-identical to the
       legacy :class:`~repro.core.report.DriftMonitor`);
    3. :func:`~repro.core.incremental.select_relabel_budget` picks the
       lowest-credibility flagged samples, which the oracle relabels
       (a cost-aware budget policy may raise the budget on fires);
    4. the relabelled samples flow back in: a **model update**
       (``incremental_update``) when the monitor alerts — full model +
       calibration rebuild, then the window resets — otherwise an
       amortized **calibration-only** ``extend_calibration``;
    5. the bounded calibration store evicts down to
       ``max_calibration`` either way.

    Configuration arrives as four frozen config objects
    (:mod:`repro.core.config`), one per plane:

    Args:
        interface: trained model interface.
        X_stream: deployment-time inputs, consumed in arrival order.
        oracle_labels: ground truth used *only* for the relabelled
            budget (the user/profiler answering flagged queries).
        loop: :class:`~repro.core.config.LoopConfig` — batching,
            relabel budget, drift triggers
            (:class:`~repro.core.config.TriggerConfig` or a prebuilt
            monitor), update policy.
        serving: :class:`~repro.core.config.ServingConfig` — the
            serving plane.  ``asynchronous=True`` serves from an
            :class:`~repro.core.serving.AsyncServingLoop` (lock-free
            snapshot decisions, queued maintenance; worker failures
            surface in ``StreamResult.errors``); with
            ``drain_each_step=True`` the decision stream is
            bit-identical to the synchronous loop (DESIGN.md §5).  A
            :class:`~repro.core.config.ProcessPoolConfig` on
            ``serving.pool`` additionally serves decisions from a
            :class:`~repro.core.multiproc.ProcessServingPool` —
            evaluator *processes* attached to shared-memory segments,
            republished on every snapshot publish (DESIGN.md §10).
        checkpointing: :class:`~repro.core.config.CheckpointConfig` —
            incremental durability through a
            :class:`~repro.core.durability.CheckpointWriter` plus warm
            restart (DESIGN.md §7).  Checkpoint/restore failures are
            recorded in ``StreamResult.errors``; serving is never
            interrupted.
        pruning: :class:`~repro.core.config.PruningConfig` —
            router-aware shard pruning and evaluate-kernel chunking
            (DESIGN.md §9); ``spill=1.0`` keeps decisions
            bit-identical to the unpruned path.

    Sharding note: with an interface built over a sharded calibration
    runtime (``n_shards > 1``), step 4's calibration work routes
    through the shard layer — an ``extend_calibration`` batch folds
    only into the shards it touches, and every :class:`StreamStep`
    records ``n_shards_touched`` so shard churn is observable per
    batch.

    Deprecated spelling: the pre-PR 9 flat keywords (``batch_size=``,
    ``async_serving=``, ``checkpoint_dir=``, ``prune=``, …) are still
    accepted — they map onto the config objects behind a
    :class:`DeprecationWarning` and produce bit-identical runs.  Mixing
    the two spellings in one call raises
    :class:`~repro.core.exceptions.ConfigurationError`.
    """
    config_spelling = (
        loop is not None
        or serving is not None
        or checkpointing is not None
        or pruning is not None
    )
    if legacy_args or legacy_kwargs:
        if config_spelling:
            raise ConfigurationError(
                "stream_deployment() mixes legacy flat keywords with config "
                "objects; pass loop=/serving=/checkpointing=/pruning= only"
            )
        loop, serving, checkpointing, pruning = _configs_from_legacy(
            _resolve_legacy(legacy_args, legacy_kwargs)
        )
    return _stream_deployment_impl(
        interface,
        X_stream,
        oracle_labels,
        loop if loop is not None else LoopConfig(),
        serving if serving is not None else ServingConfig(asynchronous=False),
        checkpointing if checkpointing is not None else CheckpointConfig(),
        pruning if pruning is not None else PruningConfig(enabled=False),
    )


def _stream_deployment_impl(
    interface,
    X_stream,
    oracle_labels,
    loop_config: LoopConfig,
    serving_config: ServingConfig,
    checkpoint_config: CheckpointConfig,
    pruning_config: PruningConfig,
) -> StreamResult:
    """The deployment loop proper, over resolved config objects.

    Both public spellings of :func:`stream_deployment` land here, so
    legacy and config calls are trivially bit-identical.
    """
    batch_size = loop_config.batch_size
    budget_fraction = loop_config.budget_fraction
    update_on_alert = loop_config.update_on_alert
    epochs = loop_config.epochs
    async_serving = serving_config.asynchronous
    serving_workers = serving_config.workers
    queue_capacity = serving_config.queue_capacity
    backpressure = serving_config.backpressure
    drain_each_step = serving_config.drain_each_step
    record_decisions = serving_config.record_decisions
    pool_config = serving_config.pool
    checkpoint_dir = checkpoint_config.directory
    checkpoint_keep = checkpoint_config.keep
    checkpoint_every = checkpoint_config.every
    restore_from_checkpoint = checkpoint_config.restore
    retry = checkpoint_config.retry
    chunk_size = pruning_config.chunk_size
    prune = pruning_config.enabled
    prune_spill = pruning_config.spill
    if pool_config is not None and not async_serving:
        raise ConfigurationError(
            "ServingConfig.pool needs asynchronous=True: the process tier is "
            "published to by the async loop (use repro.serve for a "
            "stand-alone pool)"
        )
    X_stream = np.asarray(X_stream)
    oracle_labels = np.asarray(oracle_labels)
    if len(X_stream) != len(oracle_labels):
        raise ValueError("X_stream and oracle_labels must align")
    if loop_config.monitor is not None:
        monitor = loop_config.monitor
    else:
        streaming = getattr(interface, "streaming", None)
        monitor = build_trigger_stack(
            loop_config.triggers or TriggerConfig(),
            router=getattr(getattr(streaming, "store", None), "router", None),
            n_shards=getattr(streaming, "n_shards", 1),
            featurizer=getattr(interface, "feature_extraction", None),
        )
    # the durability plane checkpoints/restores trigger state alongside
    # the calibration shards when the monitor supports it (DESIGN.md §11)
    trigger_target = monitor if hasattr(monitor, "state_dict") else None
    writer = None
    restore_errors = []
    restored_generation = None
    restore_fallbacks = ()
    trigger_restored = False
    if checkpoint_dir is not None:
        writer = CheckpointWriter(
            checkpoint_dir, keep=checkpoint_keep, triggers=trigger_target
        )
        if restore_from_checkpoint and writer.latest_generation is not None:
            try:
                report = restore_checkpoint(
                    interface.streaming, checkpoint_dir, triggers=trigger_target
                )
            except CheckpointError as err:
                # Restart must never block on bad state: record the
                # reason and continue from the interface's own (cold)
                # calibration.
                restore_errors.append(
                    JobError(
                        kind="restore",
                        error=f"CheckpointError: {err}",
                        traceback="",
                    )
                )
            else:
                restored_generation = report.generation
                restore_fallbacks = report.fallbacks
                trigger_restored = report.trigger_restored
    prom = getattr(interface, "prom", None)
    if prom is not None:
        if chunk_size is not None:
            prom._chunk_size = chunk_size
        if prune:
            # Snapshot proms are shallow copies of this one, so the
            # pruner (and chunk size) ride along into every published
            # generation.
            router = getattr(
                getattr(getattr(interface, "streaming", None), "store", None),
                "router",
                None,
            )
            prom._pruner = CandidatePruner(router=router, spill=prune_spill)
    loop = None
    pool = None
    sync_checkpoint_state = {"since": 0, "generations": 0, "last_ms": 0.0}
    if async_serving:
        if pool_config is not None:
            # Created before the loop so the loop can re-home its
            # process counters and publish into its name table; the
            # pool constructor publishes the initial calibration state
            # itself, so workers can serve before the first snapshot.
            pool = ProcessServingPool(
                interface,
                n_workers=pool_config.workers,
                start_method=pool_config.start_method,
                table_capacity=pool_config.table_capacity,
            )
        loop = AsyncServingLoop(
            interface,
            n_workers=serving_workers,
            queue_capacity=queue_capacity,
            backpressure=backpressure,
            retry=retry,
            checkpoint=writer,
            checkpoint_every=checkpoint_every,
            process_pool=pool,
        )

    def _sync_checkpoint(mutated: bool) -> None:
        """Inline checkpoint cadence for the synchronous loop."""
        if writer is None or loop is not None or not mutated:
            return
        sync_checkpoint_state["since"] += 1
        if sync_checkpoint_state["since"] < checkpoint_every:
            return
        sync_checkpoint_state["since"] = 0
        started = time.perf_counter()
        try:
            writer.checkpoint(interface.streaming)
        except Exception as err:  # noqa: BLE001 — serving must continue
            restore_errors.append(
                JobError(
                    kind="checkpoint",
                    error=f"{type(err).__name__}: {err}",
                    traceback="",
                )
            )
        else:
            sync_checkpoint_state["generations"] += 1
            sync_checkpoint_state["last_ms"] = (
                (time.perf_counter() - started) * 1000.0
            )

    def known_classes():
        if not hasattr(interface.model, "classes_"):
            return None
        return set(np.asarray(interface.model.classes_).tolist())

    steps = []
    n_flagged_total = 0
    n_relabelled_total = 0
    n_dropped_total = 0
    n_lost_total = 0
    n_model_updates = 0
    scored_total = 0
    pruned_total = 0
    total_shards = getattr(getattr(interface, "streaming", None), "n_shards", 1)
    stream_started = time.perf_counter()
    try:
        for start in range(0, len(X_stream), batch_size):
            stop = min(len(X_stream), start + batch_size)
            batch_started = time.perf_counter()
            if loop is not None:
                queue_depth = loop.queue_depth
                staleness = loop.staleness
                during_maintenance = loop.maintenance_active
                blocks_shared = loop.snapshot.blocks_shared
                if pool is not None:
                    predictions, decisions = pool.predict(X_stream[start:stop])
                else:
                    predictions, decisions = loop.predict(X_stream[start:stop])
            else:
                queue_depth = staleness = 0
                during_maintenance = False
                blocks_shared = 0
                predictions, decisions = interface.predict(X_stream[start:stop])
            step_scored = getattr(decisions, "n_candidates_scored", None) or 0
            step_pruned = getattr(decisions, "n_shards_pruned", None) or 0
            scored_total += step_scored
            pruned_total += step_pruned
            # raw inputs + predicted labels carry the routing context
            # per-shard trigger stacks key on (ignored by global stacks
            # and legacy monitors)
            alert = observe_decisions(
                monitor,
                decisions,
                raw=X_stream[start:stop],
                labels=predictions,
            )
            # captured before any post-update reset clears the window
            window_rate = monitor.rejection_rate
            trigger_decision = getattr(monitor, "last_decision", None)
            effective_budget = (
                monitor.relabel_budget(budget_fraction)
                if hasattr(monitor, "relabel_budget")
                else budget_fraction
            )
            chosen = select_relabel_budget(decisions, effective_budget)
            updating_model = alert or not update_on_alert
            # In-place model updates keep their class head, and
            # calibration-only extensions score against the current head,
            # so relabelled samples of never-observed classes cannot be
            # folded in on those paths.  A model update that can grow its
            # head (interface.learns_new_classes) keeps them.
            learns_new_classes = updating_model and getattr(
                interface, "learns_new_classes", False
            )
            classes = known_classes()
            n_dropped = 0
            if classes is not None and not learns_new_classes and len(chosen):
                kept = np.asarray(
                    [i for i in chosen if oracle_labels[start + i].item() in classes],
                    dtype=int,
                )
                n_dropped = len(chosen) - len(kept)
                chosen = kept
            model_updated = False
            n_shards_touched = 0
            n_lost = 0
            if len(chosen):
                X_chosen = X_stream[start + chosen]
                y_chosen = oracle_labels[start + chosen]
                if updating_model:
                    if loop is not None:
                        accepted = loop.submit_model_update(
                            X_chosen, y_chosen, epochs=epochs
                        )
                    else:
                        interface.incremental_update(
                            X_chosen, y_chosen, epochs=epochs
                        )
                        accepted = True
                        # a model update rebuilds the calibration state
                        # of every shard
                        n_shards_touched = total_shards
                    if accepted:
                        monitor.reset()
                        model_updated = True
                        n_model_updates += 1
                    else:
                        # full queue rejected the update: the batch is
                        # lost and the un-reset monitor will re-alert
                        n_lost = len(chosen)
                else:
                    if loop is not None:
                        if not loop.submit_fold(X_chosen, y_chosen):
                            n_lost = len(chosen)
                    else:
                        cal_update = interface.extend_calibration(
                            X_chosen, y_chosen
                        )
                        touched = getattr(cal_update, "touched", None)
                        n_shards_touched = (
                            len(touched) if touched is not None else 1
                        )
            _sync_checkpoint(len(chosen) > 0)
            if loop is not None and drain_each_step:
                loop.drain()
                if pool is not None:
                    # workers re-attach the table the drain published,
                    # so the next batch sees the post-maintenance state
                    pool.sync()
            n_flagged = len(drifting_indices(decisions))
            n_flagged_total += n_flagged
            n_relabelled_total += len(chosen)
            n_dropped_total += n_dropped
            n_lost_total += n_lost
            if loop is not None:
                step_retries = loop.stats.n_retries
                step_dead = loop.stats.n_dead_lettered
                step_generations = loop.stats.checkpoint_generations
                step_checkpoint_ms = loop.stats.last_checkpoint_ms
            else:
                step_retries = step_dead = 0
                step_generations = sync_checkpoint_state["generations"]
                step_checkpoint_ms = sync_checkpoint_state["last_ms"]
            steps.append(
                StreamStep(
                    start=start,
                    stop=stop,
                    n_flagged=n_flagged,
                    n_relabelled=len(chosen),
                    alert=alert,
                    model_updated=model_updated,
                    rejection_rate=window_rate,
                    calibration_size=(
                        interface.calibration_size
                        if loop is None or drain_each_step
                        else loop.snapshot.calibration_size
                    ),
                    seconds=time.perf_counter() - batch_started,
                    n_dropped_unknown=n_dropped,
                    n_shards_touched=n_shards_touched,
                    queue_depth=queue_depth,
                    snapshot_staleness=staleness,
                    served_during_maintenance=during_maintenance,
                    n_lost_to_backpressure=n_lost,
                    snapshot_blocks_shared=blocks_shared,
                    n_retries=step_retries,
                    n_dead_lettered=step_dead,
                    checkpoint_generations=step_generations,
                    last_checkpoint_ms=step_checkpoint_ms,
                    n_candidates_scored=step_scored,
                    n_shards_pruned=step_pruned,
                    trigger_metric=(
                        trigger_decision.metric
                        if trigger_decision is not None
                        else 0.0
                    ),
                    trigger_threshold=(
                        trigger_decision.threshold
                        if trigger_decision is not None
                        and np.isfinite(trigger_decision.threshold)
                        else 0.0
                    ),
                    trigger_detector=(
                        trigger_decision.detector
                        if trigger_decision is not None
                        else ""
                    ),
                    effective_budget_fraction=effective_budget,
                    decisions=decisions if record_decisions else None,
                )
            )
        if loop is not None:
            loop.drain()
            if pool is not None:
                pool.sync()
    finally:
        if loop is not None:
            loop.close(drain=False)
        if pool is not None:
            pool.close()
    elapsed = time.perf_counter() - stream_started
    errors = tuple(restore_errors)
    if loop is not None:
        errors += tuple(loop.errors)
    total_generations = (
        loop.stats.checkpoint_generations
        if loop is not None
        else sync_checkpoint_state["generations"]
    )
    return StreamResult(
        steps=steps,
        n_samples=len(X_stream),
        n_flagged=n_flagged_total,
        n_relabelled=n_relabelled_total,
        n_model_updates=n_model_updates,
        n_dropped_unknown=n_dropped_total,
        decisions_per_second=len(X_stream) / elapsed if elapsed > 0 else 0.0,
        lifetime_rejection_rate=monitor.lifetime_rejection_rate,
        final_calibration_size=interface.calibration_size,
        n_shards=getattr(getattr(interface, "streaming", None), "n_shards", 1),
        final_shard_sizes=tuple(getattr(interface, "shard_sizes", ())),
        monitor=monitor,
        errors=errors,
        serving=loop.stats if loop is not None else None,
        n_lost_to_backpressure=n_lost_total,
        checkpoint_generations=total_generations,
        restored_generation=restored_generation,
        restore_fallbacks=restore_fallbacks,
        chunk_size=chunk_size,
        prune=prune,
        prune_spill=prune_spill,
        n_candidates_scored=scored_total,
        n_shards_pruned=pruned_total,
        n_trigger_fires=sum(1 for step in steps if step.alert),
        trigger_restored=trigger_restored,
    )


def run_baseline_comparison(
    task: CaseStudy,
    model_factory=None,
    epsilon: float = 0.1,
    seed: int = 0,
    drift_kwargs: dict | None = None,
    misprediction_threshold: float = 0.2,
    base_result: ClassificationResult | None = None,
) -> dict:
    """F1 of each comparator detector plus Prom on one (task, model).

    Pass ``base_result`` to reuse a previous :func:`run_classification`
    outcome instead of retraining.
    """
    result = base_result or run_classification(
        task,
        model_factory,
        epsilon=epsilon,
        seed=seed,
        drift_kwargs=drift_kwargs,
        misprediction_threshold=misprediction_threshold,
    )
    model = result.fitted_model
    cal_samples = task.subset(result.calibration_indices)
    cal_features = model.features(cal_samples)
    cal_probabilities = model.predict_proba(cal_samples)

    test_samples = task.subset(result.test_indices)
    test_features = model.features(test_samples)
    test_probabilities = model.predict_proba(test_samples)

    scores = {"PROM": result.detection.f1}
    for name, factory in BASELINE_FACTORIES.items():
        detector = factory()
        detector.calibrate(cal_features, cal_probabilities, result.calibration_columns)
        rejected = detector.evaluate(
            test_features, test_probabilities, result.predicted_columns
        )
        scores[name] = detection_metrics(result.mispredicted, rejected).f1
    return scores


def reevaluate_with_prom(
    task: CaseStudy,
    base_result: ClassificationResult,
    prom_kwargs: dict,
) -> DetectionMetrics:
    """Re-run only the Prom stage of a finished classification run.

    Reuses the fitted model, calibration indices and test predictions
    from ``base_result`` — calibrating a fresh detector with
    ``prom_kwargs`` and scoring its decisions.  This is how the
    ablation benches sweep Prom configurations without retraining the
    underlying model.
    """
    model = base_result.fitted_model
    cal_samples = task.subset(base_result.calibration_indices)
    prom = PromClassifier(**prom_kwargs)
    prom.calibrate(
        model.features(cal_samples),
        model.predict_proba(cal_samples),
        base_result.calibration_columns,
    )
    test_samples = task.subset(base_result.test_indices)
    decisions = prom.evaluate(
        model.features(test_samples),
        model.predict_proba(test_samples),
        base_result.predicted_columns,
    )
    rejected = np.asarray(decisions.drifting)
    return detection_metrics(base_result.mispredicted, rejected)


def run_nonconformity_ablation(
    task: CaseStudy,
    model_factory=None,
    epsilon: float = 0.1,
    seed: int = 0,
    drift_kwargs: dict | None = None,
    misprediction_threshold: float = 0.2,
    base_result: ClassificationResult | None = None,
) -> dict:
    """Detection metrics of each single function vs the full committee.

    The underlying model is trained once (or reused from
    ``base_result``); only the detector configuration varies.
    """
    result = base_result or run_classification(
        task,
        model_factory,
        epsilon=epsilon,
        seed=seed,
        drift_kwargs=drift_kwargs,
        misprediction_threshold=misprediction_threshold,
    )
    outcomes = {}
    for function in default_classification_functions():
        outcomes[function.name] = reevaluate_with_prom(
            task, result, {"functions": [function], "epsilon": epsilon}
        )
    outcomes["PROM"] = result.detection
    return outcomes
