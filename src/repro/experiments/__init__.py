"""Experiment harness: runners and table/figure renderers."""

from .figures import (
    distribution_summary,
    figure7_drift_impact,
    figure8_detection,
    figure9_incremental,
    figure10_comparison,
    figure11_nonconformity,
    figure12_overhead,
    figure13_sensitivity,
)
from .runner import (
    ClassificationResult,
    IncrementalResult,
    RegressionResult,
    StreamResult,
    StreamStep,
    reevaluate_with_prom,
    run_baseline_comparison,
    run_classification,
    run_incremental,
    run_nonconformity_ablation,
    run_regression,
    stream_deployment,
)
from .tables import detection_table, format_table, table2_summary, table3_dnn_codegen

__all__ = [
    "ClassificationResult",
    "IncrementalResult",
    "RegressionResult",
    "StreamResult",
    "StreamStep",
    "detection_table",
    "distribution_summary",
    "figure10_comparison",
    "figure11_nonconformity",
    "figure12_overhead",
    "figure13_sensitivity",
    "figure7_drift_impact",
    "figure8_detection",
    "figure9_incremental",
    "format_table",
    "reevaluate_with_prom",
    "run_baseline_comparison",
    "run_classification",
    "run_incremental",
    "run_nonconformity_ablation",
    "run_regression",
    "stream_deployment",
    "table2_summary",
    "table3_dnn_codegen",
]
