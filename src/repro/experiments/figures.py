"""Plain-text rendering of the paper's figures.

Each helper turns experiment outputs into the series/rows the figure
plots, rendered as aligned text (the artifact's scripts print the same
numbers the figures visualize).
"""

from __future__ import annotations

import numpy as np

from .tables import format_table


def distribution_summary(values) -> dict:
    """Violin-plot summary: min/quartiles/median/max of a distribution."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        raise ValueError("empty distribution")
    return {
        "min": float(values.min()),
        "q1": float(np.percentile(values, 25)),
        "median": float(np.median(values)),
        "q3": float(np.percentile(values, 75)),
        "max": float(values.max()),
        "mean": float(values.mean()),
    }


def violin_row(label: str, values) -> list:
    stats = distribution_summary(values)
    return [
        label,
        f"{stats['min']:.2f}",
        f"{stats['q1']:.2f}",
        f"{stats['median']:.2f}",
        f"{stats['q3']:.2f}",
        f"{stats['max']:.2f}",
        f"{stats['mean']:.2f}",
    ]


VIOLIN_HEADERS = ["Series", "min", "q1", "median", "q3", "max", "mean"]


def figure7_drift_impact(results) -> str:
    """Figure 7: design-time vs deployment performance distributions."""
    rows = []
    for result in results:
        rows.append(violin_row(f"{result.task}/{result.model} design", result.design_ratios))
        rows.append(violin_row(f"{result.task}/{result.model} deploy", result.deploy_ratios))
    return format_table(
        VIOLIN_HEADERS, rows, title="Figure 7: impact of drifting data"
    )


def figure8_detection(results) -> str:
    """Figure 8: Prom's detection metrics per case study and model."""
    rows = [
        [
            f"{r.task}/{r.model}",
            f"{r.detection.accuracy:.3f}",
            f"{r.detection.precision:.3f}",
            f"{r.detection.recall:.3f}",
            f"{r.detection.f1:.3f}",
        ]
        for r in results
    ]
    return format_table(
        ["Series", "Accuracy", "Precision", "Recall", "F1"],
        rows,
        title="Figure 8: detecting drifting samples",
    )


def figure9_incremental(results) -> str:
    """Figure 9: native vs Prom-assisted deployment distributions."""
    rows = []
    for result in results:
        rows.append(violin_row(f"{result.task}/{result.model} native", result.native_ratios))
        rows.append(
            violin_row(f"{result.task}/{result.model} +PROM", result.improved_ratios)
        )
    return format_table(
        VIOLIN_HEADERS, rows, title="Figure 9: incremental learning"
    )


def figure10_comparison(per_task_scores) -> str:
    """Figure 10: F1 of RISE / TESSERACT / naive CP / Prom per case study.

    Args:
        per_task_scores: mapping task name -> {detector: f1}.
    """
    detectors = ["RISE", "TESSERACT", "MAPIE-PUNCC", "PROM"]
    rows = []
    for task, scores in per_task_scores.items():
        rows.append([task] + [f"{scores.get(d, float('nan')):.3f}" for d in detectors])
    return format_table(
        ["Case study"] + detectors,
        rows,
        title="Figure 10: F1 vs prior CP-based detectors",
    )


def figure11_nonconformity(per_task_outcomes) -> str:
    """Figure 11: individual nonconformity functions vs the committee."""
    functions = ["LAC", "TopK", "APS", "RAPS", "PROM"]
    rows = []
    for task, outcomes in per_task_outcomes.items():
        for metric in ("accuracy", "precision", "recall", "f1"):
            rows.append(
                [f"{task} {metric}"]
                + [
                    f"{getattr(outcomes[f], metric):.3f}" if f in outcomes else "-"
                    for f in functions
                ]
            )
    return format_table(
        ["Series"] + functions,
        rows,
        title="Figure 11: individual nonconformity functions",
    )


def figure12_overhead(rows) -> str:
    """Figure 12: training vs incremental-learning wall-clock seconds.

    Args:
        rows: list of (case study, initial seconds, incremental seconds).
    """
    formatted = [
        [task, f"{initial:.2f}s", f"{incremental:.2f}s"]
        for task, initial, incremental in rows
    ]
    return format_table(
        ["Case study", "Initial training", "Incremental learning"],
        formatted,
        title="Figure 12: training overhead",
    )


def figure13_sensitivity(series: dict, title: str) -> str:
    """Figure 13 panels: metric values over a swept parameter.

    Args:
        series: mapping series name -> list of (x, value) pairs.
    """
    xs = sorted({x for points in series.values() for x, _ in points})
    rows = []
    for name, points in series.items():
        lookup = dict(points)
        rows.append(
            [name] + [f"{lookup[x]:.3f}" if x in lookup else "-" for x in xs]
        )
    return format_table(["Series"] + [str(x) for x in xs], rows, title=title)
