"""Plain-text rendering of result tables (paper Tables 2 and 3)."""

from __future__ import annotations

import numpy as np


def format_table(headers, rows, title: str = "") -> str:
    """Render an aligned plain-text table."""
    headers = [str(h) for h in headers]
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table2_summary(classification_results, regression_summary=None) -> str:
    """Paper Table 2: cross-case-study averages.

    Args:
        classification_results: list of
            :class:`~repro.experiments.runner.ClassificationResult`.
        regression_summary: optional output of ``run_regression`` to
            fold C5's detection metrics into the averages.
    """
    if not classification_results:
        raise ValueError("need at least one classification result")
    design = float(np.mean([r.design_ratios.mean() for r in classification_results]))
    deploy = float(np.mean([r.deploy_ratios.mean() for r in classification_results]))

    detections = [r.detection for r in classification_results]
    if regression_summary is not None:
        detections.extend(
            result.detection for result in regression_summary["networks"].values()
        )
    accuracy = float(np.mean([d.accuracy for d in detections]))
    precision = float(np.mean([d.precision for d in detections]))
    recall = float(np.mean([d.recall for d in detections]))
    f1 = float(np.mean([d.f1 for d in detections]))

    return format_table(
        ["Perf-to-Oracle (train)", "Perf (deploy)", "Acc.", "Pre.", "Recall", "F1"],
        [[
            f"{design:.3f}",
            f"{deploy:.3f}",
            f"{accuracy:.1%}",
            f"{precision:.1%}",
            f"{recall:.1%}",
            f"{f1:.1%}",
        ]],
        title="Table 2: Summary of main evaluation results",
    )


def table3_dnn_codegen(regression_summary) -> str:
    """Paper Table 3: C5 native vs Prom-assisted deployment."""
    networks = regression_summary["networks"]
    headers = ["Network", "bert-base"] + list(networks)
    native = ["Native deployment", f"{regression_summary['base_ratio']:.3f}"]
    assisted = ["Prom assisted", "/"]
    for name, result in networks.items():
        native.append(f"{result.native_ratio:.3f}")
        assisted.append(f"{result.prom_ratio:.3f}")
    return format_table(
        headers,
        [native, assisted],
        title="Table 3: DNN code generation (performance-to-oracle ratio)",
    )


def detection_table(results) -> str:
    """Per-(task, model) drift-detection metrics (Figure 8 as a table)."""
    rows = [
        [
            r.task,
            r.model,
            f"{r.detection.accuracy:.3f}",
            f"{r.detection.precision:.3f}",
            f"{r.detection.recall:.3f}",
            f"{r.detection.f1:.3f}",
        ]
        for r in results
    ]
    return format_table(
        ["Case study", "Model", "Accuracy", "Precision", "Recall", "F1"],
        rows,
        title="Prom drift-detection performance",
    )
