"""Rule protocol, findings, and the promlint rule registry.

A rule is a class with a stable id (``PL###``), a one-line title, and a
``check(context)`` method returning :class:`Finding` records.  Rules are
registered by the :func:`register` decorator at import time and resolved
by id through :func:`resolve_rules`, so the configured rule set
(``[tool.promlint] select`` in ``pyproject.toml``) is just a list of
ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to ``path:line:col``.

    Sort order is (path, line, col, rule_id) so reports read in file
    order; ``render()`` is the canonical one-line text form that the
    text reporter and the fixture tests share.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str = field(compare=False)

    def render(self) -> str:
        """The canonical ``path:line:col: PL### message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class Rule:
    """Base class for promlint rules.

    Subclasses set :attr:`rule_id`, :attr:`title`, :attr:`rationale`
    (the invariant the rule protects, surfaced by ``--list-rules``) and
    :attr:`core_only` (whether the rule applies only to files under a
    ``core`` directory — the checkpoint-covered runtime), and implement
    :meth:`check`.
    """

    rule_id = "PL000"
    title = ""
    rationale = ""
    core_only = False

    def check(self, context) -> list:
        """Return the rule's :class:`Finding` list for one parsed file.

        ``context`` is an :class:`~repro.analysis.visitor.FileContext`
        carrying the AST, the path, and shared import-alias maps.
        """
        raise NotImplementedError

    def finding(self, context, node, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` in ``context``'s file."""
        return Finding(
            path=context.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


ALL_RULES: dict = {}


def register(cls):
    """Class decorator adding a rule to :data:`ALL_RULES` by id."""
    ALL_RULES[cls.rule_id] = cls
    return cls


def resolve_rules(select=None) -> list:
    """Instantiate the selected rules (every registered rule by default).

    ``select`` is an iterable of rule ids; unknown ids raise
    ``KeyError`` so a typo in ``pyproject.toml`` fails loudly instead of
    silently disabling a gate.
    """
    if select is None:
        ids = sorted(ALL_RULES)
    else:
        ids = list(select)
        unknown = [rule_id for rule_id in ids if rule_id not in ALL_RULES]
        if unknown:
            raise KeyError(f"unknown promlint rule ids: {unknown}")
    return [ALL_RULES[rule_id]() for rule_id in ids]
