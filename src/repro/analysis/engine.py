"""File walking, configuration, and suppression handling for promlint.

The engine turns paths into :class:`~repro.analysis.visitor.FileContext`
objects, runs the configured rules over each, and filters the findings
through the suppression comments:

* ``# promlint: disable=PL001`` (trailing on the flagged line, or a
  standalone comment on that physical line) suppresses the named
  rule(s) for that line only; comma-separate several ids.
* ``# promlint: disable-file=PL003`` anywhere in a file suppresses the
  rule(s) for the whole file.

Suppressed findings are retained on the result (``suppressed``) so the
reporters can show them with ``--show-suppressed`` — a suppression is an
auditable decision, not a deletion.  Configuration lives in
``pyproject.toml`` under ``[tool.promlint]`` (``select`` = rule ids,
``exclude`` = path glob fragments); parsing uses :mod:`tomllib` when the
interpreter has it (3.11+) and silently falls back to the defaults
otherwise, so the analyzer itself never gains a dependency.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from .rules import ALL_RULES, Finding, resolve_rules
from .visitor import FileContext

try:  # pragma: no cover - interpreter-version gate
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None

_SUPPRESSION = re.compile(
    r"#\s*promlint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class PromlintConfig:
    """Resolved promlint configuration (rule selection + path excludes)."""

    select: tuple = tuple(sorted(ALL_RULES))
    exclude: tuple = ()

    def excludes(self, path: Path) -> bool:
        """Whether ``path`` matches any configured exclude glob."""
        text = path.as_posix()
        return any(
            fnmatch(text, pattern) or fnmatch(text, f"*/{pattern}")
            for pattern in self.exclude
        )


def load_config(pyproject=None) -> PromlintConfig:
    """Read ``[tool.promlint]`` from ``pyproject.toml`` when possible.

    ``pyproject`` defaults to ``pyproject.toml`` in the current working
    directory.  A missing file, a missing section, or an interpreter
    without :mod:`tomllib` all yield the default configuration — the
    gate must run everywhere, including python 3.10.
    """
    path = Path(pyproject) if pyproject is not None else Path("pyproject.toml")
    if tomllib is None or not path.is_file():
        return PromlintConfig()
    with path.open("rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("promlint", {})
    kwargs = {}
    if "select" in section:
        kwargs["select"] = tuple(section["select"])
    if "exclude" in section:
        kwargs["exclude"] = tuple(section["exclude"])
    return PromlintConfig(**kwargs)


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced.

    ``findings`` are the unsuppressed violations (the gate fails on
    any); ``suppressed`` the ones silenced by a suppression comment;
    ``errors`` are files the parser rejected, reported as synthetic
    ``PL000`` findings so a syntax error can never green-wash the gate.
    """

    findings: list = field(default_factory=list)
    suppressed: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    n_files: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any unsuppressed finding or parse error."""
        return 1 if (self.findings or self.errors) else 0


def collect_suppressions(source: str):
    """``(file_wide_ids, per_line_ids)`` from a file's comments.

    Uses :mod:`tokenize` so directives inside string literals are not
    honoured.  ``per_line_ids`` maps a physical line number to the rule
    ids disabled on that line.
    """
    file_wide: set = set()
    per_line: dict = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        return file_wide, per_line
    for token in comments:
        match = _SUPPRESSION.search(token.string)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(2).split(",") if part.strip()}
        if match.group(1) == "disable-file":
            file_wide |= ids
        else:
            per_line.setdefault(token.start[0], set()).update(ids)
    return file_wide, per_line


def iter_python_files(paths, config: PromlintConfig):
    """Yield every ``.py`` file under ``paths``, honouring excludes."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not config.excludes(candidate):
                    yield candidate
        elif path.suffix == ".py" and not config.excludes(path):
            yield path


def analyze_source(
    source: str, path, rules, display_path=None, is_core=None
) -> AnalysisResult:
    """Analyze one in-memory source blob (the fixture-test entry point)."""
    result = AnalysisResult(n_files=1)
    try:
        context = FileContext.from_source(
            path, source, display_path=display_path, is_core=is_core
        )
    except SyntaxError as exc:
        result.errors.append(
            Finding(
                path=str(display_path or path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule_id="PL000",
                message=f"file does not parse: {exc.msg}",
            )
        )
        return result
    file_wide, per_line = collect_suppressions(source)
    for rule in rules:
        if rule.core_only and not context.is_core:
            continue
        for finding in rule.check(context):
            if finding.rule_id in file_wide or finding.rule_id in per_line.get(
                finding.line, ()
            ):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort()
    result.suppressed.sort()
    return result


def analyze_paths(paths, config: PromlintConfig | None = None) -> AnalysisResult:
    """Run the configured rules over every python file under ``paths``."""
    config = config or PromlintConfig()
    rules = resolve_rules(config.select)
    merged = AnalysisResult()
    for path in iter_python_files(paths, config):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            merged.errors.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=0,
                    rule_id="PL000",
                    message=f"file is unreadable: {exc}",
                )
            )
            continue
        single = analyze_source(source, path, rules, display_path=str(path))
        merged.findings.extend(single.findings)
        merged.suppressed.extend(single.suppressed)
        merged.errors.extend(single.errors)
        merged.n_files += 1
    merged.findings.sort()
    merged.suppressed.sort()
    merged.errors.sort()
    return merged
