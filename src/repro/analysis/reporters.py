"""Text and JSON reporters for promlint results.

The text form is the human/CI log surface (one ``path:line:col: PL###``
line per finding plus a summary); the JSON form is the machine surface
(stable keys, findings and suppressions as objects) for tooling that
wants to diff runs or annotate pull requests.
"""

from __future__ import annotations

import json

from .rules import ALL_RULES


def _finding_dict(finding) -> dict:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule_id,
        "message": finding.message,
    }


def render_text(result, show_suppressed: bool = False) -> str:
    """Human-readable report: findings, optional suppressions, summary."""
    lines = []
    for finding in result.errors:
        lines.append(finding.render())
    for finding in result.findings:
        lines.append(finding.render())
    if show_suppressed and result.suppressed:
        lines.append("")
        lines.append(f"suppressed ({len(result.suppressed)}):")
        for finding in result.suppressed:
            lines.append(f"  {finding.render()}")
    total = len(result.findings) + len(result.errors)
    lines.append("")
    lines.append(
        f"promlint: {result.n_files} file(s) checked, "
        f"{total} finding(s), {len(result.suppressed)} suppressed"
    )
    return "\n".join(lines).lstrip("\n")


def render_json(result) -> str:
    """Machine-readable report with stable keys."""
    payload = {
        "files_checked": result.n_files,
        "findings": [_finding_dict(finding) for finding in result.findings],
        "errors": [_finding_dict(finding) for finding in result.errors],
        "suppressed": [_finding_dict(finding) for finding in result.suppressed],
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """One line per registered rule: id, title, scope, rationale."""
    lines = []
    for rule_id in sorted(ALL_RULES):
        rule = ALL_RULES[rule_id]
        scope = "core/ only" if rule.core_only else "all files"
        lines.append(f"{rule_id}  {rule.title} [{scope}]")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)
