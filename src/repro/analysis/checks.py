"""The repo-specific promlint rules (PL001–PL005).

Each rule machine-checks one invariant the concurrent runtime's
correctness rests on (DESIGN.md §5–§8):

* **PL001** — published snapshots/segments are immutable; in-place
  writes to snapshot-derived arrays corrupt lock-free readers.
* **PL002** — shard locks are taken in ascending order through
  ``acquire_shards``; direct lock access or blocking calls under held
  shard locks are deadlock/starvation hazards.
* **PL003** — ``core/`` raises the :mod:`repro.core.exceptions`
  taxonomy, never bare ``ValueError``/``RuntimeError``.
* **PL004** — ``core/`` is checkpoint-covered: every RNG must be
  seeded and wall-clock reads kept out, or warm restarts stop being
  bit-identical.
* **PL005** — no mutable default arguments or module-level mutable
  containers in ``core/``; shared mutable state breaks snapshot
  isolation across threads.
"""

from __future__ import annotations

import ast

from .rules import Rule, register
from .visitor import (
    ScopedVisitor,
    attr_base_name,
    call_method_name,
    dotted_name,
    literal_int_set,
)

# Calls whose results are frozen snapshot/segment state (PL001).
# evaluation_view()/pending_bundle()/restrict() hand out the published
# segment-direct evaluation state, and panels()/row_norms() return the
# shared kernel caches behind it (DESIGN.md §9) — all are read by
# lock-free evaluates and must never be written through.
SNAPSHOT_SOURCES = frozenset(
    {
        "detector_snapshot", "column_segment", "column_segments", "snapshot",
        "evaluation_view", "pending_bundle", "restrict", "panels", "row_norms",
        "gather_base",
    }
)
SNAPSHOT_CONSTRUCTORS = frozenset(
    {
        "ComposeSnapshot", "SegmentBundle", "SegmentedField",
        "BlockColumn", "EvaluationView", "SegmentLayout",
    }
)
# Methods that mutate their receiver in place (ndarray + container set).
INPLACE_METHODS = frozenset(
    {
        "fill", "sort", "partition", "put", "resize", "byteswap",
        "append", "extend", "insert", "remove", "clear", "update",
        "setdefault", "popitem",
    }
)
# numpy functions that mutate their first argument in place.
NUMPY_INPLACE = frozenset(
    {"copyto", "put", "place", "putmask", "fill_diagonal"}
)

# Calls that block, and must not run under held shard locks (PL002).
BLOCKING_CALLS = frozenset({"put", "drain", "fsync", "join", "sleep", "wait"})

# Legacy numpy global-RNG entry points (PL004).
NUMPY_GLOBAL_RNG = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "shuffle", "permutation", "choice", "normal", "uniform",
        "standard_normal",
    }
)

# Constructors whose results are mutable (PL005).
MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
)
NUMPY_ARRAY_FACTORIES = frozenset({"array", "zeros", "ones", "empty", "full"})


class _SnapshotTaintVisitor(ScopedVisitor):
    """Tracks names bound from snapshot sources and flags mutations."""

    def __init__(self, rule, context):
        super().__init__()
        self.rule = rule
        self.context = context
        self.findings = []

    # -- taint computation ---------------------------------------------------------
    def _is_tainted(self, node) -> bool:
        if isinstance(node, ast.Name):
            return self.lookup(node.id) == "snapshot"
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            return self._is_tainted(node.value)
        if isinstance(node, ast.Call):
            name = call_method_name(node)
            if name in SNAPSHOT_SOURCES and isinstance(node.func, ast.Attribute):
                return True
            if name in SNAPSHOT_SOURCES and isinstance(node.func, ast.Name):
                return True
            if name in SNAPSHOT_CONSTRUCTORS:
                return True
            # copy.deepcopy(snapshot) etc. produce private state again
            return False
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._is_tainted(element) for element in node.elts)
        if isinstance(node, ast.Starred):
            return self._is_tainted(node.value)
        return False

    def _bind_target(self, target, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            self.bind(target.id, "snapshot" if tainted else None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, tainted)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, tainted)

    def _flag(self, node, message: str) -> None:
        self.findings.append(self.rule.finding(self.context, node, message))

    def _name_of(self, node) -> str:
        return attr_base_name(node) or "<expr>"

    # -- binds ---------------------------------------------------------------------
    def visit_Assign(self, node):
        """Propagate taint through assignments; flag stores into taints."""
        tainted_value = self._is_tainted(node.value)
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                if self._is_tainted(target.value):
                    self._flag(
                        node,
                        f"in-place write to snapshot-derived object "
                        f"{self._name_of(target)!r}; published snapshots and "
                        f"column segments are immutable — copy before mutating",
                    )
            else:
                self._bind_target(target, tainted_value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        """Taint-track annotated assignments like plain ones."""
        if node.value is not None:
            tainted = self._is_tainted(node.value)
            if isinstance(node.target, ast.Name):
                self._bind_target(node.target, tainted)
            elif isinstance(
                node.target, (ast.Attribute, ast.Subscript)
            ) and self._is_tainted(node.target.value):
                self._flag(
                    node,
                    f"in-place write to snapshot-derived object "
                    f"{self._name_of(node.target)!r}",
                )
        self.generic_visit(node)

    def visit_NamedExpr(self, node):
        """Track walrus bindings."""
        if isinstance(node.target, ast.Name):
            self._bind_target(node.target, self._is_tainted(node.value))
        self.generic_visit(node)

    def visit_With(self, node):
        """Propagate taint through ``with expr as name``."""
        for item in node.items:
            if item.optional_vars is not None:
                self._bind_target(
                    item.optional_vars, self._is_tainted(item.context_expr)
                )
        self.generic_visit(node)

    def visit_For(self, node):
        """Iterating a tainted collection taints the loop variable."""
        self._bind_target(node.target, self._is_tainted(node.iter))
        self.generic_visit(node)

    # -- violations ----------------------------------------------------------------
    def visit_AugAssign(self, node):
        """``+=`` against snapshot-derived arrays is an in-place write."""
        target = node.target
        if isinstance(target, ast.Name) and self.lookup(target.id) == "snapshot":
            self._flag(
                node,
                f"augmented assignment mutates snapshot-derived array "
                f"{target.id!r} in place",
            )
        elif isinstance(target, (ast.Attribute, ast.Subscript)) and self._is_tainted(
            target.value
        ):
            self._flag(
                node,
                f"augmented assignment into snapshot-derived object "
                f"{self._name_of(target)!r}",
            )
        self.generic_visit(node)

    def visit_Delete(self, node):
        """Deleting attrs/items of snapshot-derived objects mutates them."""
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)) and self._is_tainted(
                target.value
            ):
                self._flag(
                    node,
                    f"del on snapshot-derived object {self._name_of(target)!r}",
                )
        self.generic_visit(node)

    def visit_Call(self, node):
        """Flag in-place methods and numpy in-place kernels on taints."""
        name = call_method_name(node)
        if (
            isinstance(node.func, ast.Attribute)
            and name in INPLACE_METHODS
            and self._is_tainted(node.func.value)
        ):
            self._flag(
                node,
                f"in-place method .{name}() on snapshot-derived object "
                f"{self._name_of(node.func)!r}",
            )
        resolved = self.context.resolve_call(node)
        if resolved is not None:
            tail = resolved.rsplit(".", 1)[-1]
            if (
                resolved.startswith("numpy.")
                and tail in NUMPY_INPLACE
                and node.args
                and self._is_tainted(node.args[0])
            ):
                self._flag(
                    node,
                    f"{tail}() writes into snapshot-derived array "
                    f"{self._name_of(node.args[0])!r} in place",
                )
        for keyword in node.keywords:
            if keyword.arg == "out" and self._is_tainted(keyword.value):
                self._flag(
                    node,
                    f"out= targets snapshot-derived array "
                    f"{self._name_of(keyword.value)!r}",
                )
        self.generic_visit(node)


@register
class SnapshotMutationRule(Rule):
    """PL001: in-place writes to published snapshot/segment state."""

    rule_id = "PL001"
    title = "snapshot-mutation"
    rationale = (
        "detector_snapshot()/ComposeSnapshot/column_segment* results are "
        "published to lock-free readers; mutating them in place corrupts "
        "concurrent evaluates (DESIGN.md §5–§6)"
    )

    def check(self, context) -> list:
        """Run the taint visitor over the file."""
        visitor = _SnapshotTaintVisitor(self, context)
        visitor.visit(context.tree)
        return visitor.findings


class _LockDisciplineVisitor(ScopedVisitor):
    """Tracks ``acquire_shards`` with-blocks and direct lock touches."""

    SHARD_LOCK_ATTRS = frozenset({"_shard_locks", "_lock"})

    def __init__(self, rule, context):
        super().__init__()
        self.rule = rule
        self.context = context
        self.findings = []
        # Stack of statically-known shard-id sets (None = unknown/all).
        self._held = []

    def _flag(self, node, message: str) -> None:
        self.findings.append(self.rule.finding(self.context, node, message))

    def _acquire_shards_ids(self, node):
        """``(is_acquire, ids)`` for a with-item context expression."""
        if not (
            isinstance(node, ast.Call)
            and call_method_name(node) == "acquire_shards"
        ):
            return False, None
        if not node.args:
            return True, None
        return True, literal_int_set(node.args[0])

    def _is_foreign_lock_touch(self, node):
        """An attribute chain reaching a shard lock not through ``self``."""
        if not isinstance(node, ast.Attribute):
            return False
        if node.attr not in self.SHARD_LOCK_ATTRS:
            return False
        base = node.value
        return not (isinstance(base, ast.Name) and base.id == "self")

    def visit_With(self, node):
        """Track held shard-lock sets; flag nesting hazards and raw locks."""
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            # ``with shard._lock:`` / ``with store._shard_locks[i]:``
            probe = expr
            while isinstance(probe, ast.Subscript):
                probe = probe.value
            if self._is_foreign_lock_touch(probe):
                self._flag(
                    expr,
                    "direct shard-lock context manager; take shard locks "
                    "through acquire_shards() so ordering stays ascending",
                )
            is_acquire, ids = self._acquire_shards_ids(expr)
            if is_acquire:
                if self._held:
                    outer = self._held[-1]
                    ordered = (
                        outer is not None
                        and ids is not None
                        and outer
                        and ids
                        and min(ids) > max(outer)
                    )
                    if not ordered:
                        self._flag(
                            expr,
                            "nested acquire_shards() under held shard locks; "
                            "ascending order cannot be proven — acquire every "
                            "needed shard in one acquire_shards() call",
                        )
                self._held.append(ids)
                pushed += 1
        try:
            self.generic_visit(node)
        finally:
            for _ in range(pushed):
                self._held.pop()

    def visit_Call(self, node):
        """Flag raw acquire/release and blocking calls under shard locks."""
        name = call_method_name(node)
        if (
            isinstance(node.func, ast.Attribute)
            and name in {"acquire", "release"}
        ):
            probe = node.func.value
            while isinstance(probe, ast.Subscript):
                probe = probe.value
            if self._is_foreign_lock_touch(probe):
                self._flag(
                    node,
                    f"direct .{name}() on a shard lock; use acquire_shards() "
                    f"(ascending order, holder bookkeeping) instead",
                )
        if self._held and name in BLOCKING_CALLS:
            resolved = self.context.resolve_call(node) or ""
            # time.sleep / os.fsync / queue.put / loop.drain / thread.join
            self._flag(
                node,
                f"blocking call {resolved or name}() while holding shard "
                f"locks; maintenance must not stall readers or risk "
                f"lock-order inversion — move it outside acquire_shards()",
            )
        self.generic_visit(node)


@register
class LockDisciplineRule(Rule):
    """PL002: shard-lock discipline (ascending order via acquire_shards)."""

    rule_id = "PL002"
    title = "lock-discipline"
    rationale = (
        "shard locks are deadlock-free only because every holder takes "
        "them ascending through acquire_shards(); raw lock access, "
        "unprovable nesting, and blocking calls under held locks break "
        "that proof (DESIGN.md §5)"
    )

    def check(self, context) -> list:
        """Run the lock-discipline visitor over the file."""
        visitor = _LockDisciplineVisitor(self, context)
        visitor.visit(context.tree)
        return visitor.findings


@register
class ExceptionTaxonomyRule(Rule):
    """PL003: bare ValueError/RuntimeError raised in core/."""

    rule_id = "PL003"
    title = "exception-taxonomy"
    rationale = (
        "core/ raises the repro.core.exceptions taxonomy so callers can "
        "catch PromError as one family; bare builtins fracture error "
        "handling across the serving plane"
    )
    core_only = True

    SUGGESTION = {
        "ValueError": "ConfigurationError (bad argument) or ValidationError (bad data)",
        "RuntimeError": "NotFittedError, InternalError, or a ServingError subclass",
    }

    def check(self, context) -> list:
        """Flag every ``raise ValueError/RuntimeError`` in the file."""
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in self.SUGGESTION:
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"bare {name} raised in core/; use "
                        f"{self.SUGGESTION[name]} from core/exceptions.py",
                    )
                )
        return findings


@register
class DeterminismRule(Rule):
    """PL004: unseeded RNGs and wall-clock reads in core/."""

    rule_id = "PL004"
    title = "determinism"
    rationale = (
        "core/ state is checkpointed with its RNG states (DESIGN.md §7); "
        "an unseeded generator, the global numpy/random RNGs, or a "
        "wall-clock read makes warm restarts diverge from the recorded "
        "bit-identical stream"
    )
    core_only = True

    def _unseeded(self, call: ast.Call) -> bool:
        if not call.args and not call.keywords:
            return True
        if call.args and isinstance(call.args[0], ast.Constant):
            return call.args[0].value is None
        return False

    def check(self, context) -> list:
        """Flag nondeterministic entry points reachable from core/."""
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = context.resolve_call(node)
            if resolved is None:
                continue
            if resolved == "time.time":
                findings.append(
                    self.finding(
                        context,
                        node,
                        "wall-clock time.time() in core/; use a caller-supplied "
                        "timestamp or time.perf_counter() for durations only",
                    )
                )
            elif resolved == "numpy.random.default_rng" and self._unseeded(node):
                findings.append(
                    self.finding(
                        context,
                        node,
                        "unseeded np.random.default_rng() in core/; pass an "
                        "explicit seed so checkpoints can capture the RNG state",
                    )
                )
            elif (
                resolved.startswith("numpy.random.")
                and resolved.rsplit(".", 1)[-1] in NUMPY_GLOBAL_RNG
            ):
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"global numpy RNG call {resolved}() in core/; use a "
                        f"seeded np.random.Generator instance",
                    )
                )
            elif resolved.startswith("random."):
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"stdlib global RNG call {resolved}() in core/; use a "
                        f"seeded np.random.Generator instance",
                    )
                )
        return findings


@register
class MutableSharedStateRule(Rule):
    """PL005: mutable defaults and module-level mutable containers in core/."""

    rule_id = "PL005"
    title = "mutable-shared-state"
    rationale = (
        "mutable default arguments and module-level containers are "
        "shared across every thread and snapshot; a stray write leaks "
        "state between otherwise-isolated serving readers"
    )
    core_only = True

    def _is_mutable_literal(self, node) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            name = call_method_name(node)
            if name in MUTABLE_FACTORIES:
                return True
            target = dotted_name(node.func) or ""
            if "." in target and target.rsplit(".", 1)[-1] in NUMPY_ARRAY_FACTORIES:
                return True
        return False

    def _module_level_statements(self, tree: ast.Module):
        stack = list(tree.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.If, ast.Try)):
                for part in ast.iter_child_nodes(node):
                    if isinstance(part, ast.stmt):
                        stack.append(part)
                continue
            yield node

    def check(self, context) -> list:
        """Flag mutable defaults everywhere, mutable globals at module level."""
        findings = []
        for node in self._module_level_statements(context.tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            names = [
                target.id for target in targets if isinstance(target, ast.Name)
            ]
            if not names or names == ["__all__"]:
                continue
            if self._is_mutable_literal(value):
                findings.append(
                    self.finding(
                        context,
                        node,
                        f"module-level mutable container {', '.join(names)!s}; "
                        f"freeze it (tuple/frozenset/Mapping) or suppress with "
                        f"a rationale if it is a write-once registry",
                    )
                )
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable_literal(default):
                    label = getattr(node, "name", "<lambda>")
                    findings.append(
                        self.finding(
                            context,
                            default,
                            f"mutable default argument in {label}(); "
                            f"default to None and construct inside the body",
                        )
                    )
        return findings
