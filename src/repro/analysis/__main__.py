"""CLI entry point: ``python -m repro.analysis [paths ...]``.

Exit codes: 0 clean, 1 unsuppressed findings (or unparseable files),
2 usage errors.  This is the command the CI ``static-checks`` job runs
over ``src/`` — see DESIGN.md §8 for the gate's contract.
"""

from __future__ import annotations

import argparse
import sys

from .engine import PromlintConfig, analyze_paths, load_config
from .reporters import render_json, render_rule_list, render_text


def build_parser() -> argparse.ArgumentParser:
    """The promlint argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="promlint",
        description="AST-based invariant analyzer for the Prom runtime",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to analyze"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: pyproject or all)",
    )
    parser.add_argument(
        "--config",
        help="path to a pyproject.toml ([tool.promlint] section)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and run every registered rule",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by promlint: disable comments",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the registered rules"
    )
    return parser


def main(argv=None) -> int:
    """Run the analyzer; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0
    if args.no_config:
        config = PromlintConfig()
    else:
        config = load_config(args.config)
    if args.select:
        ids = tuple(part.strip() for part in args.select.split(",") if part.strip())
        try:
            config = PromlintConfig(select=ids, exclude=config.exclude)
        except KeyError as exc:
            print(f"promlint: {exc}", file=sys.stderr)
            return 2
    try:
        result = analyze_paths(args.paths, config)
    except KeyError as exc:
        print(f"promlint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
