"""Shared AST machinery: file context, name resolution, scope tracking.

The rules in :mod:`repro.analysis.checks` need three things over and
over: the dotted name a call resolves to (through ``import`` aliases),
the leftmost base name of an attribute/subscript chain, and
lexically-scoped tracking of what a local name was bound from.  This
module centralizes all three so each rule stays a small, readable
visitor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path


def attr_base_name(node):
    """Leftmost ``Name`` id of an attribute/subscript chain, or ``None``.

    ``snap.interface.model[0]`` resolves to ``"snap"``; chains rooted in
    a call or literal resolve to ``None``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node):
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_method_name(call: ast.Call):
    """The final attribute/function name a call invokes, or ``None``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def literal_int_set(node):
    """The set of ints in a literal list/tuple/set/int, else ``None``.

    Used by the lock-discipline rule to compare statically-known shard
    id sets; anything dynamic (a variable, a range call) returns
    ``None`` meaning "unknown".
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return {node.value}
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        values = set()
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, int)
            ):
                return None
            values.add(element.value)
        return values
    return None


def import_aliases(tree: ast.Module) -> dict:
    """Map local names to canonical dotted module paths.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from random import shuffle as sh`` yields
    ``{"sh": "random.shuffle"}``.  Rules resolve a call's dotted name
    through this map to decide whether ``np.random.seed`` really is
    ``numpy.random.seed``.
    """
    aliases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: Path
    display_path: str
    tree: ast.Module
    source: str
    is_core: bool
    aliases: dict = field(default_factory=dict)

    @classmethod
    def from_source(cls, path, source, display_path=None, is_core=None):
        """Parse ``source`` and build the context (``SyntaxError`` propagates)."""
        path = Path(path)
        tree = ast.parse(source, filename=str(path))
        if is_core is None:
            is_core = "core" in path.parts
        return cls(
            path=path,
            display_path=display_path or str(path),
            tree=tree,
            source=source,
            is_core=is_core,
            aliases=import_aliases(tree),
        )

    def resolve_call(self, call: ast.Call):
        """Canonical dotted name of ``call``'s target through import aliases.

        ``np.random.default_rng(...)`` resolves to
        ``"numpy.random.default_rng"`` when ``np`` aliases ``numpy``;
        unresolvable targets (method calls on objects) return the raw
        dotted form or ``None``.
        """
        name = dotted_name(call.func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        canonical = self.aliases.get(head, head)
        return f"{canonical}.{rest}" if rest else canonical


class ScopedVisitor(ast.NodeVisitor):
    """``NodeVisitor`` with a lexical scope stack for name tagging.

    Subclasses call :meth:`bind` when a name is (re)bound and
    :meth:`lookup` to read the innermost binding, with closure-style
    fallthrough to enclosing scopes.  Function and lambda bodies push a
    scope automatically (parameters are bound to ``None`` — untagged);
    class bodies push a scope too, which is a conservative
    approximation of Python's class-scope rules that is good enough for
    taint tracking.
    """

    def __init__(self):
        self._scopes = [{}]

    def bind(self, name, tag) -> None:
        """Bind ``name`` to ``tag`` in the innermost scope."""
        self._scopes[-1][name] = tag

    def lookup(self, name):
        """Innermost binding of ``name`` (``None`` when unbound/untagged)."""
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def _visit_in_new_scope(self, node, params=()):
        self._scopes.append({name: None for name in params})
        try:
            self.generic_visit(node)
        finally:
            self._scopes.pop()

    @staticmethod
    def _param_names(args: ast.arguments):
        for group in (args.posonlyargs, args.args, args.kwonlyargs):
            for arg in group:
                yield arg.arg
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                yield arg.arg

    def visit_FunctionDef(self, node):
        """Push a fresh scope for the function body."""
        self._visit_in_new_scope(node, self._param_names(node.args))

    def visit_AsyncFunctionDef(self, node):
        """Push a fresh scope for the async function body."""
        self._visit_in_new_scope(node, self._param_names(node.args))

    def visit_Lambda(self, node):
        """Push a fresh scope for the lambda body."""
        self._visit_in_new_scope(node, self._param_names(node.args))

    def visit_ClassDef(self, node):
        """Push a fresh scope for the class body."""
        self._visit_in_new_scope(node)
