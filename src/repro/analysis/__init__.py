"""promlint: AST-based invariant analysis for the concurrent runtime.

The serving plane built in DESIGN.md §5–§7 rests on conventions that
plain Python cannot enforce: published snapshots are immutable by
*contract*, shard locks deadlock-free by *convention* (ascending order
via ``acquire_shards``), warm restarts bit-identical only while every
RNG stays seeded.  This package machine-checks those conventions — a
small rule engine (:mod:`repro.analysis.engine`) walks the AST of every
source file, applies the repo-specific rules in
:mod:`repro.analysis.checks` (PL001–PL005), honours
``# promlint: disable=RULE`` suppressions, and reports findings with
``file:line`` provenance through :mod:`repro.analysis.reporters`.

Run it as a module (the CI gate)::

    python -m repro.analysis src/

or through the convenience wrapper ``scripts/promlint.py``.  The rule
set and excluded paths are configurable from ``pyproject.toml`` under
``[tool.promlint]``.

The static rules have a dynamic complement: the runtime lock-order
sanitizer in :mod:`repro.core.sharding` (enabled by the ``concurrency``
test fixture) catches out-of-order shard-lock acquisition that only
manifests on paths the AST cannot see.
"""

from .checks import (
    ExceptionTaxonomyRule,
    DeterminismRule,
    LockDisciplineRule,
    MutableSharedStateRule,
    SnapshotMutationRule,
)
from .engine import AnalysisResult, PromlintConfig, analyze_paths, load_config
from .reporters import render_json, render_text
from .rules import ALL_RULES, Finding, Rule, resolve_rules

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "DeterminismRule",
    "ExceptionTaxonomyRule",
    "Finding",
    "LockDisciplineRule",
    "MutableSharedStateRule",
    "PromlintConfig",
    "Rule",
    "SnapshotMutationRule",
    "analyze_paths",
    "load_config",
    "render_json",
    "render_text",
    "resolve_rules",
]
