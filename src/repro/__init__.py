"""repro — reproduction of Prom (CGO 2025).

Deployment-time drift detection for ML models in code analysis and
optimization, built on conformal prediction with adaptive calibration
weighting and an ensemble of nonconformity functions.

Public entry points::

    from repro import PromClassifier, PromRegressor, ModelInterface
    from repro import ml, tasks, baselines
"""

from .core import (
    APS,
    LAC,
    RAPS,
    AbsoluteErrorScore,
    ModelInterface,
    NonconformityFunction,
    NormalizedErrorScore,
    PromClassifier,
    PromRegressor,
    TopK,
)

__version__ = "1.0.0"

__all__ = [
    "APS",
    "AbsoluteErrorScore",
    "LAC",
    "ModelInterface",
    "NonconformityFunction",
    "NormalizedErrorScore",
    "PromClassifier",
    "PromRegressor",
    "RAPS",
    "TopK",
    "__version__",
]
