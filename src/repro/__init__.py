"""repro — reproduction of Prom (CGO 2025).

Deployment-time drift detection for ML models in code analysis and
optimization, built on conformal prediction with adaptive calibration
weighting and an ensemble of nonconformity functions.

Public entry points::

    from repro import PromClassifier, PromRegressor, ModelInterface
    from repro import serve, deploy                    # serving facade
    from repro import ServingConfig, ProcessPoolConfig  # config objects
    from repro import ml, tasks, baselines
"""

from .core import (
    APS,
    LAC,
    RAPS,
    AbsoluteErrorScore,
    CheckpointConfig,
    ConfigurationError,
    LoopConfig,
    ModelInterface,
    NonconformityFunction,
    NormalizedErrorScore,
    ProcessPoolConfig,
    ProcessServingPool,
    PromClassifier,
    PromRegressor,
    PruningConfig,
    ServingConfig,
    TopK,
    TriggerConfig,
)
from .core.serving import AsyncServingLoop

__version__ = "1.0.0"


def serve(interface, *, serving: ServingConfig | None = None):
    """A ready serving plane over a trained interface.

    The facade counterpart of :func:`deploy` for callers that drive
    their own request loop.  What comes back follows the
    :class:`~repro.core.config.ServingConfig`:

    * ``asynchronous=True`` (the default) — an
      :class:`~repro.core.serving.AsyncServingLoop` serving lock-free
      snapshot decisions with queued maintenance.  With
      ``serving.pool`` set, a
      :class:`~repro.core.multiproc.ProcessServingPool` is created
      first and rides on ``loop.process_pool`` — the loop republishes
      its shared-memory tables on every snapshot publish, and the
      caller closes the pool after the loop
      (``loop.close(); loop.process_pool.close()``).
    * ``asynchronous=False`` with ``serving.pool`` set — the bare
      :class:`~repro.core.multiproc.ProcessServingPool`, serving
      ``predict``/``evaluate`` from evaluator processes attached to
      the interface's exported calibration state (republish with
      ``pool.publish()`` after mutating the interface).

    ``asynchronous=False`` without a pool raises
    :class:`~repro.core.exceptions.ConfigurationError` — there is
    nothing to construct; call ``interface.predict`` directly.
    """
    config = serving if serving is not None else ServingConfig()
    pool = None
    if config.pool is not None:
        pool = ProcessServingPool(
            interface,
            n_workers=config.pool.workers,
            start_method=config.pool.start_method,
            table_capacity=config.pool.table_capacity,
        )
    if config.asynchronous:
        return AsyncServingLoop(
            interface,
            n_workers=config.workers,
            queue_capacity=config.queue_capacity,
            backpressure=config.backpressure,
            process_pool=pool,
        )
    if pool is not None:
        return pool
    raise ConfigurationError(
        "ServingConfig(asynchronous=False, pool=None) leaves nothing to "
        "serve with; call interface.predict directly"
    )


def deploy(
    interface,
    X_stream,
    oracle_labels,
    *,
    loop: LoopConfig | None = None,
    serving: ServingConfig | None = None,
    checkpointing: CheckpointConfig | None = None,
    pruning: PruningConfig | None = None,
):
    """Run the end-to-end deployment stream (config spelling only).

    The top-level facade over
    :func:`repro.experiments.stream_deployment`: detect drift per
    micro-batch, relabel within budget, fold the answers back into the
    calibration state, and return the
    :class:`~repro.experiments.runner.StreamResult`.  Configuration
    arrives as the four :mod:`repro.core.config` objects — this entry
    point never accepts the deprecated flat keywords.
    """
    from .experiments import stream_deployment

    return stream_deployment(
        interface,
        X_stream,
        oracle_labels,
        loop=loop,
        serving=serving,
        checkpointing=checkpointing,
        pruning=pruning,
    )


__all__ = [
    "APS",
    "AbsoluteErrorScore",
    "CheckpointConfig",
    "ConfigurationError",
    "LAC",
    "LoopConfig",
    "ModelInterface",
    "NonconformityFunction",
    "NormalizedErrorScore",
    "ProcessPoolConfig",
    "ProcessServingPool",
    "PromClassifier",
    "PromRegressor",
    "PruningConfig",
    "RAPS",
    "ServingConfig",
    "TopK",
    "TriggerConfig",
    "__version__",
    "deploy",
    "serve",
]
