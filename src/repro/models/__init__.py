"""The reproduced underlying models from the paper's Table 1."""

from .base import (
    GraphModel,
    ProgramSample,
    SequenceModel,
    UnderlyingModel,
    VectorModel,
    graphs_of,
    stack_features,
    stack_tokens,
)
from .catalog import (
    CODE_VOCAB_SIZE,
    MODEL_CATALOG,
    TOKEN_LEN,
    codexglue,
    deeptune,
    ir2vec,
    linevul,
    magni,
    programl,
    stock,
    tlp,
    vulde,
)

__all__ = [
    "CODE_VOCAB_SIZE",
    "GraphModel",
    "MODEL_CATALOG",
    "ProgramSample",
    "SequenceModel",
    "TOKEN_LEN",
    "UnderlyingModel",
    "VectorModel",
    "codexglue",
    "deeptune",
    "graphs_of",
    "ir2vec",
    "linevul",
    "magni",
    "programl",
    "stack_features",
    "stack_tokens",
    "stock",
    "tlp",
    "vulde",
]
